# Convenience targets for the SPEX reproduction.

.PHONY: install test bench bench-json examples experiments clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-output:
	pytest tests/ 2>&1 | tee test_output.txt

bench:
	pytest benchmarks/ --benchmark-only

bench-output:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-json:
	pytest benchmarks/ --benchmark-only --benchmark-json=benchmark_results.json

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

experiments:
	python -m repro.bench all

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
