"""Sharded-serving acceptance: crash isolation across real processes.

The load-bearing guarantee of :mod:`repro.core.shards`: for every query
that is not quarantined, the merged multi-process output is
**bit-identical** to a single-process
:meth:`~repro.core.multiquery.MultiQueryEngine.serve` pass — through
worker SIGKILLs, stalls, restarts, and poison-pill isolation of the
queries that caused them.  The chaos soaks here are the CI
``shard-chaos`` gate (``SOAK_TRIALS`` scales them up).

Workers are forked, so the deterministic fault hooks can close over
test state; they run *inside* the worker and kill or stall its process
for real.
"""

import json
import os
import random
import signal
import time
from itertools import chain

import pytest

from repro import FakeClock, MultiQueryEngine, ShardConfig, ShardCoordinator
from repro.core.serving import BreakerPolicy, ServingPolicy
from repro.core.shards import (
    SHARD_CRASH,
    SHARD_LOST,
    SHARD_POISON,
    SHARD_RESTORED,
    SHARD_STALL,
    quarantine_in_checkpoint,
    serve_sharded,
)
from repro.core.checkpoint import Checkpoint
from repro.workloads import mondial, sdi_subscriptions
from repro.xmlstream import iter_events

from ..conftest import make_random_events

TRIALS = int(os.environ.get("SOAK_TRIALS", "4"))

#: Fast restart schedule for tests (no real-time backoff waits).
FAST = {
    "backoff_initial": 0.01,
    "backoff_max": 0.05,
    "heartbeat_interval": 0.02,
}


def multi_doc_stream(*seeds, countries=6):
    """Several small MONDIAL documents — document boundaries are where
    workers checkpoint, so crashes land both before and after one."""
    return list(
        chain.from_iterable(
            mondial(seed=seed, countries=countries) for seed in seeds
        )
    )


def single_process(queries, events, policy=None):
    engine = MultiQueryEngine(queries)
    return sorted(
        (qid, match.position)
        for qid, match in engine.serve(iter(events), policy=policy)
    )


def merged_positions(result, exclude=()):
    return sorted(
        (qid, match.position)
        for qid, found in result.matches.items()
        if qid not in exclude
        for match in found
    )


class TestShardedDifferential:
    """No faults: sharding is invisible in the merged output."""

    @pytest.mark.parametrize("partition", ["hash", "prefix"])
    def test_matches_single_process(self, partition):
        queries = sdi_subscriptions(24, seed=5)
        events = multi_doc_stream(1, 2)
        result = serve_sharded(
            queries,
            iter(events),
            config=ShardConfig(shards=3, partition=partition, **FAST),
        )
        assert result.healthy
        assert merged_positions(result) == single_process(queries, events)

    def test_random_workload_soak(self):
        rng = random.Random(0x5A4D)
        for trial in range(TRIALS):
            events = []
            for _ in range(3):
                events.extend(
                    make_random_events(rng, max_children=3, max_depth=4)
                )
            queries = {
                "q0": "_*.b",
                "q1": "a.b",
                "q2": "_*.a[b].c",
                "q3": "_*[c].b",
                "q4": "_*.a._*.d",
                "q5": "_*.c[a]",
            }
            result = serve_sharded(
                queries,
                iter(events),
                config=ShardConfig(shards=2, seed=trial, **FAST),
            )
            assert result.healthy, f"trial {trial}: {result.summary()}"
            assert merged_positions(result) == single_process(
                queries, events
            ), f"trial {trial} diverged"

    def test_more_shards_than_queries(self):
        queries = {"q0": "_*.b"}
        events = multi_doc_stream(3)
        result = serve_sharded(
            queries, iter(events), config=ShardConfig(shards=4, **FAST)
        )
        assert result.healthy
        assert merged_positions(result) == single_process(queries, events)


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


class TestCrashRecovery:
    """SIGKILL a worker mid-stream; the restart loses nothing."""

    def test_transient_kill_is_invisible(self):
        queries = sdi_subscriptions(16, seed=5)
        events = multi_doc_stream(1, 2, 3)

        def hook(shard, incarnation, index, live):
            if shard == 0 and incarnation == 0 and index == len(events) // 2:
                _kill_self()

        coordinator = ShardCoordinator(
            queries,
            config=ShardConfig(shards=2, **FAST),
            fault_hook=hook,
        )
        result = coordinator.run(iter(events))
        codes = [entry.code for entry in result.shard_log]
        assert codes == [SHARD_CRASH, SHARD_RESTORED]
        assert not result.quarantined
        assert result.restarts == 1
        assert result.robustness.retries == 1
        assert merged_positions(result) == single_process(queries, events)

    def test_sigkill_chaos_soak(self):
        # Seeded chaos: every trial kills a random worker incarnation at
        # a random event, sometimes repeatedly (but below max_trips per
        # position) — the merged output must never change.
        queries = sdi_subscriptions(12, seed=9)
        events = multi_doc_stream(4, 5)
        expected = single_process(queries, events)
        for trial in range(TRIALS):
            rng = random.Random(0xC0DE + trial)
            shard = rng.randrange(2)
            cut = rng.randrange(1, len(events))
            kills = rng.choice([1, 2])

            def hook(s, incarnation, index, live):
                if s == shard and incarnation < kills and index == cut:
                    _kill_self()

            result = serve_sharded(
                queries,
                iter(events),
                config=ShardConfig(shards=2, max_trips=3, **FAST),
                fault_hook=hook,
            )
            assert not result.quarantined, f"trial {trial}"
            assert result.restarts == kills, f"trial {trial}"
            assert merged_positions(result) == expected, (
                f"trial {trial}: shard {shard} killed {kills}x at "
                f"event {cut} diverged"
            )

    def test_crash_after_checkpoint_resumes_from_it(self):
        queries = sdi_subscriptions(8, seed=5)
        events = multi_doc_stream(1, 2)
        boundary = next(
            index
            for index, event in enumerate(events)
            if type(event).__name__ == "EndDocument"
        )

        # Kill past the boundary, and pause first: the queue's feeder
        # thread needs a beat to flush the checkpoint message into the
        # pipe before the SIGKILL takes the whole process (data already
        # in the pipe survives worker death).
        cut = min(boundary + 100, len(events) - 1)

        def hook(shard, incarnation, index, live):
            if shard == 0 and incarnation == 0 and index == cut:
                time.sleep(0.5)
                _kill_self()

        result = serve_sharded(
            queries,
            iter(events),
            config=ShardConfig(shards=2, **FAST),
            fault_hook=hook,
        )
        restored = [e for e in result.shard_log if e.code == SHARD_RESTORED]
        assert restored and "checkpoint" in restored[0].detail
        assert result.robustness.restores == 1
        assert merged_positions(result) == single_process(queries, events)


class TestStallDetection:
    def test_stalled_worker_is_killed_and_restored(self):
        queries = sdi_subscriptions(8, seed=5)
        events = multi_doc_stream(1)

        def hook(shard, incarnation, index, live):
            if shard == 0 and incarnation == 0 and index == 10:
                time.sleep(60)

        result = serve_sharded(
            queries,
            iter(events),
            config=ShardConfig(shards=2, heartbeat_timeout=0.5, **FAST),
            fault_hook=hook,
        )
        codes = [entry.code for entry in result.shard_log]
        assert codes == [SHARD_STALL, SHARD_RESTORED]
        assert result.robustness.stalls_detected == 1
        assert merged_positions(result) == single_process(queries, events)


class TestPoisonPills:
    """A query that keeps crashing its worker ends quarantined; its
    neighbours — same shard included — complete bit-identically."""

    POISON = "p0"

    def poison_hook(self, events_len):
        def hook(shard, incarnation, index, live):
            # Crashes whenever the poison query is live at the cut —
            # every incarnation, and the solo isolation probe too.  The
            # pause lets the queue feeder flush the last document
            # checkpoint before the kill, so both crashes key to the
            # same committed position (deterministic conviction count).
            if self.POISON in live and index == events_len // 2:
                time.sleep(0.3)
                _kill_self()

        return hook

    def run_poisoned(self, queries, events, **config):
        return serve_sharded(
            queries,
            iter(events),
            config=ShardConfig(shards=2, max_trips=2, **FAST, **config),
            fault_hook=self.poison_hook(len(events)),
            policy=ServingPolicy(breaker=BreakerPolicy(max_trips=2)),
        )

    def test_deterministic_crasher_is_convicted(self):
        queries = dict(sdi_subscriptions(12, seed=9), **{self.POISON: "_*.a"})
        events = multi_doc_stream(4, 5)
        result = self.run_poisoned(queries, events)
        assert result.quarantined == {self.POISON}
        codes = [entry.code for entry in result.shard_log]
        assert codes.count(SHARD_CRASH) == 2
        assert SHARD_POISON in codes
        assert codes[-1] == SHARD_RESTORED
        outcome = result.report.outcomes[self.POISON]
        assert outcome.status == "quarantined"
        assert outcome.code == "POISON"
        assert outcome.degraded is True
        # Every survivor (poison's shard-mates included) is exact.
        healthy = {qid: q for qid, q in queries.items() if qid != self.POISON}
        assert merged_positions(result, exclude={self.POISON}) == (
            single_process(healthy, events)
        )

    def test_whole_shard_lost_when_no_culprit_isolable(self):
        # The crash only reproduces with >1 query in the process, so
        # every solo probe survives and nobody can be convicted: the
        # shard is quarantined whole, spine intact on the other shard.
        # Ids chosen so crc32 % 2 co-locates qa+qb and isolates qd.
        queries = {"qa": "_*.country", "qb": "_*.name", "qd": "_*.city"}
        events = multi_doc_stream(1)
        doomed = ["qa", "qb"]

        def hook(shard, incarnation, index, live):
            if len(live) > 1 and index == 5:
                _kill_self()

        result = serve_sharded(
            queries,
            iter(events),
            config=ShardConfig(shards=2, max_trips=2, probe_timeout=10, **FAST),
            fault_hook=hook,
        )
        assert result.quarantined == set(doomed)
        assert SHARD_LOST in [entry.code for entry in result.shard_log]
        assert "quarantined" in result.shard_status
        for qid in doomed:
            outcome = result.report.outcomes[qid]
            assert outcome.status == "quarantined"
            assert outcome.code == SHARD_LOST
        survivors = set(queries) - set(doomed)
        assert merged_positions(result, exclude=set(doomed)) == (
            single_process({qid: queries[qid] for qid in survivors}, events)
        )


class TestLatchAcrossProcessBoundary:
    """Satellite: breaker/quarantine latches survive process hops."""

    def test_persisted_shard_checkpoint_carries_the_latch(self, tmp_path):
        poison = "p0"
        queries = dict(sdi_subscriptions(12, seed=9), **{poison: "_*.a"})
        events = multi_doc_stream(4, 5)

        def hook(shard, incarnation, index, live):
            if poison in live and index == len(events) // 2:
                time.sleep(0.3)
                _kill_self()

        result = serve_sharded(
            queries,
            iter(events),
            config=ShardConfig(
                shards=2,
                max_trips=2,
                checkpoint_dir=str(tmp_path),
                **FAST,
            ),
            fault_hook=hook,
            policy=ServingPolicy(breaker=BreakerPolicy(max_trips=2)),
        )
        assert result.quarantined == {poison}
        # The poisoned shard persisted its rolling checkpoint; the latch
        # must be inside the on-disk state, not coordinator memory.
        shard = next(
            index
            for index, ids in enumerate(result.shard_queries)
            if poison in ids
        )
        path = tmp_path / f"shard-{shard}.json"
        on_disk = Checkpoint.load(path)
        serving = on_disk.require("multiquery")["serving"]
        breaker = serving["breakers"][poison]
        assert breaker["state"] == "open"
        assert breaker["trips"] >= 2
        assert poison not in on_disk.require("multiquery")["networks"]

        # A brand-new in-process engine resuming that file keeps the
        # quarantine: the poison query never runs or re-admits again.
        shard_queries = {
            qid: queries[qid] for qid in result.shard_queries[shard]
        }
        fresh = MultiQueryEngine(shard_queries)
        replay = list(
            fresh.resume(
                on_disk,
                iter(events + events[: on_disk.position]),
                policy=ServingPolicy(breaker=BreakerPolicy(max_trips=2)),
            )
        )
        assert poison not in {qid for qid, _ in replay}
        outcome = fresh.serving.outcomes[poison]
        assert outcome.status == "quarantined"
        assert outcome.code == "POISON"

    def test_quarantine_in_checkpoint_round_trips_json(self):
        engine = MultiQueryEngine({"q1": "_*.b", "q2": "_*.c"})
        doc = "<a><b><c/></b><b/><c/></a>"
        from repro import StreamCursor

        for _ in engine.serve(doc, cursor=StreamCursor()):
            pass
        edited = quarantine_in_checkpoint(
            engine.checkpoint(), ["q1"], max_trips=3
        )
        # Full JSON round trip — the shape that actually crosses the
        # process boundary (checkpoint file / IPC dict).
        again = Checkpoint.from_dict(json.loads(json.dumps(edited.to_dict())))
        events = list(iter_events(doc))
        fresh = MultiQueryEngine({"q1": "_*.b", "q2": "_*.c"})
        replay = list(fresh.resume(again, iter(events + events)))
        assert {qid for qid, _ in replay} == {"q2"}
        assert fresh.serving.outcomes["q1"].status == "quarantined"


class TestShardedReporting:
    def test_result_surface(self):
        queries = sdi_subscriptions(8, seed=5)
        events = multi_doc_stream(1)
        result = serve_sharded(
            queries, iter(events), config=ShardConfig(shards=2, **FAST)
        )
        assert result.events_total == len(events)
        assert len(result.shard_queries) == 2
        assert result.shard_status == ["ok", "ok"]
        assert set(result.checkpoints) <= {0, 1}
        for checkpoint in result.checkpoints.values():
            assert checkpoint.position == len(events)
        summary = result.summary()
        assert "2 shard(s)" in summary
        assert "0 poison quarantine(s)" in summary
        report = result.report
        assert set(report.outcomes) == set(queries)
        assert report.documents_seen == 1

    def test_rejects_unbounded_breaker(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="finite breaker max_trips"):
            ShardCoordinator(
                {"q": "_*.a"},
                policy=ServingPolicy(breaker=BreakerPolicy(max_trips=None)),
            )

    def test_fake_clock_never_blocks_on_backoff(self):
        # The coordinator's restart sleeps go through the injected
        # clock; with a FakeClock a crash-restart trial finishes
        # without any real backoff waiting.
        queries = sdi_subscriptions(8, seed=5)
        events = multi_doc_stream(1)

        def hook(shard, incarnation, index, live):
            if shard == 0 and incarnation == 0 and index == 7:
                _kill_self()

        clock = FakeClock()
        coordinator = ShardCoordinator(
            queries,
            config=ShardConfig(shards=2, heartbeat_timeout=None, **FAST),
            clock=clock,
            fault_hook=hook,
        )
        result = coordinator.run(iter(events))
        assert result.restarts == 1
        assert any(delay > 0 for delay in clock.sleeps)
        assert merged_positions(result) == single_process(queries, events)
