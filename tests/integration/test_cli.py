"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main

from ..conftest import PAPER_DOC


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(PAPER_DOC)
    return str(path)


class TestQueryCommand:
    def test_matches_printed(self, doc_file, capsys):
        assert main(["query", "_*.a[b].c", doc_file]) == 0
        out = capsys.readouterr().out
        assert "<c></c>" in out
        assert "1 match(es)" in out

    def test_count_mode(self, doc_file, capsys):
        assert main(["query", "--count", "_*._", doc_file]) == 0
        assert capsys.readouterr().out.strip() == "5"

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            type("S", (), {"buffer": io.BytesIO(PAPER_DOC.encode())})(),
        )
        assert main(["query", "--count", "a.c"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_bad_query_reports_error(self, doc_file, capsys):
        assert main(["query", "a..b", doc_file]) == 1
        assert "error:" in capsys.readouterr().err


class TestXPathCommand:
    def test_translation_and_evaluation(self, doc_file, capsys):
        assert main(["xpath", "--count", "//a[b]/c", doc_file]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_unsupported_axis_reported(self, doc_file, capsys):
        assert main(["xpath", "//a/parent::b", doc_file]) == 1
        assert "error:" in capsys.readouterr().err


class TestCqCommand:
    def test_bindings_reported(self, doc_file, capsys):
        cq = "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3"
        assert main(["cq", cq, doc_file]) == 0
        out = capsys.readouterr().out
        assert "X3: 1 binding(s)" in out


class TestExplainCommand:
    def test_network_printed(self, capsys):
        assert main(["explain", "_*.a[b].c"]) == 0
        out = capsys.readouterr().out
        assert "VC(q0)" in out and "network degree" in out


class TestStatsCommand:
    def test_stream_statistics(self, doc_file, capsys):
        assert main(["stats", doc_file]) == 0
        out = capsys.readouterr().out
        assert "elements        : 5" in out
        assert "max depth       : 3" in out


class TestTraceCommand:
    def test_table_printed(self, doc_file, capsys):
        assert main(["trace", "a.c", doc_file]) == 0
        out = capsys.readouterr().out
        assert "CH(a)" in out and "OU" in out
        assert "<$>" in out  # header column per stream message


class TestStatsFlag:
    def test_engine_statistics_printed(self, doc_file, capsys):
        assert main(["query", "--stats", "_*.a[b].c", doc_file]) == 0
        out = capsys.readouterr().out
        assert "engine statistics" in out
        assert "peak stack height" in out


class TestCheckpointFlags:
    def test_supervised_run_writes_checkpoint_and_summary(
        self, doc_file, tmp_path, capsys
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        assert (
            main(
                [
                    "query",
                    "_*.a[b].c",
                    doc_file,
                    "--checkpoint-dir",
                    checkpoint_dir,
                    "--checkpoint-every",
                    "4",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "1 match(es)" in captured.out
        assert "-- recovery:" in captured.err
        assert "checkpoint(s) written" in captured.err
        import os

        assert os.path.exists(os.path.join(checkpoint_dir, "checkpoint.json"))

    def test_resume_from_checkpoint(self, doc_file, tmp_path, capsys):
        checkpoint_dir = str(tmp_path / "ckpt")
        assert (
            main(
                [
                    "query",
                    "_*.a[b].c",
                    doc_file,
                    "--checkpoint-dir",
                    checkpoint_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        # the final checkpoint is at end-of-stream; resuming completes
        # instantly with zero duplicate matches
        assert (
            main(
                [
                    "query",
                    "_*.a[b].c",
                    doc_file,
                    "--checkpoint-dir",
                    checkpoint_dir,
                    "--resume",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "0 match(es)" in captured.out
        assert "restore(s)" in captured.err

    def test_checkpoint_requires_file(self, capsys):
        assert main(["query", "a", "--checkpoint-dir", "/tmp/x"]) == 2
        assert "FILE" in capsys.readouterr().err

    def test_checkpoint_requires_strict(self, doc_file, capsys):
        assert (
            main(
                [
                    "query",
                    "a",
                    doc_file,
                    "--checkpoint-dir",
                    "/tmp/x",
                    "--on-error",
                    "skip",
                ]
            )
            == 2
        )
        assert "strict" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, doc_file, capsys):
        assert main(["query", "a", doc_file, "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_clean_query_exits_zero(self, capsys):
        assert main(["analyze", "_*.a[b].c"]) == 0
        out = capsys.readouterr().out
        assert "COST000" in out
        assert "1/1" in out

    def test_error_diagnostics_exit_nonzero(self, capsys):
        assert (
            main(
                [
                    "analyze",
                    "_*.a[_*.b]",
                    "--max-depth",
                    "50",
                    "--max-formula-size",
                    "10",
                ]
            )
            == 1
        )
        assert "COST002" in capsys.readouterr().out

    def test_json_output_is_stable_across_runs(self, capsys):
        import json

        assert main(["analyze", "_*.a[b]", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", "_*.a[b]", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["query"]["ok"] is True

    def test_list_codes(self, capsys):
        assert main(["analyze", "--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in ("RPQ001", "NET007", "COST002"):
            assert code in out

    def test_requires_query_or_workloads(self, capsys):
        assert main(["analyze"]) == 2
        assert "QUERY" in capsys.readouterr().err

    def test_workload_corpus_is_clean(self, capsys):
        from repro.workloads import query_corpus

        total = len(query_corpus())
        assert main(["analyze", "--workloads"]) == 0
        assert f"{total}/{total}" in capsys.readouterr().out

    def test_check_lanes_requires_plan(self, capsys):
        assert main(["analyze", "a.b", "--check-lanes"]) == 2
        assert "--check-lanes requires --plan" in capsys.readouterr().err

    def test_check_lanes_passes_on_the_workload_corpus(self, capsys):
        assert (
            main(
                [
                    "analyze", "--plan", "--rewrite", "--workloads",
                    "--json", "--check-lanes",
                ]
            )
            == 0
        )
        assert capsys.readouterr().err == ""

    def test_check_lanes_flags_missing_lane_coverage(self, capsys):
        # a single dfa-lane query can never exercise all three lanes
        assert main(["analyze", "a.b", "--plan", "--check-lanes"]) == 1
        assert "does not exercise every lane" in capsys.readouterr().err

    def test_dtd_findings_surface(self, tmp_path, capsys):
        dtd = tmp_path / "doc.dtd"
        dtd.write_text("<!ELEMENT a (b*)>\n<!ELEMENT b EMPTY>")
        assert main(["analyze", "a.c", "--dtd", str(dtd)]) == 1
        out = capsys.readouterr().out
        assert "RPQ010" in out and "RPQ012" in out


class TestServeCommand:
    def test_multi_query_counts(self, doc_file, capsys):
        assert main(["serve", "--count", "b=_*.b", "c=_*.c", "--file", doc_file]) == 0
        out = capsys.readouterr().out
        assert "b\t1" in out and "c\t2" in out

    def test_auto_ids(self, doc_file, capsys):
        assert main(["serve", "--count", "_*.b", "--file", doc_file]) == 0
        assert "q1\t1" in capsys.readouterr().out

    def test_duplicate_ids_rejected(self, doc_file, capsys):
        assert main(["serve", "x=a", "x=b", "--file", doc_file]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_poisoned_file_among_healthy_ones(self, tmp_path, doc_file, capsys):
        from repro.workloads import billion_laughs

        bomb = tmp_path / "bomb.xml"
        bomb.write_text(billion_laughs())
        code = main(
            [
                "serve",
                "--count",
                "q=_*.b",
                "--harden",
                "--on-error",
                "skip",
                "--file",
                doc_file,
                "--file",
                str(bomb),
                "--file",
                doc_file,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "q\t2" in captured.out  # both healthy documents served
        assert "recovered:" in captured.err

    def test_admission_rejection_sets_exit_code(self, doc_file, capsys):
        code = main(
            [
                "serve",
                "--count",
                "big=_*.a[_*.b]",
                "small=_*.b",
                "--admission",
                "4",
                "--max-depth",
                "64",
                "--file",
                doc_file,
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "big\t0" in captured.out and "small\t1" in captured.out
        assert "ADMIT003" in captured.err

    def test_deadline_flag_accepted(self, doc_file, capsys):
        assert (
            main(
                [
                    "serve",
                    "--count",
                    "q=_*.b",
                    "--deadline-ms",
                    "60000",
                    "--file",
                    doc_file,
                ]
            )
            == 0
        )

    def test_bad_priority_rejected(self, doc_file, capsys):
        assert main(["serve", "q=a", "--priority", "zz=1", "--file", doc_file]) == 2
        assert "--priority" in capsys.readouterr().err

    def test_sharded_counts_match_single_process(self, doc_file, capsys):
        assert (
            main(["serve", "--count", "b=_*.b", "c=_*.c", "--file", doc_file])
            == 0
        )
        single = capsys.readouterr().out
        assert (
            main(
                [
                    "serve",
                    "--count",
                    "b=_*.b",
                    "c=_*.c",
                    "--shards",
                    "2",
                    "--file",
                    doc_file,
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out == single
        assert "2 shard(s)" in captured.err

    def test_sharded_match_output(self, doc_file, capsys):
        assert (
            main(["serve", "c=_*.c", "--shards", "2", "--file", doc_file])
            == 0
        )
        out = capsys.readouterr().out
        assert "<c></c>" in out
        assert "2 match(es)" in out

    def test_sharded_warns_on_non_strict(self, doc_file, capsys):
        assert (
            main(
                [
                    "serve",
                    "--count",
                    "q=_*.b",
                    "--shards",
                    "2",
                    "--on-error",
                    "skip",
                    "--file",
                    doc_file,
                ]
            )
            == 0
        )
        assert "ignored" in capsys.readouterr().err

    def test_shards_must_be_positive(self, doc_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "q=a", "--shards", "0", "--file", doc_file])
        assert excinfo.value.code == 2
        assert "positive" in capsys.readouterr().err


class TestServeListen:
    """``spex serve --listen``: usage guards and the real subprocess."""

    def test_requires_queries_without_listen(self, capsys):
        assert main(["serve"]) == 2
        assert "at least one QUERY" in capsys.readouterr().err

    def test_listen_rejects_argv_queries(self, capsys):
        assert main(["serve", "q=a", "--listen", "127.0.0.1:0"]) == 2
        assert "over the wire" in capsys.readouterr().err

    def test_listen_excludes_shards_and_files(self, doc_file, capsys):
        assert main(["serve", "--listen", "127.0.0.1:0", "--shards", "2"]) == 2
        assert "exclusive" in capsys.readouterr().err
        assert (
            main(["serve", "--listen", "127.0.0.1:0", "--file", doc_file]) == 2
        )
        assert "producer connections" in capsys.readouterr().err

    @pytest.mark.parametrize("address", ["nope", "host:", ":0", "h:99999"])
    def test_listen_rejects_bad_addresses(self, address, capsys):
        assert main(["serve", "--listen", address]) == 2
        assert "bad --listen address" in capsys.readouterr().err

    def test_sigterm_drains_and_exits_clean(self, tmp_path):
        import asyncio
        import os
        import signal
        import subprocess
        import sys

        from repro.service.client import ProducerClient, SubscriberClient
        from repro.xmlstream.events import (
            EndDocument,
            EndElement,
            StartDocument,
            StartElement,
        )

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        checkpoint = tmp_path / "drain.ckpt"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--checkpoint-file",
                str(checkpoint),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on" in banner
            _host_port = banner.rsplit(" ", 1)[-1].strip()
            host, _, port_text = _host_port.rpartition(":")
            port = int(port_text)

            async def roundtrip() -> list:
                subscriber = await SubscriberClient.connect(host, port)
                verdict = await subscriber.subscribe("q", "_*.a")
                assert verdict["type"] == "subscribed"
                producer = await ProducerClient.connect(host, port)
                await producer.send_events(
                    [
                        StartDocument(),
                        StartElement("r"),
                        StartElement("a"),
                        EndElement("a"),
                        EndElement("r"),
                        EndDocument(),
                    ]
                )
                await producer.close()
                frame = await asyncio.wait_for(subscriber.conn.recv(), 10)
                # SIGTERM while the subscriber is still connected: drain
                # must flush and bye, not cut the connection
                process.send_signal(signal.SIGTERM)
                tail = [frame]
                async for later in subscriber.frames():
                    tail.append(later)
                await subscriber.close()
                return tail

            frames = asyncio.run(asyncio.wait_for(roundtrip(), 20))
            out, err = process.communicate(timeout=20)
        except BaseException:
            process.kill()
            process.communicate()
            raise
        assert process.returncode == 0, err
        kinds = [frame.get("type") for frame in frames]
        assert "match" in kinds
        assert kinds[-1] == "bye"
        assert checkpoint.exists()
        assert "-- serving:" in err
        assert "-- service:" in err
