"""Fault-injection soak: corrupted streams × recovery policies.

The acceptance property of the resilience layer: for every seeded
corruption and every policy, the engine either raises the documented
``StreamError``/``ResourceLimitError`` (strict) or completes the run
with matches on the surviving documents identical to the DOM oracle
(skip/repair) — no hangs, no silent wrong answers, and peak buffered
events never exceed the configured ceiling.

The trial budget scales with the ``SOAK_TRIALS`` environment variable
(default keeps the suite fast; CI's soak job raises it to 200).
"""

import os
import random

import pytest

from repro import ResourceLimits, SpexEngine, StreamError
from repro.baselines import DomEvaluator
from repro.core.multiquery import MultiQueryEngine
from repro.errors import ResourceLimitError
from repro.rpeq.parser import parse
from repro.xmlstream import (
    ErrorReport,
    FAULT_KINDS,
    FaultInjector,
    events_from_tags,
    is_well_formed,
    recovered_documents,
    recovering,
)

from ..conftest import make_random_events

TRIALS = int(os.environ.get("SOAK_TRIALS", "30"))

#: Queries covering the paper's classes: plain paths, closures,
#: qualifiers (future conditions force buffering), nested closures.
QUERIES = [
    "_*.a",
    "a.b",
    "_*.a[b].c",
    "_*.a[_*.b]",
    "a*.c",
    "_*._[c]",
]


def oracle_positions(expr, doc_events):
    """DOM-oracle result positions for one well-formed document."""
    return [n.position for n in DomEvaluator(expr).evaluate(iter(doc_events))]


def make_documents(rng, count=3):
    return [
        make_random_events(rng, max_children=3, max_depth=4) for _ in range(count)
    ]


def corrupted_stream(trial):
    """One seeded corruption scenario: (stream, fault, documents, victim)."""
    rng = random.Random(10_000 + trial)
    documents = make_documents(rng)
    victim = rng.randrange(len(documents))
    kind = FAULT_KINDS[trial % len(FAULT_KINDS)]
    injector = FaultInjector(seed=trial)
    stream, fault = injector.corrupt_document(documents, victim, kind)
    return stream, fault, documents, victim


def stream_is_valid(events):
    """Multi-document well-formedness (strict recovery accepts it)."""
    try:
        for _ in recovering(iter(events), "strict"):
            pass
    except StreamError:
        return False
    return True


class TestStrictPolicy:
    def test_raises_or_agrees_with_oracle(self):
        for trial in range(TRIALS):
            rng = random.Random(20_000 + trial)
            [document] = make_documents(rng, count=1)
            kind = FAULT_KINDS[trial % len(FAULT_KINDS)]
            corrupted, fault = FaultInjector(seed=trial).corrupt(document, kind)
            expr = parse(QUERIES[trial % len(QUERIES)])
            engine = SpexEngine(expr, collect_events=False)
            if is_well_formed(iter(corrupted)):
                # The corruption happened to preserve well-formedness
                # (e.g. a dropped text event): results must stay exact.
                got = engine.positions(iter(corrupted))
                assert got == oracle_positions(expr, corrupted), (trial, fault)
            else:
                with pytest.raises(StreamError):
                    list(engine.run(iter(corrupted), require_end=True))


class TestSkipPolicy:
    def test_surviving_documents_match_oracle(self):
        for trial in range(TRIALS):
            stream, fault, documents, victim = corrupted_stream(trial)
            expr = parse(QUERIES[trial % len(QUERIES)])

            # The recovery layer defines which documents survive; the
            # engine must produce exactly the oracle's answers on them.
            survivors = [
                list(doc)
                for doc in recovered_documents(iter(stream), "skip")
            ]
            expected = [
                p for doc in survivors for p in oracle_positions(expr, doc)
            ]

            report = ErrorReport()
            engine = SpexEngine(expr, collect_events=False)
            got = [
                m.position
                for m in engine.run(
                    iter(stream), on_error="skip", report=report, require_end=True
                )
            ]
            assert got == expected, (trial, fault)

            # Documents before the victim are untouched: they must all
            # survive, verbatim, at the front.
            assert survivors[:victim] == documents[:victim], (trial, fault)

    def test_clean_streams_are_never_degraded(self):
        for trial in range(min(TRIALS, 10)):
            rng = random.Random(30_000 + trial)
            documents = make_documents(rng)
            stream = [event for doc in documents for event in doc]
            expr = parse(QUERIES[trial % len(QUERIES)])
            report = ErrorReport()
            engine = SpexEngine(expr, collect_events=False)
            got = [
                m.position
                for m in engine.run(
                    iter(stream), on_error="skip", report=report, require_end=True
                )
            ]
            expected = [
                p for doc in documents for p in oracle_positions(expr, doc)
            ]
            assert got == expected
            assert report.ok


class TestRepairPolicy:
    def test_repaired_documents_match_oracle(self):
        for trial in range(TRIALS):
            stream, fault, _documents, _victim = corrupted_stream(trial)
            expr = parse(QUERIES[trial % len(QUERIES)])

            repaired_docs = [
                list(doc)
                for doc in recovered_documents(iter(stream), "repair")
            ]
            # Repair must never emit an invalid document.
            for doc in repaired_docs:
                assert is_well_formed(iter(doc)), (trial, fault)
            expected = [
                p
                for doc in repaired_docs
                for p in oracle_positions(expr, doc)
            ]

            report = ErrorReport()
            engine = SpexEngine(expr, collect_events=False)
            got = [
                m.position
                for m in engine.run(
                    iter(stream),
                    on_error="repair",
                    report=report,
                    require_end=True,
                )
            ]
            assert got == expected, (trial, fault)


class TestBufferCeiling:
    LIMIT = 16

    def test_peak_buffered_never_exceeds_limit(self):
        limits = ResourceLimits(
            max_buffered_events=self.LIMIT, on_buffer_overflow="drop_oldest"
        )
        for trial in range(TRIALS):
            stream, fault, _documents, _victim = corrupted_stream(trial)
            expr = parse(QUERIES[trial % len(QUERIES)])
            engine = SpexEngine(expr, limits=limits)
            list(engine.run(iter(stream), on_error="repair", require_end=True))
            peak = engine.stats.output.peak_buffered_events
            assert peak <= self.LIMIT, (trial, fault, peak)

    def test_strict_limit_raises_not_hangs(self):
        limits = ResourceLimits(max_buffered_events=4)
        doc = events_from_tags(
            ["<$>"] + ["<a>"] * 1 + ["<x>", "</x>"] * 50 + ["<b>", "</b>", "</a>", "</$>"]
        )
        engine = SpexEngine("_*.a[b]", limits=limits)
        with pytest.raises(ResourceLimitError):
            list(engine.run(doc))


class TestMultiQuerySoak:
    def test_filter_documents_survives_corruption(self):
        queries = {q: q for q in QUERIES[:4]}
        for trial in range(min(TRIALS, 15)):
            stream, fault, _documents, _victim = corrupted_stream(trial)
            survivors = [
                list(doc) for doc in recovered_documents(iter(stream), "skip")
            ]
            expected = {
                qid: any(
                    bool(oracle_positions(parse(q), doc)) for doc in survivors
                )
                for qid, q in queries.items()
            }
            engine = MultiQueryEngine(queries)
            report = ErrorReport()
            verdicts = engine.filter_documents(
                iter(stream), on_error="skip", report=report
            )
            assert verdicts == expected, (trial, fault)
