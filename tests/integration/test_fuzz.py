"""Heavier randomized sweeps — the suite's last line of defense.

These go beyond the per-feature hypothesis tests: bigger documents,
combined features (axes + qualifiers + simplifier + shared networks in
one sweep), and degenerate extremes (very deep, very wide).  Runtime is
kept to a few seconds per test by fixed trial budgets.
"""

import random

import pytest

from repro import SpexEngine
from repro.baselines import DomEvaluator, TreeAutomatonEvaluator, XScanEvaluator
from repro.rpeq import GeneratorConfig, analyze, random_rpeq, simplify
from repro.xmlstream.tree import build_document

from ..conftest import make_random_events


def oracle(expr, events):
    return sorted(
        n.position
        for n in DomEvaluator(expr).evaluate_document(build_document(events))
    )


class TestCombinedSweep:
    """One sweep, all engines and transforms on the same inputs."""

    def test_everything_agrees(self, rng):
        config = GeneratorConfig(max_depth=4)
        for trial in range(120):
            expr = random_rpeq(rng, config)
            events = make_random_events(rng, max_children=3, max_depth=5)
            expected = oracle(expr, events)
            engines = {
                "spex": SpexEngine(expr, collect_events=False),
                "spex-literal": SpexEngine(expr, collect_events=False, optimize=False),
                "spex-simplified": SpexEngine(
                    expr, collect_events=False, simplify_query=True
                ),
            }
            for name, engine in engines.items():
                got = sorted(engine.positions(iter(events)))
                assert got == expected, (trial, name, expr)
            automaton = sorted(
                n.position
                for n in TreeAutomatonEvaluator(expr).evaluate_document(
                    build_document(events)
                )
            )
            assert automaton == expected, (trial, "treegrep", expr)
            if analyze(expr).qualifiers == 0:
                xscan = sorted(XScanEvaluator(expr).evaluate(iter(events)))
                assert xscan == expected, (trial, "xscan", expr)

    def test_shared_vs_independent_networks(self, rng):
        from repro.core.multiquery import MultiQueryEngine, SharedNetworkEngine

        config = GeneratorConfig(max_depth=3)
        for _ in range(25):
            queries = {f"q{i}": random_rpeq(rng, config) for i in range(5)}
            events = make_random_events(rng, max_depth=4)
            shared = SharedNetworkEngine(queries).evaluate(iter(events))
            plain = MultiQueryEngine(queries).evaluate(iter(events))
            assert {k: [m.position for m in v] for k, v in shared.items()} == {
                k: [m.position for m in v] for k, v in plain.items()
            }


class TestExtremes:
    def test_very_deep_document(self):
        depth = 3000
        doc = "<a>" * depth + "<z/>" + "</a>" * depth
        engine = SpexEngine("_*.z", collect_events=False)
        assert engine.count(doc) == 1
        assert engine.stats.network.max_stack == depth + 2

    def test_very_deep_with_qualifier(self):
        depth = 1500
        doc = "<a>" * depth + "<z/>" + "</a>" * depth
        engine = SpexEngine("_*.a[z]", collect_events=False)
        assert engine.count(doc) == 1
        assert len(engine._last_store._states) == 0

    def test_very_wide_with_qualifier(self):
        doc = "<r>" + "<a><b/></a>" * 3000 + "</r>"
        engine = SpexEngine("r.a[b]", collect_events=False)
        assert engine.count(doc) == 3000
        # Each instance resolves and releases immediately: flat memory.
        assert engine.stats.peak_live_variables <= 2

    def test_pathological_same_label_nesting(self):
        """Closure scopes nested 60 deep with a qualifier on each."""
        depth = 60
        doc = "<a>" * depth + "<b/>" + "</a>" * depth
        engine = SpexEngine("_*.a[b]", collect_events=False)
        # Every a has the b as descendant?  No — [b] tests children:
        # only the innermost a has the b child.
        assert engine.count(doc) == 1
        engine2 = SpexEngine("_*.a[_*.b]", collect_events=False)
        assert engine2.count(doc) == depth

    def test_many_documents_sequentially(self, rng):
        engine = SpexEngine("_*.a[b]", collect_events=False)
        for _ in range(50):
            events = make_random_events(rng, max_children=3, max_depth=4)
            expr_expected = oracle(engine.query, events)
            assert sorted(engine.positions(iter(events))) == expr_expected


class TestAxisFuzz:
    AXIS_QUERIES = [
        "_*.a.following::b",
        "_*.a.preceding::b",
        "_*.a[following::b].c",
        "_*.a[preceding::b].c",
        "_*._[following::a].b",
        "_*.a[b.following::c]",
        "_*.following::a.preceding::b",
    ]

    def test_axes_against_oracle(self, rng):
        from repro.rpeq.parser import parse

        for trial in range(150):
            expr = parse(rng.choice(self.AXIS_QUERIES))
            events = make_random_events(rng, max_children=3, max_depth=4)
            expected = oracle(expr, events)
            got = sorted(
                SpexEngine(expr, collect_events=False).positions(iter(events))
            )
            assert got == expected, (trial, expr)


class TestLongQueries:
    """Lemma V.1 at scale: thousand-step queries compile and evaluate."""

    def test_long_chain_compiles_linearly(self):
        from repro.rpeq.parser import parse

        query = parse(".".join(["a"] * 2000))
        engine = SpexEngine(query, collect_events=False)
        assert engine.network_degree() == 2002

    def test_long_chain_evaluates(self):
        from repro.rpeq.parser import parse
        from repro.xmlstream.parser import parse_string

        depth = 2000
        query = parse(".".join(["a"] * depth))
        doc = "<a>" * depth + "</a>" * depth
        engine = SpexEngine(query, collect_events=False)
        assert engine.positions(parse_string(doc)) == [depth]
        oracle_nodes = DomEvaluator(query).evaluate(parse_string(doc))
        assert [n.position for n in oracle_nodes] == [depth]

    def test_long_chain_unparse_round_trip(self):
        from repro.rpeq.parser import parse
        from repro.rpeq.unparse import unparse

        text = ".".join(["a"] * 2000)
        assert unparse(parse(text)) == text

    def test_long_union_chain(self):
        from repro.rpeq.parser import parse

        query = parse("|".join([f"l{i}" for i in range(500)]))
        engine = SpexEngine(query, collect_events=False)
        assert engine.positions("<l7/>") == [1]
