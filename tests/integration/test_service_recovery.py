"""Service recovery gate: SIGKILL the server, supervise it back, diff.

The CI ``service-recovery`` job's contract: a supervised ``spex serve
--listen`` process SIGKILLed at a seeded stream offset, restarted with
``--resume`` by :class:`~repro.service.supervisor.ServiceSupervisor`,
and rejoined by its durable-session subscriber must deliver a match
stream bit-identical to one uninterrupted offline ``serve()`` pass —
session token preserved, sequence numbers contiguous from 1, zero
duplicates.  ``SOAK_TRIALS`` scales the number of seeded kill points.
"""

import asyncio
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.core.multiquery import MultiQueryEngine
from repro.service.client import ProducerClient, SubscriberClient
from repro.service.loadgen import LoadConfig, load_documents
from repro.service.supervisor import (
    ServiceSupervisor,
    ServiceSupervisorConfig,
    ServiceSupervisorError,
)

TRIALS = int(os.environ.get("SOAK_TRIALS", "3"))
QUERY = "_*.name"


def offline_reference(documents):
    engine = MultiQueryEngine({"q1": QUERY})
    flat = [event for document in documents for event in document]
    return [
        (match.position, match.label) for _qid, match in engine.serve(iter(flat))
    ]


async def wait_ingested(producer):
    """Block until the server commits the last sent document."""
    while True:
        frame = await producer.conn.recv()
        if frame is None:
            raise ConnectionError("producer connection died awaiting commit")
        if frame.get("type") == "ingested":
            return frame


async def consume(client, stream, floors, stop_after=None):
    async for frame in client.frames():
        if frame.get("type") == "match":
            stream.append(
                (frame["seq"], frame["match"]["position"], frame["match"]["label"])
            )
            floors[frame["query_id"]] = max(
                floors.get(frame["query_id"], 0), frame["seq"]
            )
            if stop_after is not None and len(stream) >= stop_after:
                return "enough"
        elif frame.get("type") == "bye":
            return "bye"
    return "eof"


class TestSupervisedSigkillSoak:
    def test_sigkill_resume_replays_to_the_offline_stream(self, tmp_path):
        for trial in range(TRIALS):
            self._one_trial(tmp_path / f"trial{trial}", seed=101 + trial)

    def _one_trial(self, workdir, seed):
        workdir.mkdir()
        rng = random.Random(seed)
        documents = load_documents(
            LoadConfig(documents=8, doc_elements=20, seed=seed)
        )
        offline = offline_reference(documents)
        assert len(offline) >= 4, "trial stream too sparse to be a test"
        kill_after = rng.randrange(1, len(documents))
        # synced mode kills at a committed document boundary; burst mode
        # fires everything and kills with documents still in flight — an
        # arbitrary event offset from the server's point of view
        synced = rng.random() < 0.5
        supervisor = ServiceSupervisor(
            ServiceSupervisorConfig(
                checkpoint_path=str(workdir / "svc.ckpt"),
                wal_path=str(workdir / "svc.wal"),
                seed=seed,
                extra_args=["--checkpoint-every-docs", "2"],
            )
        )

        async def drive():
            host, port = await asyncio.to_thread(supervisor.start)
            stream, floors = [], {}
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            assert token is not None
            verdict = await sub.subscribe("q1", QUERY)
            assert verdict["type"] == "subscribed"
            producer = await ProducerClient.connect(host, port)
            try:
                for document in documents[:kill_after]:
                    await producer.send_events(document)
                    if synced:
                        await wait_ingested(producer)
            except ConnectionError:
                pass  # burst mode may lose the race with the kill
            # observe a seeded prefix so the resume floor is non-trivial
            try:
                await asyncio.wait_for(
                    consume(sub, stream, floors, stop_after=1 + rng.randrange(3)),
                    timeout=2.0,
                )
            except asyncio.TimeoutError:
                pass
            await asyncio.to_thread(supervisor.kill)
            await sub.close()
            await producer.close()

            host2, port2 = await asyncio.to_thread(
                supervisor.wait_for_server
            )
            sub2 = None
            for attempt in range(25):
                try:
                    sub2 = await SubscriberClient.connect(
                        host2, port2, session=token
                    )
                    break
                except ConnectionError:
                    await asyncio.sleep(0.01 * (attempt + 1))
            assert sub2 is not None, "resume connect never succeeded"
            assert sub2.session == token
            resumed = await sub2.resume(floors)
            assert resumed["type"] == "resumed"
            producer2 = await ProducerClient.connect(host2, port2)
            replay_from = producer2.conn.welcome["replay_from"]
            assert replay_from >= 1
            for document in documents[replay_from - 1 :]:
                await producer2.send_events(document)
                await wait_ingested(producer2)
            await producer2.close()
            finisher = asyncio.create_task(consume(sub2, stream, floors))
            returncode = await asyncio.to_thread(supervisor.stop)
            assert await finisher == "bye"
            await sub2.close()
            assert returncode == 0, "drain after resume must exit clean"
            return stream

        stream = asyncio.run(asyncio.wait_for(drive(), 120))
        assert supervisor.generations == 2, "exactly one supervised restart"
        seqs = [seq for seq, _, _ in stream]
        assert seqs == list(range(1, len(seqs) + 1)), (
            f"seed {seed}: seq gaps/dups {seqs}"
        )
        assert [(p, label) for _, p, label in stream] == offline, (
            f"seed {seed} (kill_after={kill_after}, synced={synced}) diverged"
        )


class TestStallWatchdog:
    def test_silent_startup_hang_is_killed_and_counted(self, tmp_path):
        """A child that hangs before printing any banner line must be
        killed by the monitor's startup watchdog and counted as a crash
        — the banner thread alone cannot do it, since its deadline check
        only runs when a line actually arrives."""
        supervisor = ServiceSupervisor(
            ServiceSupervisorConfig(
                checkpoint_path=str(tmp_path / "hang.ckpt"),
                wal_path=str(tmp_path / "hang.wal"),
                max_restarts=1,
                startup_timeout=0.5,
            )
        )
        # every generation hangs silently: no banner, no exit
        supervisor._command = lambda resume: [
            sys.executable,
            "-c",
            "import time; time.sleep(30)",
        ]
        try:
            with pytest.raises(ServiceSupervisorError):
                supervisor.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and (
                supervisor.alive or supervisor.restarts < 1
            ):
                time.sleep(0.05)
            assert supervisor.restarts >= 1, "stalled start never counted"
            assert not supervisor.alive, "hung child never killed"
        finally:
            supervisor.stop()


class TestSigintDrain:
    def test_sigint_equals_sigterm_clean_drain(self, tmp_path):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--listen", "127.0.0.1:0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on" in banner
            address = banner.rsplit(" ", 1)[-1].strip()
            host, _, port_text = address.rpartition(":")
            port = int(port_text)
            config = LoadConfig(subscribers=1, documents=6, doc_elements=16)

            async def drive() -> int:
                subscriber = await SubscriberClient.connect(host, port)
                verdict = await subscriber.subscribe("q", QUERY)
                assert verdict["type"] == "subscribed"
                producer = await ProducerClient.connect(host, port)
                for document in load_documents(config):
                    await producer.send_events(document)
                await producer.close()
                # Ctrl-C must behave exactly like SIGTERM: stop
                # accepting, flush committed matches, bye, exit 0 —
                # not a KeyboardInterrupt traceback
                process.send_signal(signal.SIGINT)
                matches = 0
                bye = None
                async for frame in subscriber.frames():
                    if frame.get("type") == "match":
                        matches += 1
                    elif frame.get("type") == "bye":
                        bye = frame
                await subscriber.close()
                assert bye is not None and bye["code"] == "SVC007"
                return matches

            matches = asyncio.run(asyncio.wait_for(drive(), 30))
            _out, err = process.communicate(timeout=20)
        except BaseException:
            process.kill()
            process.communicate()
            raise
        assert process.returncode == 0, err
        assert "Traceback" not in err
        assert matches > 0
