"""Differential testing: four independent evaluators must agree.

This is the backbone of the reproduction's correctness argument: the
streaming transducer network (SPEX), the declarative DOM oracle, the
tree-automaton evaluator and (on the qualifier-free fragment) the
lazy-DFA streamer are algorithmically unrelated implementations of the
same semantics — hypothesis hunts for any query/document pair where they
diverge.
"""

from hypothesis import HealthCheck, given, settings

from repro import SpexEngine
from repro.baselines import DomEvaluator, TreeAutomatonEvaluator, XScanEvaluator
from repro.analysis import analyze
from repro.xmlstream.tree import build_document

from ..conftest import event_streams, rpeq_queries

COMMON = dict(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_spex_agrees_with_dom_oracle(query, events):
    document = build_document(events)
    oracle = sorted(n.position for n in DomEvaluator(query).evaluate_document(document))
    spex = sorted(SpexEngine(query, collect_events=False).positions(iter(events)))
    assert spex == oracle


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_literal_fig11_compiler_agrees_with_dom_oracle(query, events):
    """The unoptimized split/closure/join translation is also correct."""
    document = build_document(events)
    oracle = sorted(n.position for n in DomEvaluator(query).evaluate_document(document))
    literal = sorted(
        SpexEngine(query, collect_events=False, optimize=False).positions(iter(events))
    )
    assert literal == oracle


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_tree_automaton_agrees_with_dom_oracle(query, events):
    document = build_document(events)
    oracle = sorted(n.position for n in DomEvaluator(query).evaluate_document(document))
    automaton = sorted(
        n.position for n in TreeAutomatonEvaluator(query).evaluate_document(document)
    )
    assert automaton == oracle


@settings(**COMMON)
@given(rpeq_queries(allow_qualifiers=False), event_streams())
def test_xscan_agrees_on_qualifier_free_fragment(query, events):
    assert analyze(query).qualifiers == 0
    document = build_document(events)
    oracle = sorted(n.position for n in DomEvaluator(query).evaluate_document(document))
    xscan = sorted(XScanEvaluator(query).evaluate(iter(events)))
    assert xscan == oracle


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_spex_output_in_document_order_without_duplicates(query, events):
    positions = SpexEngine(query, collect_events=False).positions(iter(events))
    assert positions == sorted(positions)
    assert len(positions) == len(set(positions))


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_spex_fragments_match_subtrees(query, events):
    """Every emitted fragment is exactly the matched element's subtree."""
    document = build_document(events)
    by_position = {node.position: node for node in document.root.iter_subtree()}
    for match in SpexEngine(query).run(iter(events)):
        node = by_position[match.position]
        assert match.label == node.label
        if match.position == 0:
            continue  # root fragment includes the envelope; skip
        start_tags = sum(
            1 for e in match.events if type(e).__name__ == "StartElement"
        )
        subtree_size = sum(1 for _ in node.iter_subtree())
        assert start_tags == subtree_size
