"""End-to-end differential gate for the certified rewrite engine.

The unit suite checks each rule on witness streams; this suite checks
the whole pipeline the way production uses it: every workload query —
and optimizable variants of it — is rewritten with certification on,
then the original and rewritten queries are evaluated on the *real*
dataset streams (plus adversarial shapes) and their match sequences
must be bit-identical.
"""

import pytest

from repro.analysis import rewrite_query
from repro.core.engine import SpexEngine
from repro.rpeq.unparse import unparse
from repro.workloads import (
    DMOZ_QUERIES,
    MONDIAL_QUERIES,
    TICKER_QUERIES,
    TREEBANK_QUERIES,
    WORDNET_QUERIES,
    XMARK_QUERIES,
    dmoz_structure,
    mondial,
    pathological_nesting,
    stock_ticker,
    treebank,
    wide_fanout,
    wordnet,
    xmark,
)

DATASETS = {
    "xmark": (lambda: xmark(seed=7, scale=15), XMARK_QUERIES),
    "mondial": (lambda: mondial(seed=7, countries=25), MONDIAL_QUERIES),
    "treebank": (lambda: treebank(seed=7, sentences=30), TREEBANK_QUERIES),
    "wordnet": (lambda: wordnet(seed=7, nouns=800), WORDNET_QUERIES),
    "dmoz": (lambda: dmoz_structure(seed=7, topics=250), DMOZ_QUERIES),
    "ticker": (lambda: stock_ticker(seed=7, limit=1200), TICKER_QUERIES),
}


def matches(query, events):
    engine = SpexEngine(query, collect_events=False, preflight=False)
    return [(m.position, m.label) for m in engine.run(iter(events))]


def variants(text):
    """Optimizable forms of a corpus query that must rewrite back to
    something match-equivalent: a trivially-true qualifier wrapped
    around the whole query, and a self-union of it."""
    return {
        "vacuous-qualifier": f"({text})[zzq*]",
        "self-union": f"(({text})|({text}))",
    }


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_corpus_rewrites_are_match_identical(dataset):
    build, queries = DATASETS[dataset]
    events = list(build())
    for number, text in sorted(queries.items(), key=lambda kv: str(kv[0])):
        expected = matches(text, events)
        for kind, variant in {"original": text, **variants(text)}.items():
            result, report = rewrite_query(variant)
            assert result.certified, (dataset, number, kind)
            assert report.ok, (dataset, number, kind)
            got = matches(result.rewritten, events)
            assert got == expected, (
                dataset,
                number,
                kind,
                unparse(result.rewritten),
            )


@pytest.mark.parametrize(
    "stream,query",
    [
        (lambda: pathological_nesting(depth=300), "_*.d"),
        (lambda: pathological_nesting(depth=300), "d+.d"),
        (lambda: wide_fanout(children=600), "table.row"),
        (lambda: wide_fanout(children=600), "_*.row"),
    ],
    ids=["nesting-wild", "nesting-plus", "fanout-direct", "fanout-wild"],
)
def test_adversarial_streams_rewrites_are_match_identical(stream, query):
    events = list(stream())
    expected = matches(query, events)
    assert expected, query  # the adversarial shapes must actually match
    for variant in variants(query).values():
        result, _ = rewrite_query(variant)
        assert result.certified
        assert matches(result.rewritten, events) == expected, variant


def test_variants_actually_exercise_the_rules():
    # Guard against the suite silently degenerating: both variant shapes
    # must trigger at least one rewrite step.
    for variant in variants("_*.item.name").values():
        result, _ = rewrite_query(variant)
        assert result.changed, variant
