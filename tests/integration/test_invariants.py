"""Property tests for the complexity invariants of Secs. IV-V."""

from hypothesis import HealthCheck, given, settings

from repro import SpexEngine
from repro.core.compiler import compile_network
from repro.analysis import analyze
from repro.rpeq.generate import query_family
from repro.workloads.generators import deep_chain, nested_closure_workload
from repro.xmlstream.stats import measure

from ..conftest import event_streams, rpeq_queries

COMMON = dict(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_stack_height_bounded_by_depth(query, events):
    """Sec. V: every depth stack has at most d (+1 envelope) entries."""
    depth = measure(iter(events)).max_depth
    engine = SpexEngine(query, collect_events=False)
    engine.evaluate(iter(events))
    assert engine.stats.network.max_stack <= depth + 1


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_every_condition_variable_determined_and_released(query, events):
    """At document end all qualifier instances are decided, and the
    store has released every one of them (bounded-memory invariant)."""
    engine = SpexEngine(query, collect_events=False)
    engine.evaluate(iter(events))
    store = engine._last_store
    assert store.live_variables == 0
    assert len(store._states) == 0


@settings(**COMMON)
@given(rpeq_queries(allow_qualifiers=False), event_streams())
def test_qualifier_free_formulas_constant(query, events):
    """Sec. V: for the rpeq* fragment, sigma == 1 (only 'true')."""
    engine = SpexEngine(query, collect_events=False)
    engine.evaluate(iter(events))
    assert engine.stats.network.max_formula_size <= 1


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_output_buffer_empty_at_document_end(query, events):
    """Every buffered candidate is resolved once the stream completes."""
    engine = SpexEngine(query)
    engine.evaluate(iter(events))
    sink = engine._last_network.sink
    assert len(sink._queue) == 0
    assert len(sink._log) == 0


class TestFormulaSizeRegimes:
    """The three fragments of the Sec. V sigma analysis."""

    def test_rpeq_qualifier_no_closure_sigma_bounded_by_qualifiers(self):
        # sigma <= min(n, d): queries with n qualifiers on child steps.
        query = query_family(4, 4)  # needs closure prefix; build manually
        from repro.rpeq.parser import parse

        engine = SpexEngine(parse("a[b].a[b].a[b]"), collect_events=False)
        engine.evaluate(deep_chain(6, label="a", leaf_label="b"))
        # No closure: each formula conjoins at most 3 variables.
        assert engine.stats.network.max_formula_size <= 3

    def test_wildcard_closure_with_qualifier_grows_with_nesting(self):
        from repro.rpeq.parser import parse

        expr = parse("_*.a[b]._*.c")
        sizes = []
        for nest in (2, 6):
            engine = SpexEngine(expr, collect_events=False)
            engine.evaluate(nested_closure_workload(repetitions=1, nest_depth=nest))
            sizes.append(engine.stats.network.max_formula_size)
        assert sizes[1] > sizes[0]  # formulas grow with stream depth

    def test_formula_size_bounded_by_depth_times_qualifiers(self):
        from repro.rpeq.parser import parse

        expr = parse("_*.a[b]")
        engine = SpexEngine(expr, collect_events=False)
        events = list(nested_closure_workload(repetitions=2, nest_depth=5))
        engine.evaluate(iter(events))
        depth = measure(iter(events)).max_depth
        assert engine.stats.network.max_formula_size <= depth


class TestNetworkLinearity:
    """Lemma V.1 over a generated query family."""

    def test_translation_output_linear(self):
        degrees = [
            compile_network(query_family(n, n // 2))[0].degree
            for n in (4, 8, 16)
        ]
        assert degrees[2] - degrees[1] == 2 * (degrees[1] - degrees[0])


@settings(**COMMON)
@given(rpeq_queries(), event_streams())
def test_runs_are_deterministic(query, events):
    """Two runs of the same engine on the same stream agree exactly."""
    engine = SpexEngine(query, collect_events=False)
    assert engine.positions(iter(events)) == engine.positions(iter(events))
