"""Tests of the *progressive* and *streamed* properties themselves.

The paper's defining claims: results are delivered on the fly, the
stream is never buffered wholesale, and the evaluator is stable on
unbounded streams of bounded depth.
"""

import itertools

from repro import SpexEngine
from repro.core.compiler import compile_network
from repro.rpeq.parser import parse
from repro.workloads import stock_ticker, wide_flat
from repro.xmlstream.events import events_from_tags
from repro.xmlstream.parser import parse_string


def emission_indices(query, events):
    """For each match, the stream index at which it was emitted."""
    network, _ = compile_network(parse(query))
    indices = []
    for index, event in enumerate(events):
        for _match in network.process_event(event):
            indices.append(index)
    return indices


class TestProgressiveEmission:
    def test_class1_emits_at_end_tag(self):
        """No-qualifier matches are emitted exactly at their end tag."""
        tags = ["<$>", "<a>", "<c>", "</c>", "</a>", "</$>"]
        events = list(events_from_tags(tags))
        assert emission_indices("a.c", events) == [3]  # </c>

    def test_class2_future_condition_waits_for_evidence(self):
        """<a><c/><b/></a> with _*.a[b].c: the c candidate must wait for
        the later <b> sibling, and is emitted right then — not at </$>."""
        tags = ["<$>", "<a>", "<c>", "</c>", "<b>", "</b>", "</a>", "</$>"]
        events = list(events_from_tags(tags))
        assert emission_indices("_*.a[b].c", events) == [4]  # at <b>

    def test_class2_unsatisfied_never_emits(self):
        tags = ["<$>", "<a>", "<c>", "</c>", "</a>", "</$>"]
        events = list(events_from_tags(tags))
        assert emission_indices("_*.a[b].c", events) == []

    def test_class4_past_condition_immediate(self):
        """<a><b/><c/></a>: evidence precedes the candidate, which is
        therefore emitted at its own end tag."""
        tags = ["<$>", "<a>", "<b>", "</b>", "<c>", "</c>", "</a>", "</$>"]
        events = list(events_from_tags(tags))
        assert emission_indices("_*.a[b].c", events) == [5]  # </c>

    def test_first_match_before_stream_ends(self):
        events = list(wide_flat(elements=100))
        indices = emission_indices("root.item", events)
        assert indices[0] < len(events) // 10


class TestUnboundedStreams:
    def test_matches_flow_from_endless_stream(self):
        engine = SpexEngine("_*.trade.price", collect_events=False)
        stream = stock_ticker(seed=3)  # no limit: endless
        first_ten = list(itertools.islice(engine.run(stream), 10))
        assert len(first_ten) == 10

    def test_memory_flat_over_long_stream(self):
        engine = SpexEngine("_*.trade[alert].price", collect_events=False)
        checkpoints = []
        run = engine.run(stock_ticker(seed=3, limit=6000))
        for count, _match in enumerate(run):
            if count in (50, 300):
                checkpoints.append(
                    (
                        engine.stats.output.peak_pending_candidates,
                        engine.stats.network.max_stack,
                        engine._last_store.live_variables,
                    )
                )
        # Peaks reached early do not grow with stream length.
        assert checkpoints[0] == checkpoints[1]

    def test_store_fully_released_on_long_stream(self):
        engine = SpexEngine("_*.trade[alert].symbol", collect_events=False)
        list(engine.run(stock_ticker(seed=5, limit=3000)))
        # Only the never-closed feed/root scopes may remain undetermined.
        assert len(engine._last_store._states) <= 2


class TestTruncatedStreams:
    def test_undecided_candidates_withheld(self):
        """A truncated stream must not emit candidates whose qualifier
        was still undecided at the cut."""
        text = "<a><c/><b/></a>"
        events = list(parse_string(text))
        truncated = events[:3]  # <$> <a> <c>  (cut before </c>)
        engine = SpexEngine("_*.a[b].c", collect_events=False)
        assert list(engine.run(iter(truncated))) == []

    def test_decided_prefix_still_delivered(self):
        text = "<a><b/><c/><x/></a>"
        events = list(parse_string(text))
        truncated = events[:6]  # up to and including </c>
        engine = SpexEngine("_*.a[b].c", collect_events=False)
        assert [m.position for m in engine.run(iter(truncated))] == [3]
