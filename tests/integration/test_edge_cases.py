"""Edge cases and robustness of the end-to-end engine."""

import pytest

from repro import SpexEngine
from repro.errors import StreamError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
)


class TestDegenerateDocuments:
    def test_empty_element_document(self):
        assert SpexEngine("a").positions("<a/>") == [1]

    def test_document_with_only_root(self):
        assert SpexEngine("_*._").positions("<x/>") == [1]

    def test_no_match_on_empty_document(self):
        assert SpexEngine("a.b.c").positions("<a/>") == []

    def test_empty_event_stream(self):
        assert SpexEngine("a").positions(iter([])) == []

    def test_envelope_only(self):
        events = [StartDocument(), EndDocument()]
        assert SpexEngine("_").positions(iter(events)) == []
        assert SpexEngine("_*").positions(iter(events)) == [0]

    def test_single_deep_chain(self):
        doc = "<a>" * 30 + "</a>" * 30
        assert SpexEngine("a+").count(doc) == 30

    def test_very_wide_document(self):
        doc = "<r>" + "<x/>" * 2000 + "</r>"
        assert SpexEngine("r.x").count(doc) == 2000

    def test_unicode_labels(self):
        doc = "<répertoire><fichier/></répertoire>"
        assert SpexEngine("répertoire.fichier").positions(doc) == [2]

    def test_labels_with_digits_and_hyphens(self):
        doc = "<h1><sub-item/></h1>"
        assert SpexEngine("h1.sub-item").positions(doc) == [2]


class TestRepeatedAndSameLabelStructures:
    def test_same_label_everywhere(self):
        doc = "<a><a><a/><a/></a><a/></a>"
        assert SpexEngine("a.a.a").count(doc) == 2
        assert SpexEngine("a+").count(doc) == 5

    def test_qualifier_on_self_label(self):
        doc = "<a><a><a/></a></a>"
        # a elements having an a child: positions 1 and 2.
        assert SpexEngine("_*.a[a]").positions(doc) == [1, 2]

    def test_deeply_stacked_qualifiers(self):
        doc = "<a><b/><c/><d/></a>"
        assert SpexEngine("a[b][c][d]").positions(doc) == [1]
        assert SpexEngine("a[b][c][x]").positions(doc) == []

    def test_qualifier_condition_matching_multiple_times(self):
        # Many pieces of evidence for one instance: first wins, rest are
        # no-ops, and the answer has no duplicates.
        doc = "<a>" + "<b/>" * 50 + "<c/></a>"
        assert SpexEngine("a[b].c").count(doc) == 1


class TestMalformedStreams:
    def test_malformed_xml_text_raises(self):
        with pytest.raises(StreamError):
            SpexEngine("a").evaluate("<a><b></a>")

    def test_mismatched_event_stream_raises(self):
        events = [
            StartDocument(),
            StartElement("a"),
            EndElement("b"),
            EndDocument(),
        ]
        with pytest.raises(StreamError):
            SpexEngine("a").evaluate(iter(events))

    def test_validation_can_be_disabled(self):
        # With validate=False the engine trusts the caller, as the
        # paper's model does; garbage in, garbage out.
        events = [
            StartDocument(),
            StartElement("a"),
            EndElement("a"),
            EndDocument(),
        ]
        engine = SpexEngine("a", collect_events=False)
        assert [m.position for m in engine.run(iter(events), validate=False)] == [1]


class TestEngineLifecycle:
    def test_interleaved_runs_are_independent(self):
        engine = SpexEngine("_*.c", collect_events=False)
        first = engine.run("<a><c/></a>")
        next(first)  # start the first run
        # A second run compiles a fresh network; the first iterator is
        # simply abandoned (its network is garbage).
        assert engine.positions("<a><c/><c/></a>") == [2, 3]

    def test_generator_close_mid_run(self):
        engine = SpexEngine("_*._", collect_events=False)
        run = engine.run("<a><b/><c/></a>")
        next(run)
        run.close()  # must not raise

    def test_fragments_of_adjacent_matches_do_not_overlap(self):
        doc = "<r><a>1</a><a>2</a></r>"
        matches = SpexEngine("r.a").evaluate(doc)
        assert [m.to_xml() for m in matches] == ["<a>1</a>", "<a>2</a>"]


class TestAttributesRideAlong:
    def test_attributes_preserved_in_fragments(self):
        doc = '<r><a id="7"><b x="y"/></a></r>'
        (match,) = SpexEngine("r.a").evaluate(doc)
        assert match.to_xml() == '<a id="7"><b x="y"></b></a>'

    def test_attributes_do_not_affect_matching(self):
        assert SpexEngine("a.b").count('<a><b id="1"/><b id="2"/></a>') == 2
