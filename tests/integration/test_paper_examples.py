"""End-to-end reproduction of every worked example in the paper."""

from repro import SpexEngine
from repro.cq import CqEngine
from repro.xmlstream.events import events_from_tags

from ..conftest import PAPER_DOC, PAPER_STREAM_TAGS


class TestFig1Stream:
    def test_serialized_document_streams_to_fig1_notation(self):
        from repro.xmlstream.parser import parse_string
        from repro.xmlstream.events import tags_from_events

        assert tags_from_events(parse_string(PAPER_DOC)) == PAPER_STREAM_TAGS


class TestExampleIII1:
    """a.c against the Fig. 1 stream selects the depth-2 <c>."""

    def test_result(self):
        assert SpexEngine("a.c").positions(PAPER_DOC) == [5]

    def test_from_tag_stream(self):
        events = events_from_tags(PAPER_STREAM_TAGS)
        assert SpexEngine("a.c").positions(events) == [5]


class TestExampleIII2:
    """a+.c+ selects both <c> elements (nested closure scopes)."""

    def test_result(self):
        assert SpexEngine("a+.c+").positions(PAPER_DOC) == [3, 5]

    def test_first_match_found_via_nested_scope(self):
        # The match at position 3 only exists because the closure
        # transducer handles the nested second scope of <a><a>.
        matches = SpexEngine("a+.c+").evaluate(PAPER_DOC)
        assert matches[0].position == 3


class TestSectionIII10:
    """The complete example: _*.a[b].c with candidate bookkeeping."""

    def test_final_result(self):
        assert SpexEngine("_*.a[b].c").positions(PAPER_DOC) == [5]

    def test_candidate1_created_then_dropped(self):
        """The first <c> becomes a candidate that {co2,false} discards."""
        engine = SpexEngine("_*.a[b].c")
        matches = engine.evaluate(PAPER_DOC)
        stats = engine.stats
        assert stats.output.candidates_created == 2
        assert stats.output.candidates_dropped == 1
        assert [m.position for m in matches] == [5]

    def test_two_qualifier_instances_created(self):
        """One condition variable per matched <a> (co1 and co2)."""
        engine = SpexEngine("_*.a[b].c")
        engine.evaluate(PAPER_DOC)
        assert engine.stats.condition_variables == 2

    def test_candidate2_emitted_before_stream_end(self):
        """candidate2 'is directly sent to output': its formula is already
        determined when it completes, so the match is emitted right at
        its end tag — three events before the stream ends."""
        events = list(events_from_tags(PAPER_STREAM_TAGS))
        engine = SpexEngine("_*.a[b].c")
        emitted_at = []
        run = engine.run(iter(events))
        # Manually interleave: count events consumed per match.
        from repro.core.compiler import compile_network

        network, _ = compile_network(engine.query)
        for index, event in enumerate(events):
            for match in network.process_event(event):
                emitted_at.append(index)
        assert emitted_at == [9]  # the second </c>, index 9, not </$> (11)

    def test_network_matches_fig12_topology(self):
        # The literal (non-optimizing) translation reproduces Fig. 12.
        text = SpexEngine("_*.a[b].c", optimize=False).describe_network()
        for piece in ("IN", "SP", "CL(_+)", "JO", "CH(a)", "VC(q0)",
                      "CH(b)", "VF(q0+)", "VD(q0)", "CH(c)", "OU"):
            assert piece in text


class TestSectionVIIExample:
    """The conjunctive query of Sec. VII equals the rpeq of Sec. III.10."""

    def test_equivalence(self):
        cq = CqEngine("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3")
        cq_result = [m.position for m in cq.evaluate(PAPER_DOC)["X3"]]
        assert cq_result == SpexEngine("_*.a[b].c").positions(PAPER_DOC)


class TestTheoremIV1Language:
    """The language L(a) of Theorem IV.1: child-of-root selection needs a
    stack — nested a's below other elements must not match."""

    def test_only_root_children_match(self):
        doc = "<x><a><y><a/></y></a></x>"
        # Query 'a' from the root: no top-level a (root child is x).
        assert SpexEngine("a").positions(doc) == []
        # Against a doc with a root-level a, only that one matches.
        doc2 = "<a><y><a/></y></a>"
        assert SpexEngine("a").positions(doc2) == [1]
