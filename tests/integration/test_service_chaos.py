"""Service chaos gate: misbehaving clients vs the asyncio frontend.

Two properties the CI ``service-chaos`` job defends:

1. **Differential** — with seeded slow readers, mid-stream
   disconnectors and an abusive producer pushing guaranteed-malformed
   documents and protocol junk, every *surviving* subscriber's match
   stream must be bit-identical to an offline
   :meth:`~repro.core.multiquery.MultiQueryEngine.serve` pass over the
   same documents.  The service and ``serve()`` share one
   :class:`~repro.core.multiquery.ServePump`, so any divergence means a
   transport bug leaked into the answer.
2. **Drain** — ``spex serve --listen`` under SIGTERM stops accepting,
   flushes committed matches and exits 0.
"""

import asyncio
from collections import defaultdict

import pytest

from repro.core.multiquery import MultiQueryEngine
from repro.service.loadgen import (
    LoadConfig,
    load_documents,
    load_subscriptions,
    run_load_async,
)
from repro.service.server import ServiceConfig

CHAOS_CONFIG = LoadConfig(
    subscribers=8,
    documents=12,
    doc_elements=24,
    seed=13,
    slow_subscribers=2,
    slow_delay=0.001,
    disconnect_subscribers=1,
    disconnect_after_matches=1,
    abusive_producer=True,
    abusive_documents=4,
)


def offline_streams(config: LoadConfig) -> dict:
    """Ground truth per query id: the offline pump over the same load."""
    queries = {
        query_id: query
        for per_subscriber in load_subscriptions(config)
        for query_id, query in per_subscriber
    }
    engine = MultiQueryEngine(queries)
    pump = engine.start_pump()
    streams = defaultdict(list)
    for index, document in enumerate(load_documents(config)):
        for event in document:
            for query_id, match in pump.feed(event):
                streams[query_id].append((index, match.position, match.label))
    return dict(streams)


class TestChaosDifferential:
    def test_survivors_match_offline_bit_for_bit(self):
        report, service = asyncio.run(
            asyncio.wait_for(
                run_load_async(
                    CHAOS_CONFIG,
                    ServiceConfig(tick=0.005, heartbeat_interval=None),
                ),
                60,
            )
        )
        assert service is not None
        assert report.drained_cleanly
        # the abusive producer's garbage all earned wire errors and
        # never shifted the honest stream's document indices
        assert report.abusive_rejections >= CHAOS_CONFIG.abusive_documents
        assert service.stats.documents_ingested == CHAOS_CONFIG.documents
        assert service.stats.documents_rejected >= CHAOS_CONFIG.abusive_documents

        expected = offline_streams(CHAOS_CONFIG)
        survivors = [sub for sub in report.subscribers if not sub.disconnected]
        assert len(survivors) == (
            CHAOS_CONFIG.subscribers - CHAOS_CONFIG.disconnect_subscribers
        )
        checked = 0
        for sub in survivors:
            observed = defaultdict(list)
            for query_id, document, position, label in sub.matches:
                observed[query_id].append((document, position, label))
            for query_id in sub.queries:
                assert observed.get(query_id, []) == expected.get(query_id, []), (
                    f"subscriber {sub.index} diverged on {query_id}"
                )
                checked += 1
        assert checked == sum(len(sub.queries) for sub in survivors)
        # every delivered match carried a measurable latency sample
        assert all(
            len(sub.latencies) == len(sub.matches) for sub in report.subscribers
        )

    def test_disconnectors_never_poison_the_pass(self):
        report, service = asyncio.run(
            asyncio.wait_for(
                run_load_async(
                    CHAOS_CONFIG,
                    ServiceConfig(tick=0.005, heartbeat_interval=None),
                ),
                60,
            )
        )
        assert service is not None
        dead = [sub for sub in report.subscribers if sub.disconnected]
        assert len(dead) == CHAOS_CONFIG.disconnect_subscribers
        # an abrupt client disconnect is lifecycle, not degradation:
        # the serving report must not latch a degraded outcome for it
        assert not service.degraded


class TestSigtermDrain:
    def test_listen_process_drains_to_exit_zero(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys

        from repro.service.client import ProducerClient, SubscriberClient
        from repro.service.loadgen import load_documents

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--listen", "127.0.0.1:0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on" in banner
            address = banner.rsplit(" ", 1)[-1].strip()
            host, _, port_text = address.rpartition(":")
            port = int(port_text)
            config = LoadConfig(subscribers=1, documents=6, doc_elements=16)

            async def drive() -> int:
                subscriber = await SubscriberClient.connect(host, port)
                verdict = await subscriber.subscribe("q", "_*.name")
                assert verdict["type"] == "subscribed"
                producer = await ProducerClient.connect(host, port)
                for document in load_documents(config):
                    await producer.send_events(document)
                await producer.close()
                # SIGTERM mid-session: committed matches must still
                # arrive, terminated by a clean draining bye
                process.send_signal(signal.SIGTERM)
                matches = 0
                bye = None
                async for frame in subscriber.frames():
                    if frame.get("type") == "match":
                        matches += 1
                    elif frame.get("type") == "bye":
                        bye = frame
                await subscriber.close()
                assert bye is not None and bye["code"] == "SVC007"
                return matches

            matches = asyncio.run(asyncio.wait_for(drive(), 30))
            _out, err = process.communicate(timeout=20)
        except BaseException:
            process.kill()
            process.communicate()
            raise
        assert process.returncode == 0, err
        assert matches > 0
