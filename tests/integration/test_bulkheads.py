"""Bulkhead isolation acceptance: the chaos-serving invariants.

The load-bearing guarantee of the serving layer: a poisoned or
over-budget query NEVER changes a healthy query's results.  The soak
here is the CI chaos gate (``SOAK_TRIALS`` scales it up).
"""

import os
import random
from itertools import chain, islice

import pytest

from repro import Checkpoint, StreamCursor
from repro.core.clock import FakeClock
from repro.core.multiquery import MultiQueryEngine
from repro.core.serving import AdmissionPolicy, BreakerPolicy, ServingPolicy
from repro.xmlstream.parser import ParserLimits, iter_documents, iter_events
from repro.xmlstream.recovery import ErrorReport
from repro.workloads import billion_laughs

from ..conftest import make_random_events

TRIALS = int(os.environ.get("SOAK_TRIALS", "30"))

HEALTHY_QUERIES = ["_*.b", "a.b", "_*.a[b].c", "_*[c].b", "_*.a._*.d"]

# σ̂("_*[b].b") = 2 > degrade_sigma, so the poison query is admitted
# degraded — and its tiny degraded buffer ceiling trips mid-document.
POISON_ADMISSION = AdmissionPolicy(
    degrade_sigma=1, depth_bound=16, degraded_max_buffered_events=2
)
POISON_QUERY = "_*[b].b"


def stream(*docs):
    """Concatenate single-document XML strings into one event stream."""
    return list(chain.from_iterable(list(iter_events(doc)) for doc in docs))


def random_stream(rng, documents=3):
    events = []
    for _ in range(documents):
        events.extend(make_random_events(rng, max_children=3, max_depth=4))
    return events


def served(engine, events, **kw):
    return [(qid, m.position) for qid, m in engine.serve(iter(events), **kw)]


class TestDifferentialIsolation:
    """Quarantining query A never changes query B's results."""

    def test_poison_neighbour_soak(self):
        # the solo baseline runs under the SAME admission policy — the
        # one and only difference is the poison neighbour's presence
        rng = random.Random(0xB01)
        for trial in range(TRIALS):
            events = random_stream(rng)
            healthy_query = rng.choice(HEALTHY_QUERIES)
            solo = MultiQueryEngine(
                {"healthy": healthy_query},
                collect_events=True,
                admission=POISON_ADMISSION,
            )
            baseline = served(solo, events)
            noisy = MultiQueryEngine(
                {"healthy": healthy_query, "poison": POISON_QUERY},
                collect_events=True,
                admission=POISON_ADMISSION,
            )
            got = served(noisy, events)
            healthy = [(q, p) for q, p in got if q == "healthy"]
            assert healthy == baseline, (
                f"trial {trial}: poison neighbour changed healthy results"
            )
            solo_outcome = solo.serving.outcomes["healthy"]
            noisy_outcome = noisy.serving.outcomes["healthy"]
            assert (solo_outcome.status, solo_outcome.code) == (
                noisy_outcome.status,
                noisy_outcome.code,
            ), f"trial {trial}"

    def test_poison_actually_trips(self):
        # guard against the soak silently testing nothing: the poison
        # query must really quarantine on these streams
        rng = random.Random(0xB01)
        engine = MultiQueryEngine(
            {"healthy": "_*.b", "poison": POISON_QUERY},
            collect_events=True,
            admission=POISON_ADMISSION,
        )
        trips = 0
        for _ in range(5):
            list(engine.serve(iter(random_stream(rng))))
            trips += engine.serving.quarantines
        assert trips > 0

    def test_document_wise_isolation(self):
        rng = random.Random(0xB02)
        for trial in range(max(3, TRIALS // 5)):
            events = random_stream(rng)
            solo = MultiQueryEngine({"healthy": "_*.b"}, collect_events=True)
            baseline = served(solo, events, on_error="skip")
            noisy = MultiQueryEngine(
                {"healthy": "_*.b", "poison": POISON_QUERY},
                collect_events=True,
                admission=POISON_ADMISSION,
            )
            got = served(noisy, events, on_error="skip")
            assert [(q, p) for q, p in got if q == "healthy"] == baseline


class TestAdversarialAcceptance:
    """Billion-laughs + an over-budget query: healthy queries complete."""

    def test_entity_bomb_and_rejected_query(self):
        report = ErrorReport()
        sources = [
            "<a><b>1</b></a>",
            billion_laughs(),
            "<a><b>2</b></a>",
        ]
        engine = MultiQueryEngine(
            {
                "healthy": "_*.b",
                "over_budget": "_*.a[_*.b]",  # σ̂ = 2·d, over any sane budget
            },
            admission=AdmissionPolicy(reject_sigma=4, depth_bound=64),
        )
        assert engine.admissions["over_budget"].status == "rejected"
        events = iter_documents(
            sources, limits=ParserLimits.default(), report=report
        )
        matches = list(engine.serve(events, on_error="skip"))
        # the bomb was refused at the parser, recorded, and skipped
        assert [r.action for r in report.records] == ["parse_error"]
        # the healthy query served both healthy documents
        assert [q for q, _ in matches] == ["healthy", "healthy"]
        assert engine.serving.outcomes["healthy"].healthy
        assert engine.serving.outcomes["over_budget"].code == "ADMIT003"

    def test_deadline_is_per_query_not_global(self):
        clock = FakeClock()

        def ticking(events):
            for event in events:
                clock.advance(0.2)
                yield event

        engine = MultiQueryEngine({"q1": "_*.b", "q2": "a.b"})
        events = stream("<a><b>x</b></a>", "<a><b>y</b></a>")
        # the generator must end cleanly with partial results — a
        # deadline is a per-query outcome, never a raised global abort
        matches = list(
            engine.serve(
                ticking(events),
                policy=ServingPolicy(stream_deadline=1.0),
                clock=clock,
            )
        )
        assert matches  # the first document made it out
        for outcome in engine.serving.outcomes.values():
            assert outcome.status == "deadline"
            assert outcome.code == "DEADLINE_STREAM"


class TestCheckpointRoundTrip:
    """Quarantine and breaker state survive checkpoint/resume."""

    def test_latched_query_stays_out_after_resume(self):
        doc = "<a><b>x</b><b>y</b><b>z</b></a>"
        events = stream(doc, doc, doc)
        policy = ServingPolicy(breaker=BreakerPolicy(max_trips=1))

        solo = MultiQueryEngine({"healthy": "_*.b"}, collect_events=True)
        baseline = served(solo, events)

        engine = MultiQueryEngine(
            {"healthy": "_*.b", "poison": POISON_QUERY},
            collect_events=True,
            admission=POISON_ADMISSION,
        )
        cursor = StreamCursor()
        cut = len(events) // 2
        got = served(
            engine, list(islice(iter(events), cut)), policy=policy, cursor=cursor
        )
        assert engine.serving.outcomes["poison"].status == "quarantined"

        restored = Checkpoint.from_dict(engine.checkpoint().to_dict())
        fresh = MultiQueryEngine.from_checkpoint(
            restored, admission=POISON_ADMISSION
        )
        got += [
            (qid, m.position)
            for qid, m in fresh.resume(restored, iter(events), policy=policy)
        ]

        # the latched poison query was never silently re-admitted
        poison = fresh.serving.outcomes["poison"]
        assert poison.status == "quarantined" and poison.readmissions == 0
        assert not any(q == "poison" for q, _ in got[cut:])
        # and the healthy query lost nothing across the interruption
        assert [(q, p) for q, p in got if q == "healthy"] == baseline

    def test_random_cut_soak(self):
        rng = random.Random(0xB03)
        policy = ServingPolicy(breaker=BreakerPolicy(max_trips=1))
        for _trial in range(max(3, TRIALS // 5)):
            events = random_stream(rng)
            solo = MultiQueryEngine({"healthy": "_*.b"}, collect_events=True)
            baseline = served(solo, events)
            engine = MultiQueryEngine(
                {"healthy": "_*.b", "poison": POISON_QUERY},
                collect_events=True,
                admission=POISON_ADMISSION,
            )
            cursor = StreamCursor()
            cut = rng.randrange(0, len(events) + 1)
            got = served(
                engine,
                list(islice(iter(events), cut)),
                policy=policy,
                cursor=cursor,
            )
            restored = Checkpoint.from_dict(engine.checkpoint().to_dict())
            fresh = MultiQueryEngine.from_checkpoint(
                restored, admission=POISON_ADMISSION
            )
            got += [
                (qid, m.position)
                for qid, m in fresh.resume(restored, iter(events), policy=policy)
            ]
            assert [(q, p) for q, p in got if q == "healthy"] == baseline, (
                f"cut {cut}"
            )
