"""Tests for the following/preceding extension (paper Sec. I prototype).

The paper's core language has only forward child/descendant steps; its
prototype "supports also other XPath navigational capabilities, i.e.
following and preceding".  These tests cover the reproduction of that
capability: parsing, declarative semantics, the streaming transducers,
axis steps inside qualifiers, and differential agreement with the DOM
oracle on randomized documents.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SpexEngine
from repro.baselines import DomEvaluator, XScanEvaluator
from repro.errors import UnsupportedFeatureError
from repro.rpeq.ast import Following, Label, Preceding
from repro.rpeq.parser import parse
from repro.rpeq.unparse import unparse
from repro.rpeq.xpath import xpath_to_rpeq
from repro.xmlstream.tree import build_document

from ..conftest import PAPER_DOC, event_streams


class TestParsing:
    def test_following_step(self):
        assert parse("following::b") == Following(Label("b"))

    def test_preceding_step(self):
        assert parse("preceding::b") == Preceding(Label("b"))

    def test_in_path(self):
        expr = parse("_*.a.following::b")
        assert any(isinstance(n, Following) for n in expr.walk())

    def test_explicit_child_descendant_axes(self):
        assert parse("child::a") == parse("a")
        assert parse("descendant::a") == parse("_*.a")

    def test_unknown_axis_rejected(self):
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError, match="unknown axis"):
            parse("ancestor::a")

    def test_unparse_round_trip(self):
        for query in ("following::b", "_*.a.preceding::c", "a[following::b]"):
            assert parse(unparse(parse(query))) == parse(query)

    def test_xpath_front_end(self):
        assert xpath_to_rpeq("//a/following::b") == parse("_*.a.following::b")
        assert xpath_to_rpeq("//a[preceding::b]") == parse("_*.a[preceding::b]")


class TestDeclarativeSemantics:
    """Against the paper's Fig. 1 document: a(a(c) b c)."""

    def doc(self, query):
        from repro.xmlstream.parser import parse_string

        document = build_document(parse_string(PAPER_DOC))
        return sorted(
            n.position for n in DomEvaluator(parse(query)).evaluate_document(document)
        )

    def test_following_excludes_own_subtree(self):
        # following of the inner <a> (pos 2): b (4) and c (5); its own
        # child c (3) is inside the subtree.
        assert self.doc("a.a.following::_") == [4, 5]

    def test_preceding_excludes_ancestors(self):
        # preceding of <b> (pos 4): the inner a (2) and its c (3), but
        # not the ancestor a (1).
        assert self.doc("_*.b.preceding::_") == [2, 3]

    def test_following_of_root_is_empty(self):
        assert self.doc("following::_") == []

    def test_preceding_of_first_element_is_empty(self):
        assert self.doc("a.preceding::_") == []


class TestStreamingAgreement:
    @pytest.mark.parametrize(
        "query",
        [
            "_*.a.following::c",
            "_*.b.preceding::c",
            "_*.c[following::b]",
            "_*.a[preceding::c].c",
            "_*._[following::c]",
            "_*.following::a.preceding::b",
        ],
    )
    def test_paper_document(self, query):
        from repro.xmlstream.parser import parse_string

        document = build_document(parse_string(PAPER_DOC))
        oracle = sorted(
            n.position for n in DomEvaluator(parse(query)).evaluate_document(document)
        )
        assert sorted(SpexEngine(query).positions(PAPER_DOC)) == oracle

    AXIS_QUERIES = [
        "_*.a.following::b",
        "_*.a.preceding::b",
        "_*.a[following::b].c",
        "_*.a[preceding::b].c",
        "a.following::_.c",
        "_*.preceding::a[b]",
        "(a|b).following::c?",
        "_*.a[preceding::b.c]",
        "_*.a[b.preceding::c]",
        "_*.a[following::b[c]]",
        "_*.a[preceding::b][c]",
        "_*._[following::a].b",
    ]

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.sampled_from(AXIS_QUERIES), event_streams())
    def test_differential_with_oracle(self, query, events):
        expr = parse(query)
        oracle = sorted(
            n.position
            for n in DomEvaluator(expr).evaluate_document(build_document(events))
        )
        spex = sorted(
            SpexEngine(expr, collect_events=False).positions(iter(events))
        )
        assert spex == oracle


class TestAutomatonBaselinesReject:
    def test_xscan_rejects_axes(self):
        with pytest.raises(UnsupportedFeatureError):
            XScanEvaluator(parse("a.following::b"))

    def test_tree_automaton_rejects_axes(self):
        from repro.baselines import TreeAutomatonEvaluator

        with pytest.raises(UnsupportedFeatureError):
            TreeAutomatonEvaluator(parse("a.preceding::b"))


class TestProgressiveness:
    def test_following_matches_stream_progressively(self):
        """following:: results are emitted as the later elements close."""
        from repro.core.compiler import compile_network
        from repro.xmlstream.parser import parse_string

        events = list(parse_string("<r><a/><x/><y/></r>"))
        network, _ = compile_network(parse("_*.a.following::_"))
        emitted_at = [
            index
            for index, event in enumerate(events)
            for _match in network.process_event(event)
        ]
        # x closes at index 5, y at 7 — both well before </$> (index 9).
        assert emitted_at == [5, 7]

    def test_preceding_buffers_until_context(self):
        """preceding:: candidates wait for a later context node."""
        from repro.core.compiler import compile_network
        from repro.xmlstream.parser import parse_string

        events = list(parse_string("<r><x/><a/></r>"))
        network, _ = compile_network(parse("_*.a.preceding::x"))
        emitted_at = [
            index
            for index, event in enumerate(events)
            for _match in network.process_event(event)
        ]
        # x (indices 2/3) resolves only once <a> appears (index 4).
        assert emitted_at == [4]

    def test_preceding_unmatched_dropped_at_document_end(self):
        engine = SpexEngine("_*.a.preceding::x", collect_events=False)
        assert engine.positions("<r><x/><b/></r>") == []
        # The speculation variable is closed and released.
        assert len(engine._last_store._states) == 0
