"""End-to-end lane differential: the CI ``lane-differential`` gate.

The planner (PR 8) *chose* execution lanes; this PR makes them real.
The acceptance property is strict: for a corpus spanning every lane
(``dfa``, ``hybrid``, ``gated``, ``network``) and **every** combination
of optimization knobs, the multi-query engine must emit the exact match
stream of the unoptimized pure-network pass — same positions, same
labels, same cross-query interleaving — through every entry point:
:meth:`~repro.core.multiquery.MultiQueryEngine.run`,
:meth:`~repro.core.multiquery.MultiQueryEngine.serve`, and a
checkpoint/resume cut mid-stream.

The planner invariant rides along: under default flags every query the
planner put on the ``dfa`` lane must actually have *executed* on the
shared lazy DFA (:attr:`~repro.core.multiquery.MultiQueryEngine.stats`
counters), so a silent demotion can never masquerade as coverage.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro import Checkpoint, StreamCursor
from repro.analysis.planner import lane_counts
from repro.core.multiquery import MultiQueryEngine
from repro.core.optimize import (
    ALL_OPTIMIZATIONS,
    NO_OPTIMIZATIONS,
    all_knob_combinations,
)

#: Queries chosen so the default plan covers every execution lane.
CORPUS = {
    "dfa-plain": "a.c",
    "dfa-closure": "_*.c",
    "dfa-union": "a._.c|a.b",
    "hybrid-trailing": "_*.a[c]",
    "hybrid-path-cond": "_*.b[c.a]",
    "gated-inner": "a[b.c].(b|c)",
    "gated-stacked": "_*[b]._*.c",
    "network-axis": "a.following::b",
    "network-preceding": "_*.c[preceding::a]",
}


def _stream(seed: int = 0xC0FFEE, documents: int = 3) -> list:
    from ..conftest import make_random_events

    rng = random.Random(seed)
    events = []
    for _ in range(documents):
        events.extend(make_random_events(rng, max_children=4, max_depth=5))
    return events


EVENTS = _stream()


def _fingerprints(pairs):
    return [(query_id, m.position, m.label, m.events) for query_id, m in pairs]


@pytest.fixture(scope="module")
def reference():
    engine = MultiQueryEngine(CORPUS, optimize=NO_OPTIMIZATIONS)
    return _fingerprints(engine.run(iter(EVENTS)))


class TestRunDifferential:
    def test_corpus_covers_every_lane(self):
        engine = MultiQueryEngine(CORPUS)
        assert all(count > 0 for count in lane_counts(engine.plans).values())

    @pytest.mark.parametrize(
        "flags", all_knob_combinations(), ids=lambda f: f.describe() or "none"
    )
    def test_every_knob_combination_is_bit_identical(self, flags, reference):
        engine = MultiQueryEngine(CORPUS, optimize=flags)
        assert _fingerprints(engine.run(iter(EVENTS))) == reference


class TestServeDifferential:
    def test_serving_pass_is_bit_identical(self, reference):
        engine = MultiQueryEngine(CORPUS)
        got = _fingerprints(engine.serve(iter(EVENTS)))
        assert got == reference
        assert engine.serving is not None
        assert engine.serving.quarantines == 0
        assert engine.serving.breaker_trips == 0

    def test_serving_with_lanes_off_is_bit_identical(self, reference):
        engine = MultiQueryEngine(CORPUS, optimize=NO_OPTIMIZATIONS)
        assert _fingerprints(engine.serve(iter(EVENTS))) == reference


class TestCheckpointResumeDifferential:
    """A cut through live fast-lane state must not lose or duplicate."""

    CUTS = (len(EVENTS) // 4, len(EVENTS) // 2, (3 * len(EVENTS)) // 4)

    def _interrupted(self, optimize, cut):
        engine = MultiQueryEngine(CORPUS, optimize=optimize)
        cursor = StreamCursor()
        prefix = list(itertools.islice(iter(EVENTS), cut))
        collected = _fingerprints(engine.run(iter(prefix), cursor=cursor))
        data = engine.checkpoint().to_dict()
        restored = Checkpoint.from_dict(data)  # full serialization trip
        fresh = MultiQueryEngine.from_checkpoint(restored)
        collected += _fingerprints(fresh.resume(restored, iter(EVENTS)))
        return collected

    @pytest.mark.parametrize("cut", CUTS)
    def test_resume_through_fast_lanes(self, cut, reference):
        assert self._interrupted(ALL_OPTIMIZATIONS, cut) == reference

    @pytest.mark.parametrize("cut", CUTS)
    def test_resume_without_lanes_still_agrees(self, cut, reference):
        assert self._interrupted(NO_OPTIMIZATIONS, cut) == reference

    def test_restored_engine_reuses_the_checkpointed_lanes(self):
        engine = MultiQueryEngine(CORPUS)
        cursor = StreamCursor()
        prefix = list(itertools.islice(iter(EVENTS), len(EVENTS) // 2))
        list(engine.run(iter(prefix), cursor=cursor))
        checkpoint = engine.checkpoint()
        fresh = MultiQueryEngine.from_checkpoint(checkpoint)
        list(fresh.resume(checkpoint, iter(EVENTS)))
        assert fresh.lane_executions == engine.lane_executions


class TestPlannerInvariant:
    """Every planned dfa-lane query actually executed on the DFA."""

    def test_dfa_plans_execute_on_the_dfa(self):
        engine = MultiQueryEngine(CORPUS)
        engine.evaluate(iter(EVENTS))
        for query_id, plan in engine.plans.items():
            if plan.lane == "dfa":
                assert engine.lane_executions[query_id] == "dfa", query_id
        # the axis queries plan hybrid but demote at compile time — the
        # PLAN005 path; a demotion must always carry its reason
        for query_id, reason in engine.lane_demotions.items():
            assert engine.lane_executions[query_id] == "network"
            assert reason

    def test_stats_counters_match_the_plans(self):
        engine = MultiQueryEngine(CORPUS)
        engine.evaluate(iter(EVENTS))
        planned = lane_counts(engine.plans)
        stats = engine.stats
        assert stats.fastlane_dfa_queries == planned["dfa"]
        assert (
            stats.fastlane_hybrid_queries
            + stats.fastlane_gated_queries
            + stats.fastlane_demotions
        ) == planned["hybrid"]
        assert stats.fastlane_demotions == len(engine.lane_demotions)
        assert stats.fastlane_states > 0
