"""Differential checkpoint/resume soak over realistic workloads.

The acceptance property of the checkpoint layer (the tentpole claim):
for any query and any interrupt point, *checkpoint → fresh engine →
restore → continue* yields byte-identical match sequences to an
uninterrupted run — which itself equals the DOM oracle.  No duplicated
matches, no dropped matches, regardless of where the cut lands (mid
element, mid qualifier window, mid candidate buffering).

The kill/restore trial budget scales with ``SOAK_TRIALS`` (default keeps
the suite fast; CI's interruption-soak job raises it).
"""

import itertools
import os
import random

import pytest

from repro import Checkpoint, SpexEngine, StreamCursor, Supervisor, SupervisorConfig
from repro.baselines import DomEvaluator
from repro.core.multiquery import MultiQueryEngine
from repro.rpeq.parser import parse
from repro.workloads import mondial, xmark
from repro.xmlstream import FlakySource, iter_events

TRIALS = int(os.environ.get("SOAK_TRIALS", "12"))

#: (workload events, queries) — queries chosen to exercise plain paths,
#: closures, qualifiers (buffering across the cut) and nesting on the
#: labels each generator actually emits.
XMARK_EVENTS = list(xmark(seed=7, scale=10))
MONDIAL_EVENTS = list(mondial(seed=7, countries=15))

WORKLOADS = {
    "xmark": (
        XMARK_EVENTS,
        [
            "_*.item",
            "_*.item[bidder].name",
            "_*.item[_*.date]",
            "_*.description.text",
        ],
    ),
    "mondial": (
        MONDIAL_EVENTS,
        [
            "_*.country.name",
            "_*.country[province].name",
            "_*.province[_*.city].name",
            "_*.city[population]",
        ],
    ),
}


def uninterrupted(query, events):
    """Match fingerprints of a plain strict run (the ground truth)."""
    return [
        (match.position, match.label, match.events)
        for match in SpexEngine(query).run(iter(events), require_end=False)
    ]


def interrupted(query, events, cut):
    """Run to ``cut`` events, checkpoint via disk, resume in a fresh engine."""
    engine = SpexEngine(query)
    cursor = StreamCursor()
    prefix = list(itertools.islice(iter(events), cut))
    collected = [
        (match.position, match.label, match.events)
        for match in engine.run(iter(prefix), cursor=cursor, require_end=False)
    ]
    data = engine.checkpoint().to_dict()
    restored = Checkpoint.from_dict(data)  # full serialization round trip
    fresh = SpexEngine.from_checkpoint(restored)
    collected += [
        (match.position, match.label, match.events)
        for match in fresh.resume(restored, iter(events))
    ]
    return collected


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_oracle_agreement(workload):
    """Sanity: the uninterrupted streaming run equals the DOM oracle."""
    events, queries = WORKLOADS[workload]
    for query in queries:
        oracle = [
            node.position
            for node in DomEvaluator(parse(query)).evaluate(iter(events))
        ]
        got = [fingerprint[0] for fingerprint in uninterrupted(query, events)]
        assert got == oracle, query


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_random_interrupt_points_are_lossless(workload):
    """Seeded (query, cut) soak: interrupt anywhere, lose nothing."""
    events, queries = WORKLOADS[workload]
    rng = random.Random(2024)
    baselines = {query: uninterrupted(query, events) for query in queries}
    for trial in range(TRIALS):
        query = queries[trial % len(queries)]
        cut = rng.randrange(0, len(events) + 1)
        assert interrupted(query, events, cut) == baselines[query], (
            f"trial {trial}: query {query!r} interrupted at {cut}"
        )


def test_every_cut_point_small_stream():
    """Exhaustive cut sweep on a small prefix (no sampling blind spots)."""
    events = XMARK_EVENTS[:60]
    query = "_*.item[bidder].name"
    baseline = uninterrupted(query, events)
    for cut in range(len(events) + 1):
        assert interrupted(query, events, cut) == baseline, f"cut {cut}"


def test_repeated_kill_restore_chain():
    """Checkpoint → kill → restore repeatedly along one stream.

    Models a process dying many times over one long stream: each leg
    resumes from the previous leg's checkpoint; the concatenation of all
    legs' matches must equal the uninterrupted run.
    """
    events, queries = WORKLOADS["mondial"]
    rng = random.Random(7)
    for query in queries:
        baseline = uninterrupted(query, events)
        cuts = sorted(rng.sample(range(1, len(events)), 5))
        collected = []
        engine = SpexEngine(query)
        cursor = StreamCursor()
        prefix = list(itertools.islice(iter(events), cuts[0]))
        collected += [
            (m.position, m.label, m.events)
            for m in engine.run(iter(prefix), cursor=cursor, require_end=False)
        ]
        checkpoint = engine.checkpoint()
        for next_cut in cuts[1:]:
            engine = SpexEngine.from_checkpoint(checkpoint)
            leg = list(itertools.islice(iter(events), next_cut))
            collected += [
                (m.position, m.label, m.events)
                for m in engine.resume(checkpoint, iter(leg))
            ]
            checkpoint = engine.checkpoint()
        engine = SpexEngine.from_checkpoint(checkpoint)
        collected += [
            (m.position, m.label, m.events)
            for m in engine.resume(checkpoint, iter(events))
        ]
        assert collected == baseline, query


def test_multiquery_interrupts_are_lossless():
    events, queries = WORKLOADS["xmark"]
    subscription = {f"q{i}": query for i, query in enumerate(queries)}
    baseline = [
        (query_id, match.position)
        for query_id, match in MultiQueryEngine(subscription).run(iter(events))
    ]
    rng = random.Random(99)
    for _trial in range(max(3, TRIALS // 4)):
        cut = rng.randrange(0, len(events) + 1)
        engine = MultiQueryEngine(subscription)
        cursor = StreamCursor()
        prefix = list(itertools.islice(iter(events), cut))
        got = [
            (query_id, match.position)
            for query_id, match in engine.run(iter(prefix), cursor=cursor)
        ]
        restored = Checkpoint.from_dict(engine.checkpoint().to_dict())
        fresh = MultiQueryEngine.from_checkpoint(restored)
        got += [
            (query_id, match.position)
            for query_id, match in fresh.resume(restored, iter(events))
        ]
        assert got == baseline, f"cut {cut}"


def test_supervised_flaky_run_matches_oracle():
    """End-to-end: supervisor + seeded transient faults + stalls ≡ oracle."""
    events, queries = WORKLOADS["mondial"]
    rng = random.Random(31337)
    for query in queries:
        baseline = uninterrupted(query, events)
        script = [
            ("error", rng.randrange(0, len(events)))
            for _ in range(3)
        ] + [("stall", rng.randrange(0, len(events)))]
        rng.shuffle(script)
        source = FlakySource(events, script=script, stall_seconds=5.0)
        engine = SpexEngine(query)
        supervisor = Supervisor(
            engine,
            source,
            SupervisorConfig(
                max_retries=8,
                backoff_initial=0.0,
                jitter=0.0,
                heartbeat_timeout=0.2,
            ),
        )
        got = [
            (match.position, match.label, match.events)
            for match in supervisor.run()
        ]
        assert got == baseline, query
        assert supervisor.report.completed
