"""Tests for the execution-lane planner and its refined σ̂ bound."""

from repro.analysis import lane_counts, plan_queries, plan_query
from repro.analysis.planner import (
    LANE_DFA,
    LANE_HYBRID,
    LANE_NETWORK,
    LANES,
    QueryPlan,
)
from repro.dtd import parse_dtd
from repro.limits import ResourceLimits
from repro.workloads import query_corpus

LIMITS = ResourceLimits(max_depth=32)


class TestLanes:
    def test_qualifier_free_query_is_dfa(self):
        plan, report = plan_query("_*.item.name")
        assert plan.lane == LANE_DFA
        assert plan.prefix == "_*.item.name"
        assert plan.qualifiers == 0
        assert "PLAN001" in report.codes()

    def test_selective_prefix_is_hybrid(self):
        plan, report = plan_query("_*.item[payment].name")
        assert plan.lane == LANE_HYBRID
        # The prefix crosses into the qualifier-free base of the first
        # qualified step, where the network takes over.
        assert plan.prefix == "_*.item"
        assert plan.prefix_steps == 2
        assert "PLAN002" in report.codes()

    def test_qualifier_on_closure_is_network(self):
        # The qualifier sits on the wildcard closure itself: no required
        # concrete step before it, nothing selective to gate on.
        plan, report = plan_query("_*[alert].price")
        assert plan.lane == LANE_NETWORK
        assert "PLAN003" in report.codes()

    def test_axis_step_disqualifies_dfa(self):
        plan, _ = plan_query("_*.a.following::b")
        assert plan.lane != LANE_DFA
        assert plan.axis_steps == 1

    def test_wildcard_only_prefix_is_not_selective(self):
        # `_*._[c]` has a pure prefix but no required concrete step.
        plan, _ = plan_query("_*._[c]")
        assert plan.lane == LANE_NETWORK

    def test_plan000_always_emitted(self):
        _, report = plan_query("a.b")
        (diag,) = [d for d in report if d.code == "PLAN000"]
        assert diag.details["plan"]["lane"] == LANE_DFA


class TestSigmaRefined:
    def test_dfa_lane_pins_sigma_to_one(self):
        # No qualifiers → no condition formulas → σ̂ collapses to 1,
        # however pessimistic the worst-case certificate is.
        plan, _ = plan_query("_*.a.b", limits=LIMITS)
        assert plan.sigma_refined == 1

    def test_refined_never_exceeds_worst(self):
        for text in ("_*.a[b].c", "_*[x].y", "a.b.c", "_*.a[_*.b]"):
            plan, _ = plan_query(text, limits=LIMITS)
            if plan.sigma_worst is not None:
                assert plan.sigma_refined is not None
                assert plan.sigma_refined <= plan.sigma_worst, text

    def test_plan004_reports_strict_improvement(self):
        # The worst-case bound is computed on the original query; the
        # certified rewrite strips the vacuous qualifier and the refined
        # bound drops below it.
        plan, report = plan_query("_*.a[b*]", limits=LIMITS, rewrite=True)
        assert "PLAN004" in report.codes()
        assert plan.sigma_refined < plan.sigma_worst

    def test_rewrite_tightens_the_plan(self):
        # The trivially-true qualifier costs a condition variable; the
        # certified rewrite removes it and the plan lands in the DFA
        # lane with σ̂ = 1.
        before, _ = plan_query("_*.a[b*]", limits=LIMITS)
        after, _ = plan_query("_*.a[b*]", limits=LIMITS, rewrite=True)
        assert before.lane == LANE_HYBRID
        assert after.lane == LANE_DFA
        assert after.rewrite_steps == 1
        assert after.sigma_refined == 1
        assert after.sigma_refined <= (before.sigma_refined or 1)

    def test_uncertified_rewrite_is_discarded(self):
        # DTD with an undeclared element: the valid-document sampler
        # refuses, the schema-dead elimination fails its certificate,
        # and the plan must describe the *original* query.
        dtd = parse_dtd("<!ELEMENT root (a*, q?)> <!ELEMENT a EMPTY>")
        plan, report = plan_query("_*.(a|zz)", dtd=dtd, rewrite=True)
        assert plan.query == "_*.(a|zz)"
        assert plan.rewrite_steps == 0
        assert "RWR090" in report.codes()


class TestCodec:
    def test_round_trip(self):
        plan, _ = plan_query("_*.item[payment].name", limits=LIMITS)
        assert QueryPlan.from_obj(plan.to_obj()) == plan

    def test_round_trip_unbounded(self):
        plan, _ = plan_query("_*[x]._*[y]")
        obj = plan.to_obj()
        assert obj["sigma_worst"] is None
        assert QueryPlan.from_obj(obj) == plan

    def test_rewrite_steps_defaults_for_old_payloads(self):
        plan, _ = plan_query("a.b")
        obj = plan.to_obj()
        del obj["rewrite_steps"]
        assert QueryPlan.from_obj(obj).rewrite_steps == 0


class TestCorpus:
    def test_corpus_covers_every_lane(self):
        plans, report = plan_queries(
            query_corpus(), limits=LIMITS, rewrite=True
        )
        counts = lane_counts(plans)
        assert set(counts) == set(LANES)
        for lane in LANES:
            assert counts[lane] >= 1, counts
        assert report.ok

    def test_corpus_refined_bounded_by_worst(self):
        plans, _ = plan_queries(query_corpus(), limits=LIMITS)
        for name, plan in plans.items():
            if plan.sigma_worst is not None:
                assert plan.sigma_refined is not None
                assert plan.sigma_refined <= plan.sigma_worst, name

    def test_lane_counts_always_lists_all_lanes(self):
        assert set(lane_counts({})) == set(LANES)
