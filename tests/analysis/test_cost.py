"""Unit tests for the d·σ cost certifier (COST00x diagnostics)."""

from repro.analysis import certify_cost
from repro.dtd import parse_dtd
from repro.limits import ResourceLimits
from repro.rpeq.parser import parse

FLAT_DTD = parse_dtd(
    """
    <!DOCTYPE a [
      <!ELEMENT a (b*)>
      <!ELEMENT b (#PCDATA)>
    ]>
    """
)


class TestCertificate:
    def test_simple_path_certifies_at_sigma_one(self):
        cert, report = certify_cost(
            parse("a.b"), limits=ResourceLimits(max_depth=8), degree=4
        )
        assert cert.sigma_bound == 1
        assert cert.depth_bound == 8 and cert.depth_source == "limits"
        assert cert.per_transducer_bound == (8 + 1) * 1
        assert cert.network_bound == 4 * cert.per_transducer_bound
        assert report.ok

    def test_qualifier_adds_one_variable(self):
        cert, _ = certify_cost(parse("a[b]"), limits=ResourceLimits(max_depth=8))
        assert cert.sigma_bound == 2

    def test_closure_under_qualifier_multiplies_by_depth(self):
        cert, _ = certify_cost(
            parse("_*.a[_*.b]"), limits=ResourceLimits(max_depth=50)
        )
        # VC conjoins one variable (sigma 2), the inner closure can
        # accumulate one disjunct per open ancestor: 2 * 50.
        assert cert.sigma_bound == 100

    def test_depth_bound_from_nonrecursive_dtd(self):
        cert, _ = certify_cost(parse("a.b"), dtd=FLAT_DTD)
        assert cert.depth_source == "dtd"
        assert cert.depth_bound is not None

    def test_limits_take_precedence_over_dtd(self):
        cert, _ = certify_cost(
            parse("a.b"), limits=ResourceLimits(max_depth=3), dtd=FLAT_DTD
        )
        assert cert.depth_source == "limits" and cert.depth_bound == 3


class TestDiagnostics:
    def test_cost000_always_emitted(self):
        _, report = certify_cost(parse("a"))
        assert "COST000" in report.codes()
        (cert,) = report.by_code("COST000")
        assert cert.details["sigma_bound"] == 1

    def test_cost001_unbounded_closure_growth(self):
        _, report = certify_cost(parse("_*.a[_*.b]"))
        assert "COST001" in report.codes()
        assert report.ok  # a warning, not an error

    def test_cost001_axis_steps_uncertifiable(self):
        _, report = certify_cost(
            parse("following::a"), limits=ResourceLimits(max_depth=10)
        )
        assert "COST001" in report.codes()
        (diag,) = report.by_code("COST001")
        assert "evidence buffers" in diag.message

    def test_cost002_bound_exceeds_limits(self):
        _, report = certify_cost(
            parse("_*.a[_*.b]"),
            limits=ResourceLimits(max_depth=50, max_formula_size=10),
        )
        assert "COST002" in report.codes()
        assert not report.ok
        (diag,) = report.by_code("COST002")
        assert diag.details["sigma_bound"] == 100
        assert diag.details["max_formula_size"] == 10

    def test_cost002_silent_when_within_budget(self):
        _, report = certify_cost(
            parse("a[b]"), limits=ResourceLimits(max_depth=5, max_formula_size=64)
        )
        assert "COST002" not in report.codes()
        assert report.ok

    def test_cost002_not_reported_without_depth_bound(self):
        # Matches the runtime guard's contract: without d the bound is
        # unknown, so only the uncertifiability warning fires.
        _, report = certify_cost(
            parse("_*.a[_*.b]"), limits=ResourceLimits(max_formula_size=10)
        )
        assert "COST002" not in report.codes()
        assert "COST001" in report.codes()

    def test_cost003_pending_candidates_dynamic(self):
        _, report = certify_cost(
            parse("a[b]"), limits=ResourceLimits(max_pending_candidates=100)
        )
        assert "COST003" in report.codes()

    def test_cost004_buffered_events_dynamic(self):
        _, report = certify_cost(
            parse("a"), limits=ResourceLimits(max_buffered_events=100)
        )
        assert "COST004" in report.codes()
        _, report = certify_cost(
            parse("a"),
            limits=ResourceLimits(max_buffered_events=100),
            collect_events=False,
        )
        assert "COST004" not in report.codes()


class TestScalability:
    def test_long_concat_chain_does_not_recurse(self):
        from repro.rpeq.generate import query_family

        cert, report = certify_cost(
            query_family(3000, 0), limits=ResourceLimits(max_depth=10)
        )
        assert cert.sigma_bound == 1
        assert report.ok
