"""Unit tests for the transducer-network verifier (NET0xx diagnostics).

The corruption tests mutate a compiled network's internals on purpose —
the verifier exists to catch exactly the inconsistencies a buggy
compiler change could introduce, so the tests plant those
inconsistencies by hand and assert the coded findings.
"""

import pytest

from repro.analysis import verify_network
from repro.core.compiler import compile_network
from repro.core.flow_transducers import JoinTransducer
from repro.core.qualifier_transducers import VariableDeterminant
from repro.rpeq.parser import parse


def compiled(query, **kwargs):
    network, _store = compile_network(parse(query), **kwargs)
    return network


class TestCleanNetworks:
    @pytest.mark.parametrize(
        "query",
        [
            "a",
            "_*.a[b].c",
            "a[b].c[d]",
            "(a|b).c?",
            "_*.country[province].name",
            "a*.b+",
            "following::a[b]",
            "_*.a[preceding::b]",
        ],
    )
    def test_verifier_accepts(self, query):
        report = verify_network(compiled(query))
        assert report.ok, report.render()

    @pytest.mark.parametrize("optimize", [True, False])
    def test_both_compilers_verify(self, optimize):
        report = verify_network(compiled("_*.a[b]", optimize=optimize))
        assert report.ok, report.render()

    def test_workload_corpus_passes(self):
        from repro.workloads import query_corpus

        for name, text in query_corpus().items():
            report = verify_network(compiled(text))
            assert report.ok, f"{name}: {report.render()}"


class TestCorruptedNetworks:
    def test_unfinalized_network_rejected(self):
        from repro.conditions.store import ConditionStore
        from repro.core.network import Network
        from repro.core.output_tx import OutputTransducer
        from repro.core.path_transducers import InputTransducer

        store = ConditionStore()
        network = Network(InputTransducer("IN"))
        network.sink = network.add(OutputTransducer(store), network.source)
        report = verify_network(network)
        assert report.codes() == {"NET001"}

    def test_unbalanced_join_detected(self):
        network = compiled("a?")
        join = next(n for n in network._nodes if isinstance(n, JoinTransducer))
        preds = network._predecessors[id(join)]
        network._predecessors[id(join)] = [preds[0], preds[0]]
        report = verify_network(network)
        assert not report.ok
        assert "NET007" in report.codes()
        assert any(
            diag.details.get("node") == join.name
            for diag in report.by_code("NET007")
        )

    def test_out_of_scope_condition_variable_detected(self):
        network = compiled("a[b].c[d]")
        determinants = [
            n for n in network._nodes if isinstance(n, VariableDeterminant)
        ]
        assert len(determinants) == 2
        # Point both determinants at the same qualifier id: q1's VD now
        # determines a variable whose creator is not among its ancestors.
        determinants[0].qualifier = determinants[1].qualifier
        report = verify_network(network)
        assert not report.ok
        assert "NET008" in report.codes()
        assert "NET009" in report.codes()

    def test_diagnostics_are_deterministic(self):
        def corrupt():
            network = compiled("a[b].c[d]")
            determinants = [
                n for n in network._nodes if isinstance(n, VariableDeterminant)
            ]
            determinants[0].qualifier = determinants[1].qualifier
            return verify_network(network)

        assert corrupt().to_json() == corrupt().to_json()

    def test_foreign_store_detected(self):
        from repro.conditions.store import ConditionStore

        network = compiled("a[b]")
        network.condition_store = ConditionStore()
        report = verify_network(network)
        assert "NET009" in report.codes()
