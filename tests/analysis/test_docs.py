"""Doc-drift gate: the diagnostic catalogue stays in sync everywhere.

Every code in the registry must appear in ``docs/analysis.md`` and be
printed by ``spex analyze --list-codes``.  A new code that skips either
surface fails here, not in a user's terminal.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import all_codes
from repro.cli import main

DOCS = Path(__file__).resolve().parents[2] / "docs" / "analysis.md"


class TestDocCatalogue:
    def test_every_code_documented(self):
        text = DOCS.read_text(encoding="utf-8")
        missing = [code for code in all_codes() if f"`{code}`" not in text]
        assert not missing, f"codes absent from docs/analysis.md: {missing}"

    def test_registry_covers_all_sources(self):
        # The registry import side effect (repro.analysis pulls in every
        # pass) must register all five code families.
        prefixes = {code.rstrip("0123456789") for code in all_codes()}
        assert {"RPQ", "NET", "COST", "RWR", "PLAN"} <= prefixes


class TestListCodes:
    def test_cli_lists_every_registered_code(self, capsys):
        assert main(["analyze", "--list-codes"]) == 0
        out = capsys.readouterr().out
        listed = {line.split()[0] for line in out.splitlines() if line.strip()}
        assert listed == set(all_codes())

    def test_listing_includes_titles_and_severities(self, capsys):
        main(["analyze", "--list-codes"])
        out = capsys.readouterr().out
        assert "RWR090" in out and "error" in out
        assert "PLAN001" in out and "Lazy-DFA" in out
