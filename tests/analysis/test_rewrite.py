"""Unit and property tests for the certified rewrite engine.

Each rule gets a direct trigger test; the certification machinery gets
discharge/abort tests (including the schema-modulo witness path); and
hypothesis drives the fixpoint-idempotence property over the seeded
random-query generator.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import factor_common_prefixes, rewrite_query
from repro.analysis.rewrite import (
    EquivalenceCertificate,
    concat_spine,
    discharge,
    witness_streams,
)
from repro.dtd import parse_dtd
from repro.rpeq.ast import Concat, Empty, Label
from repro.rpeq.generate import random_rpeq
from repro.rpeq.parser import parse
from repro.rpeq.unparse import unparse


def rewritten(query, **kwargs):
    result, _ = rewrite_query(query, certify=False, **kwargs)
    return unparse(result.rewritten)


class TestRules:
    def test_rwr001_vacuous_epsilon(self):
        # ε only arises programmatically; the grammar cannot spell it.
        result, report = rewrite_query(
            Concat(Empty(), Label("a")), certify=False
        )
        assert unparse(result.rewritten) == "a"
        assert "RWR001" in report.codes()

    def test_rwr002_closure_collapse(self):
        assert rewritten("a*.a*") == "a*"
        assert rewritten("a*.a+") == "a+"
        assert rewritten("a+.a*") == "a+"

    def test_rwr002_plus_plus_never_fuses(self):
        # a+.a+ requires at least two steps; no single closure says that.
        assert rewritten("a+.a+") == "a+.a+"

    def test_rwr003_trivially_true_qualifier(self):
        assert rewritten("a[b*]") == "a"
        assert rewritten("a[c?]") == "a"

    def test_rwr004_duplicate_qualifier(self):
        assert rewritten("a[b][b]") == "a[b]"

    def test_rwr005_dead_union_branch(self):
        assert rewritten("(b|b)") == "b"
        assert rewritten("(_|b)") == "_"
        assert rewritten("(_*|b*)") == "_*"

    def test_rwr006_schema_dead_branch(self):
        dtd = parse_dtd("<!ELEMENT root (a*)> <!ELEMENT a EMPTY>")
        assert rewritten("_*.(a|zz)", dtd=dtd) == "_*.a"

    def test_rwr007_qualifier_pushdown(self):
        result, report = rewrite_query("(a.b)[c]", certify=False)
        assert unparse(result.rewritten) == "a.b[c]"
        assert "RWR007" in report.codes()

    def test_rwr007_pushdown_is_iterated(self):
        # The qualifier sinks all the way to the last step of the chain.
        assert rewritten("(a.b.c)[d]") == "a.b.c[d]"

    def test_rwr008_qualifier_hoisting(self):
        result, report = rewrite_query("(a[c]|b[c])", certify=False)
        assert unparse(result.rewritten) == "(a|b)[c]"
        assert "RWR008" in report.codes()

    def test_rwr008_different_conditions_do_not_hoist(self):
        assert rewritten("(a[c]|b[d])") == "a[c]|b[d]"

    def test_rwr091_step_budget(self):
        result, report = rewrite_query("a*.a*.a*", certify=False, max_steps=1)
        assert "RWR091" in report.codes()
        assert len(result.steps) == 1

    def test_clean_query_is_untouched(self):
        result, report = rewrite_query("_*.a[b].c")
        assert not result.changed
        assert not result.steps
        assert report.ok


class TestCertificates:
    def test_every_step_certified_by_default(self):
        result, report = rewrite_query("a*.a*.b[c*].d[e][e]")
        assert result.changed
        assert result.certified
        assert unparse(result.rewritten) == "a*.b.d[e]"
        assert len(result.certificates) == len(result.steps) >= 3
        for cert in result.certificates:
            assert cert.discharged
            assert cert.streams > 0
        assert report.ok

    def test_certificate_json_shape(self):
        result, _ = rewrite_query("a[b*]")
        (cert,) = result.certificates
        obj = cert.to_obj()
        assert obj["rule"] == "RWR003"
        assert obj["discharged"] is True
        assert obj["failure"] is None
        assert obj["before"] == "a[b*]" and obj["after"] == "a"

    def test_diagnostics_embed_the_certificate(self):
        _, report = rewrite_query("a[b*]")
        (diag,) = [d for d in report if d.code == "RWR003"]
        assert diag.details["certificate"]["discharged"] is True

    def test_unsound_step_is_refuted(self):
        # a* vs a+ differ on the empty path: the differential harness
        # must catch a genuinely wrong "rewrite".
        cert = EquivalenceCertificate(rule="BOGUS", before="a*", after="a+")
        assert not discharge(cert, parse("a*"), parse("a+"))
        assert not cert.discharged
        assert cert.failure is not None

    def test_failed_certificate_aborts_and_keeps_original(self):
        # The DTD references an undeclared element, so the valid-document
        # sampler refuses and certification falls back to generic
        # streams — on which the schema-dead elimination is *not* an
        # equivalence.  The engine must discard the rewrite, emit the
        # RWR090 error, and return the original query.
        dtd = parse_dtd("<!ELEMENT root (a*, q?)> <!ELEMENT a EMPTY>")
        result, report = rewrite_query("_*.(a|zz)", dtd=dtd)
        assert not result.changed
        assert unparse(result.rewritten) == "_*.(a|zz)"
        assert "RWR090" in report.codes()
        assert not report.ok

    def test_schema_modulo_witnesses_are_valid_documents(self):
        dtd = parse_dtd("<!ELEMENT root (a*)> <!ELEMENT a (b?)> <!ELEMENT b EMPTY>")
        streams = witness_streams(parse("_*.a"), parse("_*.a"), dtd=dtd)
        from repro.dtd import DtdValidator

        for events in streams:
            assert DtdValidator(dtd).is_valid(iter(events))

    def test_certify_false_leaves_obligations_open(self):
        result, _ = rewrite_query("a[b*]", certify=False)
        assert result.changed
        assert not result.certified


class TestIdempotence:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 5000))
    def test_rewrite_reaches_a_fixpoint(self, seed):
        expr = random_rpeq(random.Random(seed))
        once, _ = rewrite_query(expr, certify=False, max_steps=500)
        twice, _ = rewrite_query(once.rewritten, certify=False, max_steps=500)
        assert twice.rewritten == once.rewritten, unparse(expr)
        assert not twice.steps

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 5000))
    def test_rewrite_preserves_parseability(self, seed):
        expr = random_rpeq(random.Random(seed))
        result, _ = rewrite_query(expr, certify=False, max_steps=500)
        assert parse(unparse(result.rewritten)) == result.rewritten

    def test_certified_rewrite_is_idempotent(self):
        for query in ("a*.a*[b*]", "(a[c]|b[c])", "(a.b)[c][c]"):
            once, _ = rewrite_query(query)
            assert once.certified
            twice, report = rewrite_query(once.rewritten)
            assert not twice.changed, query
            assert report.ok


class TestPrefixFactoring:
    def test_groups_by_longest_common_prefix(self):
        groups, report = factor_common_prefixes(
            {
                "q1": "_*.item.name",
                "q2": "_*.item.price",
                "q3": "_*.item",
                "q4": "site.people",
            }
        )
        (group,) = groups
        assert group.prefix == "_*.item"
        assert group.steps == 2
        assert group.members == ("q1", "q2", "q3")
        assert "RWR010" in report.codes()

    def test_no_sharing_no_groups(self):
        groups, report = factor_common_prefixes({"a": "a.b", "b": "c.d"})
        assert groups == ()
        assert "RWR010" not in report.codes()

    def test_largest_group_first(self):
        groups, _ = factor_common_prefixes(
            {
                "q1": "a.x",
                "q2": "a.y",
                "q3": "a.z",
                "q4": "b.x",
                "q5": "b.y",
            }
        )
        assert [g.prefix for g in groups] == ["a", "b"]
        assert len(groups[0].members) == 3


class TestSpine:
    def test_concat_spine_flattens(self):
        assert [unparse(p) for p in concat_spine(parse("a.b.c[d]"))] == [
            "a",
            "b",
            "c[d]",
        ]

    def test_non_concat_is_its_own_spine(self):
        assert concat_spine(parse("a*")) == [parse("a*")]

    def test_deep_chain_does_not_recurse(self):
        # Lemma V.1 workloads are chains thousands of steps long; the
        # flattener must be iterative.
        chain = ".".join(["a"] * 4000)
        assert len(concat_spine(parse(chain))) == 4000
