"""Unit tests for the snapshot-coverage meta-check (NET020/NET021)."""

import pytest

from repro.analysis import check_snapshot_coverage
from repro.conditions.store import ConditionStore
from repro.core.network import Network
from repro.core.output_tx import OutputTransducer
from repro.core.path_transducers import ChildTransducer, InputTransducer
from repro.rpeq.ast import Label
from repro.xmlstream import parse_string

DOC = "<r><a><b>x</b><c/></a><a><b/></a></r>"


def events():
    return list(parse_string(DOC))


class TestCleanQueries:
    @pytest.mark.parametrize(
        "query",
        ["_*.a[b].c", "a.a[b]", "_*.b", "(a|b).c?", "following::b", "preceding::b"],
    )
    def test_compiled_networks_are_fully_covered(self, query):
        report = check_snapshot_coverage(query, events())
        assert report.ok, report.render()

    def test_unoptimized_compiler_covered(self):
        report = check_snapshot_coverage("_*.a[b]", events(), optimize=False)
        assert report.ok, report.render()


class LeakyChild(ChildTransducer):
    """A child step with evaluation state missing from its snapshot.

    ``seen_labels`` mutates during evaluation but ``_snapshot_extra`` is
    not overridden, so snapshot/restore neither reproduces nor resets it
    — exactly the regression the meta-check exists to catch.
    """

    def __init__(self, test, name=None):
        super().__init__(test, name)
        self.seen_labels = []

    def on_start(self, message, event):
        if event.__class__.__name__ == "StartElement":
            self.seen_labels.append(event.label)
        return super().on_start(message, event)


def leaky_network():
    store = ConditionStore()
    network = Network(InputTransducer("IN"))
    child = network.add(LeakyChild(Label("a"), "CH(a)"), network.source)
    network.sink = network.add(OutputTransducer(store), child)
    network.condition_store = store
    network.finalize()
    return network


class TestLeakDetection:
    def test_unsnapshotted_attribute_reported(self):
        report = check_snapshot_coverage(
            None, events(), network_factory=leaky_network
        )
        assert not report.ok
        assert report.codes() == {"NET020", "NET021"}
        for code in ("NET020", "NET021"):
            (diag,) = report.by_code(code)
            assert diag.details["node"] == "CH(a)"
            assert diag.details["attribute"] == "seen_labels"

    def test_needs_query_or_factory(self):
        with pytest.raises(ValueError):
            check_snapshot_coverage(None, events())
