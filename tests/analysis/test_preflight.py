"""Unit tests for pre-flight analysis and its engine wiring."""

import pytest

from repro.analysis import ensure_preflight, preflight
from repro.core.engine import SpexEngine
from repro.core.multiquery import MultiQueryEngine
from repro.errors import ReproError, StaticAnalysisError
from repro.limits import ResourceLimits

#: certifiably over budget: σ̂ = 2·50 = 100 > 10 (see test_cost.py)
DOOMED = "_*.a[_*.b]"
DOOMED_LIMITS = ResourceLimits(max_depth=50, max_formula_size=10)


class TestPreflight:
    def test_clean_query_passes_all_passes(self):
        report = preflight("_*.a[b]", limits=ResourceLimits(max_depth=20))
        assert report.ok
        assert "COST000" in report.codes()

    def test_over_budget_query_rejected(self):
        report = preflight(DOOMED, limits=DOOMED_LIMITS)
        assert not report.ok
        assert "COST002" in report.codes()

    def test_ensure_raises_with_report_attached(self):
        with pytest.raises(StaticAnalysisError) as excinfo:
            ensure_preflight(DOOMED, limits=DOOMED_LIMITS)
        assert "COST002" in str(excinfo.value)
        assert excinfo.value.report is not None
        assert "COST002" in excinfo.value.report.codes()

    def test_static_analysis_error_is_a_repro_error(self):
        assert issubclass(StaticAnalysisError, ReproError)


class TestEngineWiring:
    def test_engine_runs_preflight_by_default(self):
        engine = SpexEngine("_*.a[b]")
        assert engine.analysis is not None
        assert engine.analysis.ok

    def test_engine_rejects_doomed_query(self):
        with pytest.raises(StaticAnalysisError):
            SpexEngine(DOOMED, limits=DOOMED_LIMITS)

    def test_engine_preflight_opt_out(self):
        engine = SpexEngine(DOOMED, limits=DOOMED_LIMITS, preflight=False)
        assert engine.analysis is None

    def test_multiquery_reports_offending_query_id(self):
        with pytest.raises(StaticAnalysisError) as excinfo:
            MultiQueryEngine(
                {"good": "_*.a[b]", "bad": DOOMED}, limits=DOOMED_LIMITS
            )
        assert "bad" in str(excinfo.value)

    def test_multiquery_collects_reports(self):
        engine = MultiQueryEngine({"one": "_*.a[b]", "two": "a.b"})
        assert set(engine.analysis) == {"one", "two"}
        assert all(report.ok for report in engine.analysis.values())

    def test_multiquery_opt_out(self):
        engine = MultiQueryEngine({"bad": DOOMED}, limits=DOOMED_LIMITS, preflight=False)
        assert engine.analysis is None
