"""Unit tests for the rpeq linter (RPQ0xx diagnostics)."""

import pytest

from repro.analysis import lint_query
from repro.dtd import parse_dtd
from repro.rpeq.ast import Concat, Empty, Label
from repro.rpeq.parser import parse

SITE_DTD = parse_dtd(
    """
    <!DOCTYPE site [
      <!ELEMENT site (regions, people?)>
      <!ELEMENT regions (item*)>
      <!ELEMENT item (name, mailbox?)>
      <!ELEMENT mailbox (mail*)>
      <!ELEMENT mail (#PCDATA)>
      <!ELEMENT name (#PCDATA)>
      <!ELEMENT people EMPTY>
    ]>
    """
)


def codes(query, **kwargs):
    return lint_query(query, **kwargs).codes()


class TestStructuralRules:
    def test_clean_query_has_no_findings(self):
        assert codes("a.b.c") == set()

    def test_rpq001_trivially_true_qualifier(self):
        assert "RPQ001" in codes("a[b*]")
        assert "RPQ001" in codes("a[c?]")

    def test_rpq001_not_fired_for_real_filter(self):
        assert "RPQ001" not in codes("a[b]")

    def test_rpq002_redundant_closure_chain(self):
        assert "RPQ002" in codes("a*.a*")
        assert "RPQ002" in codes("a*.a+")

    def test_rpq002_excludes_plus_plus(self):
        # a+.a+ demands length >= 2 and is NOT equivalent to a+.
        assert "RPQ002" not in codes("a+.a+")

    def test_rpq003_identical_branches(self):
        assert "RPQ003" in codes("(b|b)")

    def test_rpq003_wildcard_absorption(self):
        assert "RPQ003" in codes("(_|b)")
        assert "RPQ003" in codes("(_*|b*)")

    def test_rpq003_not_fired_for_disjoint_branches(self):
        assert "RPQ003" not in codes("(a|b)")

    def test_rpq004_duplicate_qualifier(self):
        assert "RPQ004" in codes("a[b][b]")
        assert "RPQ004" not in codes("a[b][c]")

    def test_rpq005_redundant_optional(self):
        assert "RPQ005" in codes("(a*)?")
        assert "RPQ005" not in codes("a?")

    def test_rpq006_epsilon_composition(self):
        query = Concat(Empty(), Label("a"))
        assert "RPQ006" in codes(query)

    def test_rpq007_wildcard_closure_with_qualifier(self):
        assert "RPQ007" in codes("_*.a[b]")
        assert "RPQ007" not in codes("a[b]")

    def test_span_points_at_offending_text(self):
        report = lint_query("c.a[b*]")
        (diag,) = report.by_code("RPQ001")
        assert diag.span is not None
        assert "c.a[b*]"[diag.span.start : diag.span.end] == "a[b*]"

    def test_ast_input_has_no_spans(self):
        report = lint_query(parse("a[b*]"))
        (diag,) = report.by_code("RPQ001")
        assert diag.span is None


class TestDtdRules:
    def test_clean_query_against_dtd(self):
        assert codes("site.regions.item.name", dtd=SITE_DTD) == set()

    def test_rpq010_unsatisfiable_path(self):
        report = lint_query("site.mail", dtd=SITE_DTD)
        assert "RPQ010" in report.codes()
        assert not report.ok

    def test_rpq011_contradictory_qualifier(self):
        # 'people' is EMPTY, so the chain people.item holds at no
        # element type anywhere in the schema.
        report = lint_query("_*.site[people.item]", dtd=SITE_DTD)
        assert "RPQ011" in report.codes()

    def test_rpq012_undeclared_label(self):
        report = lint_query("_*.bogus", dtd=SITE_DTD)
        assert "RPQ012" in report.codes()
        (diag,) = report.by_code("RPQ012")
        assert diag.details["label"] == "bogus"

    def test_satisfiable_qualifier_not_flagged(self):
        assert "RPQ011" not in codes("_*.item[mailbox]", dtd=SITE_DTD)


class TestIdempotence:
    @pytest.mark.parametrize(
        "query",
        ["a[b*]", "a*.a*", "(b|b)", "a[b][b]", "(a*)?", "(_|b)"],
    )
    def test_simplified_query_lints_clean(self, query):
        from repro.rpeq.rewrite import simplify

        simplified = simplify(parse(query))
        assert {
            c for c in codes(simplified) if c != "RPQ007"
        } == set(), query
