"""Unit tests for the shared diagnostics framework."""

import json

import pytest

from repro.analysis import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
    all_codes,
    register_code,
)


class TestSpan:
    def test_valid(self):
        assert Span(0, 4).to_obj() == [0, 4]

    def test_empty_allowed(self):
        assert Span(3, 3).to_obj() == [3, 3]

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Span(-1, 4)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Span(5, 2)


class TestRegistry:
    def test_known_codes_present(self):
        codes = all_codes()
        for code in ("RPQ001", "NET001", "NET007", "NET020", "COST002"):
            assert code in codes

    def test_registry_is_sorted_copy(self):
        codes = all_codes()
        assert list(codes) == sorted(codes)
        codes.pop("RPQ001")
        assert "RPQ001" in CODES  # mutating the copy leaves the registry alone

    def test_reregistration_idempotent(self):
        info = CODES["RPQ001"]
        register_code("RPQ001", info.severity, info.source, info.title)

    def test_conflicting_redeclaration_rejected(self):
        try:
            register_code("ZZZ999", Severity.INFO, "test", "scratch")
            with pytest.raises(ValueError):
                register_code("ZZZ999", Severity.ERROR, "test", "scratch")
        finally:
            CODES.pop("ZZZ999", None)

    def test_unregistered_code_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Diagnostic(code="NOPE42", severity=Severity.INFO, message="x")


class TestDocumentation:
    def test_every_code_is_catalogued_in_docs(self):
        from pathlib import Path

        catalogue = (
            Path(__file__).resolve().parents[2] / "docs" / "analysis.md"
        ).read_text(encoding="utf-8")
        missing = [code for code in all_codes() if code not in catalogue]
        assert not missing, f"undocumented diagnostic codes: {missing}"


class TestReport:
    def test_defaults_come_from_registry(self):
        report = AnalysisReport()
        diag = report.add("NET007", "imbalance")
        assert diag.severity is Severity.ERROR
        assert diag.source == "network"

    def test_ordering_severity_then_code(self):
        report = AnalysisReport()
        report.add("RPQ007", "note")
        report.add("NET007", "bad join")
        report.add("RPQ001", "trivial")
        assert [d.code for d in report.sorted()] == ["NET007", "RPQ001", "RPQ007"]

    def test_ok_and_error_partitions(self):
        report = AnalysisReport()
        assert report.ok
        report.add("RPQ001", "warn")
        assert report.ok and len(report.warnings) == 1
        report.add("NET007", "err")
        assert not report.ok and len(report.errors) == 1

    def test_codes_and_by_code(self):
        report = AnalysisReport()
        report.add("RPQ001", "one")
        report.add("RPQ001", "two")
        assert report.codes() == {"RPQ001"}
        assert [d.message for d in report.by_code("RPQ001")] == ["one", "two"]

    def test_extend_merges(self):
        left, right = AnalysisReport(), AnalysisReport()
        left.add("RPQ001", "a")
        right.add("NET007", "b")
        left.extend(right)
        assert left.codes() == {"RPQ001", "NET007"}

    def test_render_lines(self):
        report = AnalysisReport()
        assert report.render() == "no findings"
        report.add("RPQ001", "trivial qualifier", span=Span(2, 7))
        assert report.render() == "RPQ001 warning: trivial qualifier @2..7"

    def test_json_is_deterministic_and_parseable(self):
        report = AnalysisReport()
        report.add("NET007", "bad join", node="JO", zeta=1, alpha=2)
        report.add("RPQ001", "trivial", span=Span(0, 3))
        first, second = report.to_json(), report.to_json()
        assert first == second
        obj = json.loads(first)
        assert obj["ok"] is False
        assert obj["counts"] == {"error": 1, "warning": 1, "info": 0}
        details = obj["diagnostics"][0]["details"]
        assert list(details) == sorted(details)
        assert obj["diagnostics"][1]["span"] == [0, 3]
