"""Property tests: unparse/parse round-trips and linter idempotence.

Both properties run over the seeded random-query corpus of
:mod:`repro.rpeq.generate`, the same generator the differential tests
use, so they cover every AST construct the grammar can produce.
"""

import random

from repro.analysis import lint_query
from repro.rpeq.generate import GeneratorConfig, random_rpeq
from repro.rpeq.parser import parse
from repro.rpeq.rewrite import simplify
from repro.rpeq.unparse import unparse

SEEDS = range(200)


def corpus():
    for seed in SEEDS:
        yield random_rpeq(random.Random(seed))
    config = GeneratorConfig(allow_qualifiers=False)
    for seed in SEEDS:
        yield random_rpeq(random.Random(seed), config)


class TestRoundTrip:
    def test_unparse_then_parse_is_identity(self):
        for expr in corpus():
            text = unparse(expr)
            assert parse(text) == expr, text


class TestLinterIdempotence:
    def test_simplify_never_introduces_findings(self):
        # Each structural rule mirrors one simplify rewrite, so the
        # simplified query's findings are a subset of the original's.
        for expr in corpus():
            before = lint_query(expr).codes()
            after = lint_query(simplify(expr)).codes()
            assert after <= before, unparse(expr)

    def test_linting_is_stable(self):
        for expr in corpus():
            first = lint_query(expr)
            second = lint_query(expr)
            assert first.to_json() == second.to_json()

    def test_simplified_corpus_is_structurally_clean(self):
        structural = {"RPQ001", "RPQ002", "RPQ003", "RPQ004", "RPQ005", "RPQ006"}
        for expr in corpus():
            found = lint_query(simplify(expr)).codes()
            assert not (found & structural), unparse(expr)
