"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.rpeq import GeneratorConfig, random_rpeq
from repro.rpeq.ast import Rpeq
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)

LABELS = ("a", "b", "c", "d")

#: The document of the paper's Fig. 1, used by many unit tests.
PAPER_DOC = "<a><a><c/></a><b/><c/></a>"

#: Tag-notation stream of the same document (paper Sec. II.1).
PAPER_STREAM_TAGS = [
    "<$>", "<a>", "<a>", "<c>", "</c>", "</a>",
    "<b>", "</b>", "<c>", "</c>", "</a>", "</$>",
]


def make_random_events(
    rng: random.Random,
    max_children: int = 4,
    max_depth: int = 5,
    labels: tuple[str, ...] = LABELS,
) -> list[Event]:
    """A random, well-formed event list (seeded, reproducible)."""
    events: list[Event] = [StartDocument()]

    def grow(depth: int) -> None:
        for _ in range(rng.randint(0, max_children)):
            label = rng.choice(labels)
            events.append(StartElement(label))
            if depth < max_depth:
                grow(depth + 1)
            events.append(EndElement(label))

    grow(1)
    events.append(EndDocument())
    return events


@st.composite
def event_streams(draw, max_depth: int = 4, labels: tuple[str, ...] = LABELS) -> list[Event]:
    """Hypothesis strategy: a well-formed event list (shrinks nicely)."""

    def subtree(depth: int):
        children = draw(
            st.lists(st.sampled_from(labels), min_size=0, max_size=3)
        )
        events: list[Event] = []
        for label in children:
            events.append(StartElement(label))
            if depth < max_depth and draw(st.booleans()):
                events.extend(subtree(depth + 1))
            events.append(EndElement(label))
        return events

    return [StartDocument(), *subtree(1), EndDocument()]


@st.composite
def rpeq_queries(draw, **config_overrides) -> Rpeq:
    """Hypothesis strategy: a random rpeq AST via the seeded generator.

    Delegates to :func:`repro.rpeq.random_rpeq` driven by a drawn seed,
    which keeps shrinking meaningful (smaller seed -> same distribution)
    while reusing the library's own generator.
    """
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    config = GeneratorConfig(labels=LABELS, **config_overrides)
    return random_rpeq(random.Random(seed), config)


@pytest.fixture
def rng() -> random.Random:
    """A seeded RNG, fresh per test."""
    return random.Random(20020512)
