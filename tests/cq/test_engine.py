"""Unit tests for the conjunctive-query translation and engine."""

import pytest

from repro import SpexEngine
from repro.cq.engine import CqEngine, compile_cq
from repro.cq.parser import parse_cq
from repro.errors import UnsupportedFeatureError

from ..conftest import PAPER_DOC


def bindings(cq, doc=PAPER_DOC):
    return {
        variable: [m.position for m in matches]
        for variable, matches in CqEngine(cq).evaluate(doc).items()
    }


class TestPaperEquivalences:
    def test_sec_vii_example(self):
        """q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3  ==  _*.a[b].c"""
        cq = "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3"
        assert bindings(cq) == {"X3": SpexEngine("_*.a[b].c").positions(PAPER_DOC)}

    def test_pure_path_query(self):
        assert bindings("q(X2) :- Root(a) X1, X1(c) X2") == {"X2": [5]}

    def test_condition_chain_folds_to_nested_qualifier(self):
        # X2, X3 never reach the head: b[c] as qualifier on X1.
        cq = "q(X1) :- Root(_*.a) X1, X1(a) X2, X2(c) X3"
        assert bindings(cq) == {"X1": SpexEngine("_*.a[a[c]]").positions(PAPER_DOC)}


class TestProjectionSemantics:
    def test_head_requires_whole_body(self):
        cq = "q(X1, X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3"
        result = bindings(cq)
        assert result["X1"] == SpexEngine("_*.a[b][c]").positions(PAPER_DOC)
        assert result["X3"] == SpexEngine("_*.a[b].c").positions(PAPER_DOC)

    def test_sibling_constraint_applies_to_branch(self):
        # X2 must come from an a that also has a c child.
        cq = "q(X2) :- Root(_*) X1, X1(a) X2, X2(c) X3"
        assert bindings(cq) == {"X2": SpexEngine("_*.a[c]").positions(PAPER_DOC)}

    def test_root_head(self):
        assert bindings("q(Root) :- Root(_*.b) X") == {"Root": [0]}
        assert bindings("q(Root) :- Root(_*.x) X") == {"Root": []}

    def test_atom_order_irrelevant(self):
        a = bindings("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3")
        b = bindings("q(X3) :- Root(_*.a) X1, X1(c) X3, X1(b) X2")
        assert a == b


class TestCompileCq:
    def test_one_sink_per_head_variable(self):
        query = parse_cq("q(X1, X2) :- Root(a) X1, X1(b) X2")
        network, _store, sinks = compile_cq(query)
        assert set(sinks) == {"X1", "X2"}
        assert len(network.sinks) == 2

    def test_qualifier_branch_created_for_non_head_path(self):
        from repro.core.qualifier_transducers import VariableCreator

        query = parse_cq("q(X1) :- Root(a) X1, X1(b) X2")
        network, _store, _sinks = compile_cq(query)
        assert any(isinstance(node, VariableCreator) for node in network.nodes)


class TestStreaming:
    def test_progressive_pairs(self):
        engine = CqEngine("q(X1) :- Root(_*.c) X1", collect_events=False)
        pairs = list(engine.run(PAPER_DOC))
        assert [(v, m.position) for v, m in pairs] == [("X1", 3), ("X1", 5)]

    def test_fragments_available_by_default(self):
        engine = CqEngine("q(X1) :- Root(a.c) X1")
        ((_, match),) = list(engine.run(PAPER_DOC))
        assert match.to_xml() == "<c></c>"


class TestRandomizedEquivalence:
    """Tree-shaped CQs are rpeq-expressible; both engines must agree."""

    def test_chain_queries_equal_rpeq(self, rng):
        from repro.rpeq.unparse import unparse
        from repro.rpeq.generate import GeneratorConfig, random_rpeq

        from ..conftest import make_random_events

        config = GeneratorConfig(allow_qualifiers=False, max_depth=2)
        for _ in range(20):
            # Build a 3-atom chain Root -> X1 -> X2 -> X3 from random
            # qualifier-free paths; the rpeq equivalent is their
            # concatenation.
            paths = [random_rpeq(rng, config) for _ in range(3)]
            texts = []
            for path in paths:
                try:
                    texts.append(unparse(path))
                except Exception:
                    break
            if len(texts) < 3:
                continue
            cq_text = (
                f"q(X3) :- Root({texts[0]}) X1, X1({texts[1]}) X2, "
                f"X2({texts[2]}) X3"
            )
            rpeq_text = f"({texts[0]}).({texts[1]}).({texts[2]})"
            events = make_random_events(rng, max_depth=4)
            via_cq = [
                m.position
                for m in CqEngine(cq_text, collect_events=False).evaluate(iter(events))["X3"]
            ]
            via_rpeq = SpexEngine(rpeq_text, collect_events=False).positions(iter(events))
            assert via_cq == via_rpeq, cq_text

    def test_branching_queries_equal_qualified_rpeq(self, rng):
        from ..conftest import make_random_events

        for _ in range(20):
            events = make_random_events(rng, max_depth=4)
            # Root(_*.a) X1 with two leaf branches: qualifier semantics.
            cq_text = "q(X2) :- Root(_*.a) X1, X1(b) Xb, X1(c) X2"
            via_cq = [
                m.position
                for m in CqEngine(cq_text, collect_events=False).evaluate(iter(events))["X2"]
            ]
            via_rpeq = SpexEngine("_*.a[b].c", collect_events=False).positions(iter(events))
            assert via_cq == via_rpeq


class TestNodeIdentityJoins:
    """The paper's future work, in the sole-head-variable form."""

    DOC = "<r><a><c/><b/></a><d><c/></d></r>"
    # positions: r=1 a=2 c=3 b=4 d=5 c=6

    def test_intersection_semantics(self):
        result = bindings("q(X) :- Root(_*.c) X, Root(_*.a._) X", self.DOC)
        assert result == {"X": [3]}  # the c that is also under an a

    def test_empty_intersection(self):
        result = bindings("q(X) :- Root(_*.a.c) X, Root(_*.d.c) X", self.DOC)
        assert result == {"X": []}

    def test_three_way_join(self):
        cq = "q(X) :- Root(_*._) X, Root(r._) X, Root(_*.d) X"
        assert bindings(cq, self.DOC) == {"X": [5]}

    def test_join_agrees_with_rpeq_conjunction_on_same_step(self):
        # Both paths end in the same label: join == qualifier stacking.
        cq = "q(X) :- Root(_*.a[b].c) X, Root(_*.a[c].c) X"
        via_join = bindings(cq, self.DOC)
        via_rpeq = SpexEngine("_*.a[b][c].c").positions(self.DOC)
        assert via_join == {"X": via_rpeq}

    def test_document_order_preserved(self):
        doc = "<r><a><x/></a><x/><a><x/></a></r>"
        result = bindings("q(X) :- Root(_*.x) X, Root(_*.a.x) X", doc)
        assert result["X"] == sorted(result["X"])

    def test_one_sink_per_defining_path(self):
        from repro.cq.engine import compile_cq
        from repro.cq.parser import parse_cq

        query = parse_cq("q(X) :- Root(a) X, Root(b) X")
        _network, _store, sinks = compile_cq(query)
        assert len(sinks["X"]) == 2
