"""Unit tests for the conjunctive-query parser and data model."""

import pytest

from repro.cq.ast import ROOT, Atom, ConjunctiveQuery
from repro.cq.parser import parse_cq
from repro.errors import QuerySyntaxError, UnsupportedFeatureError
from repro.rpeq.parser import parse as parse_rpeq


class TestParse:
    def test_paper_example(self):
        query = parse_cq("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3")
        assert query.name == "q"
        assert query.head == ("X3",)
        assert query.body == (
            Atom("Root", parse_rpeq("_*.a"), "X1"),
            Atom("X1", parse_rpeq("b"), "X2"),
            Atom("X1", parse_rpeq("c"), "X3"),
        )

    def test_multiple_head_variables(self):
        query = parse_cq("q(X1, X2) :- Root(a) X1, X1(b) X2")
        assert query.head == ("X1", "X2")

    def test_nested_parens_in_path(self):
        query = parse_cq("q(X) :- Root((a|b).c) X")
        assert query.body[0].path == parse_rpeq("(a|b).c")

    def test_whitespace_flexible(self):
        assert parse_cq("q( X ) :- Root( a )  X") == parse_cq("q(X):-Root(a)X")

    @pytest.mark.parametrize(
        "bad",
        [
            "q(X)",                       # no body
            "q(X) :- Root(a)",            # missing target
            "q(X) : Root(a) X",           # bad separator
            "q(X) :- Root(a X",           # unbalanced parens
            "q(X) :- Root(a) X trailing", # trailing junk
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_cq(bad)


class TestValidation:
    def test_undefined_source_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_cq("q(X2) :- Y(a) X2")

    def test_sole_head_join_accepted(self):
        query = parse_cq("q(X) :- Root(a) X, Root(b) X")
        assert query.join_variables() == {"X"}

    def test_join_with_other_head_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="sole head"):
            parse_cq("q(X, Y) :- Root(a) X, Root(b) X, X(c) Y")

    def test_non_head_join_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="sole head"):
            parse_cq("q(Y) :- Root(a) X, Root(b) X, Root(c) Y")

    def test_join_with_outgoing_atoms_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="outgoing"):
            parse_cq("q(X) :- Root(a) X, Root(b) X, X(c) Z")

    def test_undefined_head_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_cq("q(Z) :- Root(a) X")

    def test_root_head_allowed(self):
        parse_cq("q(Root) :- Root(a) X")


class TestReachability:
    def test_reaches_head(self):
        query = parse_cq("q(X3) :- Root(a) X1, X1(b) X2, X1(c) X3")
        assert query.reaches_head("X3")
        assert query.reaches_head("X1")
        assert not query.reaches_head("X2")

    def test_variables(self):
        query = parse_cq("q(X2) :- Root(a) X1, X1(b) X2")
        assert query.variables() == {ROOT, "X1", "X2"}


class TestUnparse:
    def test_round_trip(self):
        from repro.cq import unparse_cq

        text = "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3"
        query = parse_cq(text)
        assert parse_cq(unparse_cq(query)) == query

    def test_multi_head_round_trip(self):
        from repro.cq import unparse_cq

        text = "geo(A, B) :- Root(_*.x) A, A(y|z) B"
        query = parse_cq(text)
        assert parse_cq(unparse_cq(query)) == query

    def test_readable_output(self):
        from repro.cq import unparse_cq

        query = parse_cq("q(X):-Root(a)X")
        assert unparse_cq(query) == "q(X) :- Root(a) X"
