"""Unit tests for SAX-based stream parsing."""

import io

import pytest

from repro.errors import StreamError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import iter_events, parse_stream, parse_string


class TestParseString:
    def test_envelope_wraps_document(self):
        events = list(parse_string("<a/>"))
        assert isinstance(events[0], StartDocument)
        assert isinstance(events[-1], EndDocument)

    def test_simple_document(self):
        events = list(parse_string("<a><b/></a>"))
        assert events == [
            StartDocument(),
            StartElement("a"),
            StartElement("b"),
            EndElement("b"),
            EndElement("a"),
            EndDocument(),
        ]

    def test_text_kept_by_default(self):
        events = list(parse_string("<a>hi</a>"))
        assert Text("hi") in events

    def test_text_dropped_when_disabled(self):
        events = list(parse_string("<a>hi</a>", keep_text=False))
        assert not any(isinstance(e, Text) for e in events)

    def test_whitespace_only_text_dropped(self):
        events = list(parse_string("<a>\n  <b/>\n</a>"))
        assert not any(isinstance(e, Text) for e in events)

    def test_attributes_preserved(self):
        events = list(parse_string('<a x="1" y="2"/>'))
        start = next(e for e in events if isinstance(e, StartElement))
        assert dict(start.attributes) == {"x": "1", "y": "2"}

    def test_malformed_raises_stream_error(self):
        with pytest.raises(StreamError):
            list(parse_string("<a><b></a>"))

    def test_unclosed_raises_stream_error(self):
        with pytest.raises(StreamError):
            list(parse_string("<a>"))

    def test_entities_resolved(self):
        events = list(parse_string("<a>&lt;x&gt;</a>"))
        text = "".join(e.content for e in events if isinstance(e, Text))
        assert text == "<x>"


class TestIncrementalParsing:
    def test_large_document_streams_in_chunks(self):
        # Build a document far larger than the internal chunk size and
        # verify the parser yields events before reading it all.
        body = "<item/>" * 50_000
        stream = io.BytesIO(f"<root>{body}</root>".encode())
        events = parse_stream(stream)
        assert isinstance(next(events), StartDocument)
        assert next(events) == StartElement("root")
        # The file position must be far from the end at this point.
        assert stream.tell() < stream.getbuffer().nbytes

    def test_text_file_object(self):
        events = list(parse_stream(io.StringIO("<a><b/></a>")))
        assert StartElement("b") in events


class TestIterEvents:
    def test_xml_text_dispatch(self):
        assert StartElement("a") in list(iter_events("<a/>"))

    def test_path_dispatch(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b/></a>")
        assert StartElement("b") in list(iter_events(str(path)))

    def test_pathlike_dispatch(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a/>")
        assert StartElement("a") in list(iter_events(path))

    def test_event_iterable_passthrough(self):
        events = [StartDocument(), StartElement("a"), EndElement("a"), EndDocument()]
        assert list(iter_events(iter(events))) == events


class TestXmlSpecifics:
    """XML constructs the paper abstracts away must pass harmlessly."""

    def test_comments_ignored(self):
        events = list(parse_string("<a><!-- note --><b/></a>"))
        assert StartElement("b") in events
        assert len([e for e in events if isinstance(e, StartElement)]) == 2

    def test_processing_instructions_ignored(self):
        events = list(parse_string("<a><?php echo ?><b/></a>"))
        assert StartElement("b") in events

    def test_cdata_becomes_text(self):
        events = list(parse_string("<a><![CDATA[1 < 2]]></a>"))
        assert Text("1 < 2") in events

    def test_xml_declaration(self):
        events = list(parse_string('<?xml version="1.0" encoding="UTF-8"?><a/>'))
        assert StartElement("a") in events

    def test_namespaced_tags_kept_verbatim(self):
        # Namespace processing is off: prefixed names are plain labels.
        events = list(parse_string('<rdf:RDF xmlns:rdf="urn:x"><rdf:li/></rdf:RDF>'))
        labels = [e.label for e in events if isinstance(e, StartElement)]
        assert labels == ["rdf:RDF", "rdf:li"]

    def test_unicode_content(self):
        events = list(parse_string("<a>héllo wörld</a>"))
        text = "".join(e.content for e in events if isinstance(e, Text))
        assert text == "héllo wörld"
