"""Untrusted-input hardening: ParserLimits ceilings (INPUT001-006)."""

import pytest

from repro.errors import InputLimitError, StreamError
from repro.xmlstream.events import EndDocument, StartDocument, Text
from repro.xmlstream.parser import (
    ParserLimits,
    iter_documents,
    iter_events,
    parse_string,
)
from repro.xmlstream.recovery import ErrorReport


def bomb(depth=8, fanout=10, label="lol"):
    """A classic billion-laughs document (fanout**depth expansions)."""
    entities = ['<!ENTITY e0 "ha">']
    for level in range(1, depth + 1):
        refs = f"&e{level - 1};" * fanout
        entities.append(f'<!ENTITY e{level} "{refs}">')
    return (
        "<?xml version='1.0'?>\n"
        f"<!DOCTYPE {label} [{''.join(entities)}]>\n"
        f"<{label}>&e{depth};</{label}>"
    )


class TestParserLimits:
    def test_default_profile_is_bounded(self):
        limits = ParserLimits.default()
        assert not limits.unbounded
        assert limits.guards_entities
        assert limits.max_entity_expansion == 64 * 1024

    def test_empty_profile_is_unbounded(self):
        assert ParserLimits().unbounded
        assert not ParserLimits().guards_entities

    def test_validation(self):
        with pytest.raises(ValueError):
            ParserLimits(max_entity_depth=0)
        with pytest.raises(ValueError):
            ParserLimits(max_amplification=0)
        with pytest.raises(ValueError):
            ParserLimits(amplification_floor=-1)


class TestEntityGuards:
    def test_billion_laughs_blocked_before_expansion(self):
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(bomb(), limits=ParserLimits.default()))
        assert excinfo.value.code == "INPUT001"

    def test_entity_depth_ceiling(self):
        # tiny expansions (fanout=1) stay under the size ceiling but nest
        # 20 levels of entity-in-entity references
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(bomb(depth=20, fanout=1), limits=ParserLimits.default()))
        assert excinfo.value.code == "INPUT002"

    def test_unguarded_parse_expands_freely(self):
        # a small bomb parses fine with no limits — proving the guard is
        # what blocks it, not expat itself
        events = list(parse_string(bomb(depth=3, fanout=4)))
        text = "".join(e.content for e in events if isinstance(e, Text))
        assert text == "ha" * 4**3

    def test_innocent_entities_pass(self):
        doc = (
            "<?xml version='1.0'?>"
            '<!DOCTYPE a [<!ENTITY greet "hello">]>'
            "<a>&greet; &amp; goodbye</a>"
        )
        guarded = list(parse_string(doc, limits=ParserLimits.default()))
        text = "".join(e.content for e in guarded if isinstance(e, Text))
        assert "hello" in text and "&" in text and "goodbye" in text
        # hardening must not change what an unguarded parse produces
        assert guarded == list(parse_string(doc))


class TestStructuralGuards:
    def test_contiguous_text_run_ceiling(self):
        doc = f"<a>{'x' * 100}</a>"
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(doc, limits=ParserLimits(max_text_length=10)))
        assert excinfo.value.code == "INPUT003"
        # the same document is fine under a generous ceiling
        assert list(parse_string(doc, limits=ParserLimits(max_text_length=1000)))

    def test_attribute_value_ceiling(self):
        doc = f"<a b='{'x' * 100}'/>"
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(doc, limits=ParserLimits(max_attribute_length=10)))
        assert excinfo.value.code == "INPUT004"

    def test_attribute_count_ceiling(self):
        attrs = " ".join(f"a{i}='v'" for i in range(20))
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(f"<a {attrs}/>", limits=ParserLimits(max_attributes=5)))
        assert excinfo.value.code == "INPUT004"

    def test_name_length_ceiling(self):
        name = "n" * 64
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(f"<{name}/>", limits=ParserLimits(max_name_length=8)))
        assert excinfo.value.code == "INPUT005"

    def test_amplification_ratio_ceiling(self):
        # many references to one modest entity: each is small, the sum is
        # not — only the runtime amplification guard catches this shape
        refs = "&e;" * 2000
        doc = (
            '<!DOCTYPE a [<!ENTITY e "0123456789">]>' f"<a>{refs}</a>"
        )
        limits = ParserLimits(max_amplification=2.0, amplification_floor=64)
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(doc, limits=limits))
        assert excinfo.value.code == "INPUT006"


class TestHardeningIsRecoverable:
    def test_input_limit_error_is_a_stream_error(self):
        assert issubclass(InputLimitError, StreamError)

    def test_iter_documents_survives_a_poisoned_source(self):
        report = ErrorReport()
        sources = ["<a><b>1</b></a>", bomb(), "<a><b>2</b></a>"]
        events = list(
            iter_documents(sources, limits=ParserLimits.default(), report=report)
        )
        # both healthy documents parsed in full
        assert sum(1 for e in events if isinstance(e, StartDocument)) == 3
        assert sum(1 for e in events if isinstance(e, EndDocument)) == 2
        assert [r.document for r in report.records] == [1]
        assert report.records[0].action == "parse_error"
        assert "INPUT001" in report.records[0].message or "entity" in report.records[0].message

    def test_iter_events_passes_limits_through(self):
        with pytest.raises(InputLimitError):
            list(iter_events(bomb(), limits=ParserLimits.default()))
