"""Unit and property tests for serialization."""

import pytest
from hypothesis import given

from repro.errors import StreamError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import parse_string
from repro.xmlstream.serializer import escape_attribute, escape_text, serialize

from ..conftest import event_streams


class TestSerialize:
    def test_simple(self):
        events = [
            StartDocument(),
            StartElement("a"),
            StartElement("b"),
            EndElement("b"),
            EndElement("a"),
            EndDocument(),
        ]
        assert serialize(events) == "<a><b></b></a>"

    def test_boundaries_dropped(self):
        assert serialize([StartDocument(), EndDocument()]) == ""

    def test_text_escaped(self):
        events = [StartElement("a"), Text("1 < 2 & 3"), EndElement("a")]
        assert serialize(events) == "<a>1 &lt; 2 &amp; 3</a>"

    def test_attributes_rendered_and_escaped(self):
        events = [StartElement("a", {"t": 'x"y<'}), EndElement("a")]
        assert serialize(events) == '<a t="x&quot;y&lt;"></a>'

    def test_indent_mode(self):
        events = [StartElement("a"), StartElement("b"), EndElement("b"), EndElement("a")]
        assert serialize(events, indent="  ") == "<a>\n  <b>\n  </b>\n</a>\n"

    def test_mismatched_end_tag_raises(self):
        with pytest.raises(StreamError):
            serialize([StartElement("a"), EndElement("b")])

    def test_unclosed_raises(self):
        with pytest.raises(StreamError):
            serialize([StartElement("a")])


class TestEscaping:
    @pytest.mark.parametrize(
        "raw,cooked",
        [("a&b", "a&amp;b"), ("<", "&lt;"), (">", "&gt;"), ("plain", "plain")],
    )
    def test_escape_text(self, raw, cooked):
        assert escape_text(raw) == cooked

    def test_escape_attribute_quotes(self):
        assert escape_attribute('a"b') == "a&quot;b"


class TestRoundTrip:
    @given(event_streams())
    def test_parse_serialize_round_trip(self, events):
        """serialize -> parse reproduces the structural event sequence."""
        text = serialize(events)
        if not text:
            return  # empty forest: nothing to re-parse
        reparsed = list(parse_string(f"<root>{text}</root>"))
        # Strip the synthetic wrapper and envelope before comparing.
        inner = reparsed[2:-2]
        original = events[1:-1]
        assert inner == original
