"""Unit and property tests for stream well-formedness checking."""

import pytest
from hypothesis import given

from repro.errors import StreamError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.validate import checked, is_well_formed

from ..conftest import event_streams


def _consume(events):
    for _ in checked(events):
        pass


class TestChecked:
    def test_valid_stream_passes_through_unchanged(self):
        events = [StartDocument(), StartElement("a"), EndElement("a"), EndDocument()]
        assert list(checked(events)) == events

    def test_mismatched_end_tag(self):
        with pytest.raises(StreamError, match="does not close"):
            _consume([StartDocument(), StartElement("a"), EndElement("b")])

    def test_end_without_open(self):
        with pytest.raises(StreamError, match="no open element"):
            _consume([StartDocument(), EndElement("a")])

    def test_element_before_start_document(self):
        with pytest.raises(StreamError, match="before"):
            _consume([StartElement("a")])

    def test_duplicate_start_document(self):
        with pytest.raises(StreamError, match="duplicate"):
            _consume([StartDocument(), StartDocument()])

    def test_end_document_with_open_elements(self):
        with pytest.raises(StreamError, match="unclosed"):
            _consume([StartDocument(), StartElement("a"), EndDocument()])

    def test_events_after_end_document(self):
        with pytest.raises(StreamError, match="after"):
            _consume([StartDocument(), EndDocument(), StartElement("a")])

    def test_truncated_stream(self):
        with pytest.raises(StreamError, match="ended before"):
            _consume([StartDocument(), StartElement("a"), EndElement("a")])

    def test_text_allowed_inside(self):
        _consume([StartDocument(), StartElement("a"), Text("x"), EndElement("a"), EndDocument()])

    def test_text_before_document_rejected(self):
        with pytest.raises(StreamError):
            _consume([Text("x"), StartDocument(), EndDocument()])


class TestIsWellFormed:
    def test_true_for_valid(self):
        assert is_well_formed([StartDocument(), EndDocument()])

    def test_false_for_invalid(self):
        assert not is_well_formed([StartDocument(), EndElement("a")])

    @given(event_streams())
    def test_generated_streams_are_well_formed(self, events):
        assert is_well_formed(events)

    @given(event_streams())
    def test_dropping_one_end_tag_breaks_well_formedness(self, events):
        index = next(
            (i for i, e in enumerate(events) if isinstance(e, EndElement)), None
        )
        if index is None:
            return
        mutated = events[:index] + events[index + 1 :]
        assert not is_well_formed(mutated)
