"""Recovery policies: strict, skip-document, repair."""

import pytest

from repro.errors import StreamError
from repro.xmlstream import (
    ErrorReport,
    RecoveryPolicy,
    StartDocument,
    as_policy,
    events_from_tags,
    recovered_documents,
    recovering,
    tags_from_events,
)

GOOD = ["<$>", "<a>", "<b>", "</b>", "</a>", "</$>"]
TRUNCATED = ["<$>", "<a>", "<b>", "</b>"]
MISMATCHED = ["<$>", "<a>", "</b>", "</$>"]


def run(tags, policy, report=None, require_end=True):
    return tags_from_events(
        recovering(events_from_tags(tags), policy, report, require_end=require_end)
    )


class TestPolicyCoercion:
    def test_names(self):
        assert as_policy("strict") is RecoveryPolicy.STRICT
        assert as_policy("skip") is RecoveryPolicy.SKIP_DOCUMENT
        assert as_policy("repair") is RecoveryPolicy.REPAIR
        assert as_policy(RecoveryPolicy.REPAIR) is RecoveryPolicy.REPAIR

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown recovery policy"):
            as_policy("lenient")


class TestStrict:
    def test_clean_stream_passes_unchanged(self):
        assert run(GOOD, "strict") == GOOD

    def test_multi_document_stream_accepted(self):
        stream = GOOD + GOOD
        assert run(stream, "strict") == stream

    def test_mismatch_raises(self):
        with pytest.raises(StreamError, match="does not close|no open element"):
            run(MISMATCHED, "strict")

    def test_truncation_raises(self):
        with pytest.raises(StreamError, match="ended before"):
            run(TRUNCATED, "strict")

    def test_truncation_tolerated_without_require_end(self):
        assert run(TRUNCATED, "strict", require_end=False) == TRUNCATED

    def test_garbage_between_documents_raises(self):
        with pytest.raises(StreamError, match="expected <\\$>"):
            run(GOOD + ["<x>"], "strict")

    def test_source_stream_error_propagates(self):
        def source():
            yield StartDocument()
            raise StreamError("connection reset")

        with pytest.raises(StreamError, match="connection reset"):
            list(recovering(source(), "strict"))


class TestSkipDocument:
    def test_clean_stream_passes_unchanged(self):
        report = ErrorReport()
        assert run(GOOD, "skip", report) == GOOD
        assert report.ok
        assert report.documents_seen == 1

    def test_bad_middle_document_quarantined(self):
        stream = GOOD + MISMATCHED + GOOD
        report = ErrorReport()
        assert run(stream, "skip", report) == GOOD + GOOD
        assert report.documents_seen == 3
        assert report.documents_skipped == 1
        [record] = report.records
        assert record.document == 1
        assert record.action == "skipped"

    def test_truncated_final_document_withheld(self):
        report = ErrorReport()
        assert run(GOOD + TRUNCATED, "skip", report) == GOOD
        assert report.documents_skipped == 1

    def test_truncated_prefix_without_require_end_silently_withheld(self):
        report = ErrorReport()
        assert run(GOOD + TRUNCATED, "skip", report, require_end=False) == GOOD
        assert report.documents_skipped == 0
        assert report.ok

    def test_duplicate_start_document_opens_next(self):
        # <$> inside a document invalidates it; the same <$> starts the
        # next document, which is well-formed here.
        stream = ["<$>", "<a>"] + GOOD
        report = ErrorReport()
        assert run(stream, "skip", report) == GOOD
        assert report.documents_seen == 2
        assert report.documents_skipped == 1

    def test_garbage_between_documents_dropped(self):
        stream = GOOD + ["</x>", "oops"] + GOOD
        report = ErrorReport()
        assert run(stream, "skip", report) == GOOD + GOOD
        assert report.events_dropped == 2
        assert any(r.action == "dropped" for r in report.records)

    def test_source_error_quarantines_open_document(self):
        def source():
            yield from events_from_tags(GOOD)
            yield from events_from_tags(["<$>", "<a>"])
            raise StreamError("connection reset")

        report = ErrorReport()
        got = tags_from_events(recovering(source(), "skip", report))
        assert got == GOOD
        assert report.documents_skipped == 1


class TestRepair:
    def test_clean_stream_passes_unchanged(self):
        report = ErrorReport()
        assert run(GOOD, "repair", report) == GOOD
        assert report.ok

    def test_truncation_auto_closed(self):
        report = ErrorReport()
        got = run(TRUNCATED, "repair", report)
        assert got == ["<$>", "<a>", "<b>", "</b>", "</a>", "</$>"]
        assert report.events_repaired == 2  # </a> and </$>

    def test_orphan_end_tag_dropped(self):
        report = ErrorReport()
        got = run(MISMATCHED, "repair", report)
        assert got == ["<$>", "<a>", "</a>", "</$>"]
        assert report.events_dropped == 1

    def test_mismatched_end_closes_intervening(self):
        report = ErrorReport()
        got = run(["<$>", "<a>", "<b>", "</a>", "</$>"], "repair", report)
        assert got == ["<$>", "<a>", "<b>", "</b>", "</a>", "</$>"]
        assert report.events_repaired == 1

    def test_end_document_closes_open_elements(self):
        report = ErrorReport()
        got = run(["<$>", "<a>", "<b>", "</$>"], "repair", report)
        assert got == ["<$>", "<a>", "<b>", "</b>", "</a>", "</$>"]
        assert report.events_repaired == 2

    def test_missing_envelope_synthesized(self):
        report = ErrorReport()
        got = run(["<a>", "</a>", "</$>"], "repair", report)
        assert got == ["<$>", "<a>", "</a>", "</$>"]
        assert report.events_repaired == 1

    def test_duplicate_start_document_dropped(self):
        report = ErrorReport()
        got = run(["<$>", "<a>", "<$>", "</a>", "</$>"], "repair", report)
        assert got == ["<$>", "<a>", "</a>", "</$>"]
        assert report.events_dropped == 1

    def test_source_error_treated_as_truncation(self):
        def source():
            yield from events_from_tags(["<$>", "<a>"])
            raise StreamError("parser gave up")

        report = ErrorReport()
        got = tags_from_events(recovering(source(), "repair", report))
        assert got == ["<$>", "<a>", "</a>", "</$>"]
        assert report.events_repaired == 2

    def test_repaired_output_is_well_formed(self):
        # Every repaired stream must re-validate under STRICT.
        nasty = [
            TRUNCATED,
            MISMATCHED,
            ["<$>", "</a>", "<a>", "</$>"],
            ["<a>", "<b>", "</a>"],
            GOOD + ["</x>"] + TRUNCATED,
        ]
        for tags in nasty:
            repaired = list(recovering(events_from_tags(tags), "repair"))
            # must not raise:
            assert list(recovering(repaired, "strict")) == repaired


class TestErrorReport:
    def test_callback_fires_per_record(self):
        seen = []
        report = ErrorReport(callback=seen.append)
        run(GOOD + MISMATCHED + GOOD, "skip", report)
        assert seen == report.records
        assert len(seen) == 1

    def test_summary_mentions_counts(self):
        report = ErrorReport()
        run(GOOD + MISMATCHED, "skip", report)
        summary = report.summary()
        assert "2 document(s)" in summary
        assert "1 skipped" in summary


class TestRecoveredDocuments:
    def test_splits_surviving_documents(self):
        stream = GOOD + MISMATCHED + GOOD
        report = ErrorReport()
        documents = [
            tags_from_events(doc)
            for doc in recovered_documents(
                events_from_tags(stream), "skip", report
            )
        ]
        assert documents == [GOOD, GOOD]
        assert report.documents_skipped == 1

    def test_repair_is_lazy(self):
        # The repair path must not buffer documents: pulling the first
        # document of an endless stream terminates.
        def endless():
            while True:
                yield from events_from_tags(GOOD)

        documents = recovered_documents(endless(), "repair", require_end=False)
        first = next(documents)
        assert tags_from_events(first) == GOOD


class TestSourceFailureVisibility:
    def test_parser_flushes_prefix_before_raising(self):
        # A SAX error mid-chunk must not swallow the events already
        # parsed from that chunk: the recovery layer repairs the
        # readable prefix only if the source hands it over.
        from repro.xmlstream.parser import parse_string

        events = []
        with pytest.raises(StreamError):
            for event in parse_string("<a><b></b></a><x></y>"):
                events.append(event)
        assert "<b>" in tags_from_events(iter(events))

    def test_repair_recovers_prefix_of_multi_root_text(self):
        from repro import SpexEngine

        engine = SpexEngine("_*.b", collect_events=False)
        matches = list(engine.run("<a><b></b></a><x></y>", on_error="repair"))
        assert [m.position for m in matches] == [2]

    def test_dead_source_is_not_reported_ok(self):
        def dead():
            raise StreamError("connection reset")
            yield  # pragma: no cover

        report = ErrorReport()
        assert list(recovering(dead(), "skip", report)) == []
        assert not report.ok
        [record] = report.records
        assert record.document == -1 and record.action == "dropped"
