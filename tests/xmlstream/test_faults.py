"""The fault injector: every corruption kind, seeded reproducibility."""

from repro.xmlstream import (
    FAULT_KINDS,
    FaultInjector,
    events_from_tags,
    is_well_formed,
)

import pytest

DOC = events_from_tags
BASE = ["<$>", "<a>", "<b>", "hello", "</b>", "<c>", "</c>", "</a>", "</$>"]


def base():
    return list(DOC(BASE))


class TestDeterminism:
    def test_same_seed_same_corruption(self):
        for kind in FAULT_KINDS:
            one, fault_one = FaultInjector(seed=7).corrupt(base(), kind)
            two, fault_two = FaultInjector(seed=7).corrupt(base(), kind)
            assert one == two
            assert fault_one == fault_two

    def test_different_seeds_diverge_somewhere(self):
        outcomes = {
            tuple(FaultInjector(seed=s).corrupt(base())[0]) for s in range(20)
        }
        assert len(outcomes) > 1


class TestFaultKinds:
    def test_truncate_shortens(self):
        corrupted, fault = FaultInjector(3).truncate(base())
        assert fault.kind == "truncate"
        assert len(corrupted) < len(base())
        assert corrupted == base()[: fault.index]

    def test_drop_tag_removes_one_structural_event(self):
        corrupted, fault = FaultInjector(3).drop_tag(base())
        assert fault.kind == "drop_tag"
        assert len(corrupted) == len(base()) - 1

    def test_duplicate_tag_adds_one(self):
        corrupted, fault = FaultInjector(3).duplicate_tag(base())
        assert len(corrupted) == len(base()) + 1
        assert corrupted[fault.index] == corrupted[fault.index + 1]

    def test_swap_tags_preserves_multiset(self):
        corrupted, fault = FaultInjector(3).swap_tags(base())
        assert fault.kind == "swap_tags"
        assert len(corrupted) == len(base())
        assert sorted(map(str, corrupted)) == sorted(map(str, base()))

    def test_interleave_garbage_grows_stream(self):
        corrupted, _fault = FaultInjector(3).interleave_garbage(base())
        assert len(corrupted) > len(base())

    def test_flip_label_keeps_length(self):
        corrupted, fault = FaultInjector(3).flip_label(base())
        assert fault.kind == "flip_label"
        assert len(corrupted) == len(base())
        assert corrupted != base()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector(0).corrupt(base(), "meltdown")


class TestCorruptDocument:
    def test_only_victim_is_touched(self):
        doc_a = list(DOC(["<$>", "<a>", "</a>", "</$>"]))
        doc_b = list(DOC(["<$>", "<b>", "</b>", "</$>"]))
        doc_c = list(DOC(["<$>", "<c>", "</c>", "</$>"]))
        stream, fault = FaultInjector(11).corrupt_document(
            [doc_a, doc_b, doc_c], victim=1, kind="drop_tag"
        )
        assert stream[: len(doc_a)] == doc_a
        assert stream[-len(doc_c) :] == doc_c
        assert len(stream) == len(doc_a) + len(doc_b) - 1 + len(doc_c)
        assert fault.kind == "drop_tag"

    def test_most_corruptions_break_well_formedness(self):
        # Not a guarantee per corruption (dropping text is harmless), but
        # across many seeds the injector must actually hurt.
        broken = sum(
            1
            for seed in range(40)
            if not is_well_formed(iter(FaultInjector(seed).corrupt(base())[0]))
        )
        assert broken > 20

    def test_degenerate_streams_fall_back_gracefully(self):
        # No structural events to corrupt: methods degrade to truncate.
        tiny = list(DOC(["<$>", "</$>"]))
        corrupted, fault = FaultInjector(0).drop_tag(tiny)
        assert fault.kind == "truncate"
        assert len(corrupted) <= len(tiny)


class TestRuntimeFaults:
    def test_transient_error_raises_after_k(self):
        stream, fault = FaultInjector(5).transient_error(base(), fail_after=3)
        assert fault.kind == "transient_error" and fault.index == 3
        delivered = []
        with pytest.raises(IOError, match="transient"):
            for event in stream:
                delivered.append(event)
        assert delivered == base()[:3]

    def test_transient_error_seeded_position(self):
        one, fault_one = FaultInjector(seed=9).transient_error(base())
        two, fault_two = FaultInjector(seed=9).transient_error(base())
        assert fault_one == fault_two
        with pytest.raises(IOError):
            list(one)

    def test_transient_error_past_end_still_raises(self):
        stream, _fault = FaultInjector(0).transient_error(
            base(), fail_after=10_000
        )
        delivered = []
        with pytest.raises(IOError):
            for event in stream:
                delivered.append(event)
        assert delivered == base()  # everything delivered, then the break

    def test_stall_delays_then_continues(self):
        import time

        stream, fault = FaultInjector(0).stall(
            base(), stall_after=2, stall_seconds=0.05
        )
        assert fault.kind == "stall" and fault.index == 2
        started = time.monotonic()
        assert list(stream) == base()
        assert time.monotonic() - started >= 0.05


class TestFlakySource:
    def test_script_then_clean(self):
        from repro.xmlstream import FlakySource

        source = FlakySource(base(), script=[("error", 2), None])
        with pytest.raises(IOError):
            list(source.connect())
        assert list(source.connect()) == base()
        assert list(source.connect()) == base()  # beyond script: clean
        assert source.connects == 3


class TestSlowSource:
    def test_delays_on_the_injected_clock(self):
        from repro.core.clock import FakeClock

        clock = FakeClock()
        stream, fault = FaultInjector(0, clock=clock).slow_source(
            base(), delay=0.5, every=2
        )
        assert fault.kind == "slow_source"
        assert list(stream) == base()  # progress is made, just slowly
        # 9 events, a sleep before indexes 0, 2, 4, 6, 8
        assert clock.sleeps == [0.5] * 5

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultInjector(0).slow_source(base(), every=0)

    def test_only_a_deadline_bounds_the_damage(self):
        from repro.core.clock import FakeClock
        from repro.core.multiquery import MultiQueryEngine
        from repro.core.serving import ServingPolicy

        clock = FakeClock()
        stream, _fault = FaultInjector(0, clock=clock).slow_source(
            base(), delay=1.0
        )
        engine = MultiQueryEngine({"q": "_*.b"})
        list(
            engine.serve(
                stream, policy=ServingPolicy(stream_deadline=3.0), clock=clock
            )
        )
        outcome = engine.serving.outcomes["q"]
        assert outcome.code == "DEADLINE_STREAM"


class TestEntityBomb:
    def test_is_adversarial_not_runtime(self):
        from repro.xmlstream import ADVERSARIAL_FAULT_KINDS

        assert "entity_bomb" in ADVERSARIAL_FAULT_KINDS
        assert "entity_bomb" not in FAULT_KINDS

    def test_small_input_huge_amplification(self):
        text, fault = FaultInjector(0).entity_bomb(depth=6, fanout=10)
        assert fault.kind == "entity_bomb"
        assert len(text) < 2_000
        assert "10^6" in fault.detail

    def test_blocked_by_parser_limits(self):
        from repro.errors import InputLimitError
        from repro.xmlstream.parser import ParserLimits, parse_string

        text, _fault = FaultInjector(0).entity_bomb()
        with pytest.raises(InputLimitError) as excinfo:
            list(parse_string(text, limits=ParserLimits.default()))
        assert excinfo.value.code == "INPUT001"

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            FaultInjector(0).entity_bomb(depth=0)
