"""Unit and property tests for tree materialization."""

import pytest
from hypothesis import given

from repro.errors import StreamError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import Document, Node, build_document

from ..conftest import PAPER_DOC, event_streams


class TestBuildDocument:
    def test_paper_document_shape(self):
        doc = build_document(parse_string(PAPER_DOC))
        assert doc.size == 5
        assert doc.depth == 3
        labels = [node.label for node in doc.nodes()]
        assert labels == ["a", "a", "c", "b", "c"]

    def test_positions_are_document_order(self):
        doc = build_document(parse_string(PAPER_DOC))
        assert [node.position for node in doc.nodes()] == [1, 2, 3, 4, 5]

    def test_depths(self):
        doc = build_document(parse_string(PAPER_DOC))
        assert [node.depth for node in doc.nodes()] == [1, 2, 3, 2, 2]

    def test_parent_links(self):
        doc = build_document(parse_string("<a><b/></a>"))
        a = doc.root.children[0]
        b = a.children[0]
        assert b.parent is a
        assert a.parent is doc.root

    def test_text_accumulated(self):
        doc = build_document(parse_string("<a>x<b/>y</a>"))
        assert doc.root.children[0].text == "xy"

    def test_root_label_enforced(self):
        with pytest.raises(ValueError):
            Document(Node("a", position=0, depth=0))

    def test_mismatched_raises(self):
        with pytest.raises(StreamError):
            build_document(
                [StartDocument(), StartElement("a"), EndElement("b"), EndDocument()]
            )

    def test_truncated_raises(self):
        with pytest.raises(StreamError):
            build_document([StartDocument(), StartElement("a")])

    def test_element_outside_envelope_raises(self):
        with pytest.raises(StreamError):
            build_document([StartElement("a"), EndElement("a")])


class TestTraversal:
    def test_iter_descendants_document_order(self):
        doc = build_document(parse_string(PAPER_DOC))
        order = [node.position for node in doc.root.iter_descendants()]
        assert order == sorted(order)

    def test_iter_subtree_includes_self(self):
        doc = build_document(parse_string("<a><b/></a>"))
        a = doc.root.children[0]
        assert [n.label for n in a.iter_subtree()] == ["a", "b"]


class TestEventsRoundTrip:
    @given(event_streams())
    def test_stream_to_tree_to_stream(self, events):
        doc = build_document(events)
        assert list(doc.events()) == events

    def test_text_round_trip(self):
        events = [
            StartDocument(),
            StartElement("a"),
            Text("hello"),
            EndElement("a"),
            EndDocument(),
        ]
        assert list(build_document(events).events()) == events
