"""Unit tests for the event model."""

import pytest

from repro.xmlstream.events import (
    DOCUMENT_LABEL,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
    events_from_tags,
    is_document_boundary,
    label_of,
    tags_from_events,
)


class TestEventBasics:
    def test_start_element_carries_label(self):
        assert StartElement("a").label == "a"

    def test_start_element_default_attributes_empty(self):
        assert dict(StartElement("a").attributes) == {}

    def test_attributes_do_not_affect_equality(self):
        assert StartElement("a", {"x": "1"}) == StartElement("a", {"x": "2"})

    def test_events_are_hashable(self):
        assert len({StartElement("a"), StartElement("a"), EndElement("a")}) == 2

    def test_document_boundaries(self):
        assert is_document_boundary(StartDocument())
        assert is_document_boundary(EndDocument())
        assert not is_document_boundary(StartElement("a"))
        assert not is_document_boundary(Text("x"))

    def test_str_forms_match_paper_notation(self):
        assert str(StartDocument()) == "<$>"
        assert str(EndDocument()) == "</$>"
        assert str(StartElement("a")) == "<a>"
        assert str(EndElement("a")) == "</a>"


class TestLabelOf:
    def test_elements(self):
        assert label_of(StartElement("x")) == "x"
        assert label_of(EndElement("x")) == "x"

    def test_boundaries_are_document_label(self):
        assert label_of(StartDocument()) == DOCUMENT_LABEL
        assert label_of(EndDocument()) == DOCUMENT_LABEL

    def test_text_has_no_label(self):
        assert label_of(Text("hello")) is None


class TestTagNotation:
    def test_round_trip_paper_stream(self):
        tags = ["<$>", "<a>", "<c>", "</c>", "</a>", "</$>"]
        assert tags_from_events(events_from_tags(tags)) == tags

    def test_plain_strings_become_text(self):
        events = list(events_from_tags(["<$>", "<a>", "hello", "</a>", "</$>"]))
        assert events[2] == Text("hello")

    def test_empty_input(self):
        assert list(events_from_tags([])) == []
