"""Unit tests for multi-document stream utilities."""

import itertools

import pytest

from repro.errors import StreamError
from repro.xmlstream.documents import concat_documents, count_documents, split_documents
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import parse_string


def doc(label):
    return [StartDocument(), StartElement(label), EndElement(label), EndDocument()]


class TestSplitDocuments:
    def test_splits_into_envelopes(self):
        stream = doc("a") + doc("b") + doc("c")
        documents = [list(d) for d in split_documents(iter(stream))]
        assert len(documents) == 3
        assert documents[0] == doc("a")
        assert documents[2] == doc("c")

    def test_empty_stream(self):
        assert list(split_documents(iter([]))) == []

    def test_lazy_per_document(self):
        stream = iter(doc("a") + doc("b"))
        documents = split_documents(stream)
        first = next(documents)
        assert isinstance(next(first), StartDocument)
        # Abandon `first` partially consumed; the splitter must still
        # position correctly at the next document.
        second = list(next(documents))
        assert second == doc("b")

    def test_junk_between_documents_rejected(self):
        stream = doc("a") + [Text("junk")] + doc("b")
        documents = split_documents(iter(stream))
        list(next(documents))
        with pytest.raises(StreamError):
            next(documents)

    def test_truncated_document_rejected(self):
        stream = doc("a") + [StartDocument(), StartElement("b")]
        documents = split_documents(iter(stream))
        list(next(documents))
        with pytest.raises(StreamError):
            list(next(documents))

    def test_round_trip_with_concat(self):
        stream = doc("a") + doc("b")
        rebuilt = list(
            concat_documents(list(d) for d in split_documents(iter(stream)))
        )
        assert rebuilt == stream


class TestCountDocuments:
    def test_count(self):
        stream = doc("a") + doc("b") + doc("c")
        assert count_documents(iter(stream)) == 3


class TestFilterStream:
    def test_per_document_verdicts(self):
        from repro.core.multiquery import MultiQueryEngine

        stream = (
            list(parse_string("<order><rush/></order>"))
            + list(parse_string("<order/>"))
            + list(parse_string("<note/>"))
        )
        engine = MultiQueryEngine({"rush": "order.rush", "orders": "order"})
        verdicts = list(engine.filter_stream(iter(stream)))
        assert verdicts == [
            {"rush": True, "orders": True},
            {"rush": False, "orders": True},
            {"rush": False, "orders": False},
        ]

    def test_unbounded_document_feed(self):
        """A never-ending feed of documents is filtered incrementally."""
        from repro.core.multiquery import MultiQueryEngine

        def endless():
            for index in itertools.count():
                label = "order" if index % 2 == 0 else "note"
                yield from parse_string(f"<{label}/>")

        engine = MultiQueryEngine({"orders": "order"})
        verdicts = engine.filter_stream(endless())
        first_four = list(itertools.islice(verdicts, 4))
        assert [v["orders"] for v in first_four] == [True, False, True, False]
