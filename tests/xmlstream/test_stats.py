"""Unit tests for stream statistics."""

from hypothesis import given

from repro.xmlstream.events import Text
from repro.xmlstream.parser import parse_string
from repro.xmlstream.stats import StreamStats, measure, observed
from repro.xmlstream.tree import build_document

from ..conftest import PAPER_DOC, event_streams


class TestMeasure:
    def test_paper_document(self):
        stats = measure(parse_string(PAPER_DOC))
        assert stats.messages == 12
        assert stats.elements == 5
        assert stats.max_depth == 3
        assert stats.distinct_labels == 3

    def test_text_bytes(self):
        stats = measure(parse_string("<a>hello</a>"))
        assert stats.text_bytes == 5

    def test_empty_document(self):
        stats = measure(parse_string("<a/>"))
        assert stats.elements == 1
        assert stats.max_depth == 1

    @given(event_streams())
    def test_depth_matches_tree_depth(self, events):
        assert measure(events).max_depth == build_document(events).depth

    @given(event_streams())
    def test_elements_match_tree_size(self, events):
        assert measure(events).elements == build_document(events).size


class TestObserved:
    def test_passthrough_and_accumulate(self):
        stats = StreamStats()
        events = list(parse_string(PAPER_DOC))
        passed = list(observed(iter(events), stats))
        assert passed == events
        assert stats.messages == len(events)

    def test_incremental_reading(self):
        stats = StreamStats()
        stream = observed(parse_string(PAPER_DOC), stats)
        next(stream)  # <$>
        next(stream)  # <a>
        assert stats.messages == 2
        assert stats.elements == 1
