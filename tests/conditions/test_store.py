"""Unit tests for the condition store (determination protocol)."""

import pytest

from repro.conditions.formula import TRUE, Var, conj, disj
from repro.conditions.store import ConditionStore, VariableAllocator
from repro.errors import EngineError


@pytest.fixture
def store():
    return ConditionStore()


def var(store, uid, qualifier="q0"):
    v = Var(uid, qualifier)
    store.register(v)
    return v


class TestPaperProtocol:
    """The simple {c,true} / {c,false}-on-close protocol of Figs. 6-7."""

    def test_unknown_until_evidence(self, store):
        c = var(store, 1)
        assert store.value(c) is None

    def test_contribute_true_determines(self, store):
        c = var(store, 1)
        assert store.contribute(c, TRUE) == [c]
        assert store.value(c) is True

    def test_close_without_evidence_is_false(self, store):
        c = var(store, 1)
        assert store.close(c) == [c]
        assert store.value(c) is False

    def test_first_determination_wins(self, store):
        # VC sends {c,false} at scope end even when VD already proved the
        # variable; the earlier determination must win (Sec. III.10).
        c = var(store, 1)
        store.contribute(c, TRUE)
        assert store.close(c) == []
        assert store.value(c) is True

    def test_late_evidence_ignored(self, store):
        c = var(store, 1)
        store.close(c)
        assert store.contribute(c, TRUE) == []
        assert store.value(c) is False


class TestNestedQualifiers:
    """Conditional contributions {c, residue} for nested qualifiers."""

    def test_contribution_pending_on_inner_variable(self, store):
        outer, inner = var(store, 1, "q0"), var(store, 2, "q1")
        store.contribute(outer, inner)
        assert store.value(outer) is None

    def test_inner_true_cascades(self, store):
        outer, inner = var(store, 1, "q0"), var(store, 2, "q1")
        store.contribute(outer, inner)
        determined = store.contribute(inner, TRUE)
        assert set(determined) == {inner, outer}
        assert store.value(outer) is True

    def test_inner_false_then_close_cascades_false(self, store):
        outer, inner = var(store, 1, "q0"), var(store, 2, "q1")
        store.contribute(outer, inner)
        store.close(inner)  # inner becomes false
        determined = store.close(outer)
        assert outer in determined
        assert store.value(outer) is False

    def test_closing_outer_first_waits_for_inner(self, store):
        outer, inner = var(store, 1, "q0"), var(store, 2, "q1")
        store.contribute(outer, inner)
        assert store.close(outer) == []  # still hinges on inner
        determined = store.contribute(inner, TRUE)
        assert set(determined) == {inner, outer}

    def test_disjunctive_evidence(self, store):
        outer = var(store, 1, "q0")
        i1, i2 = var(store, 2, "q1"), var(store, 3, "q1")
        store.contribute(outer, i1)
        store.contribute(outer, i2)
        store.close(i1)  # first witness dead
        assert store.value(outer) is None
        store.contribute(i2, TRUE)  # second witness proves it
        assert store.value(outer) is True

    def test_deep_cascade(self, store):
        a, b, c = var(store, 1, "q0"), var(store, 2, "q1"), var(store, 3, "q2")
        store.contribute(a, b)
        store.contribute(b, c)
        determined = store.contribute(c, TRUE)
        assert set(determined) == {a, b, c}

    def test_conjunctive_residue(self, store):
        outer = var(store, 1, "q0")
        i1, i2 = var(store, 2, "q1"), var(store, 3, "q2")
        store.contribute(outer, conj(i1, i2))
        store.contribute(i1, TRUE)
        assert store.value(outer) is None
        store.contribute(i2, TRUE)
        assert store.value(outer) is True


class TestEvaluate:
    def test_formula_over_live_variables(self, store):
        c1, c2 = var(store, 1), var(store, 2)
        formula = disj(c1, c2)
        assert store.evaluate(formula) is None
        store.contribute(c2, TRUE)
        assert store.evaluate(formula) is True


class TestAccounting:
    def test_totals(self, store):
        c1, c2 = var(store, 1), var(store, 2)
        store.contribute(c1, TRUE)
        store.close(c2)
        assert store.total_variables == 2
        assert store.total_contributions == 1

    def test_live_tracking(self, store):
        c1 = var(store, 1)
        c2 = var(store, 2)
        assert store.live_variables == 2
        store.close(c1)
        assert store.live_variables == 1
        assert store.peak_live_variables == 2


class TestRelease:
    def test_not_released_while_undetermined(self, store):
        c = var(store, 1)
        assert not store.maybe_release(c)

    def test_not_released_until_closed(self, store):
        c = var(store, 1)
        store.contribute(c, TRUE)
        assert not store.maybe_release(c)

    def test_released_when_closed_and_determined(self, store):
        c = var(store, 1)
        store.contribute(c, TRUE)
        store.close(c)
        assert store.maybe_release(c)
        with pytest.raises(EngineError):
            store.value(c)

    def test_not_released_while_referenced(self, store):
        outer, inner = var(store, 1, "q0"), var(store, 2, "q1")
        store.contribute(outer, inner)
        store.contribute(inner, TRUE)  # determines both (cascade)
        store.close(inner)
        # inner became closed+determined and nothing references it now.
        assert store.maybe_release(inner)

    def test_release_of_unknown_is_noop(self, store):
        assert store.maybe_release(Var(99, "qx"))


class TestErrors:
    def test_double_register(self, store):
        c = var(store, 1)
        with pytest.raises(EngineError):
            store.register(c)

    def test_unknown_variable_access(self, store):
        with pytest.raises(EngineError):
            store.value(Var(42, "q9"))

    def test_unknown_contribute_is_noop(self, store):
        # Late duplicates of messages for released variables (possible
        # when join dedup is ablated away) must be harmless.
        assert store.contribute(Var(42, "q9"), TRUE) == []

    def test_unknown_close_is_noop(self, store):
        assert store.close(Var(42, "q9")) == []


class TestVariableAllocator:
    def test_sequential_uids(self):
        allocator = VariableAllocator()
        a, b = allocator.fresh("q0"), allocator.fresh("q1")
        assert (a.uid, b.uid) == (1, 2)

    def test_independent_allocators(self):
        assert VariableAllocator().fresh("q").uid == VariableAllocator().fresh("q").uid
