"""Unit and property tests for boolean condition formulas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.conditions.formula import (
    FALSE,
    TRUE,
    And,
    Or,
    Var,
    conj,
    disj,
    dnf,
    evaluate,
    fresh_var,
    restrict,
    substitute,
)

V1, V2, V3 = Var(1, "q0"), Var(2, "q0"), Var(3, "q1")


class TestConstructors:
    def test_conj_identity(self):
        assert conj(TRUE, V1) is V1

    def test_conj_absorbs_false(self):
        assert conj(V1, FALSE, V2) is FALSE

    def test_conj_empty_is_true(self):
        assert conj() is TRUE

    def test_disj_identity(self):
        assert disj(FALSE, V1) is V1

    def test_disj_absorbs_true(self):
        assert disj(V1, TRUE) is TRUE

    def test_disj_empty_is_false(self):
        assert disj() is FALSE

    def test_flattening(self):
        nested = conj(conj(V1, V2), V3)
        assert isinstance(nested, And)
        assert len(nested.terms) == 3

    def test_duplicate_conjunct_elimination(self):
        # Sec. III.4: "a formula contains at most one reference to a
        # condition variable" after normalization.
        assert conj(V1, V1) is V1
        assert disj(V1, V1) is V1

    def test_duplicate_composite_terms(self):
        inner = conj(V1, V2)
        assert disj(inner, inner) == inner


class TestSize:
    def test_constant_size_one(self):
        # The paper: qualifier-free fragment has sigma == 1.
        assert TRUE.size == 1
        assert FALSE.size == 1

    def test_variable_size(self):
        assert V1.size == 1

    def test_composite_size_counts_occurrences(self):
        assert conj(V1, disj(V2, V3)).size == 3


class TestEvaluate:
    def test_constants(self):
        assert evaluate(TRUE, lambda v: None) is True
        assert evaluate(FALSE, lambda v: None) is False

    def test_unknown_variable(self):
        assert evaluate(V1, lambda v: None) is None

    def test_conjunction_short_circuit_false(self):
        # One false conjunct decides the formula despite unknowns — the
        # progressive-drop behaviour of the output transducer.
        formula = conj(V1, V2)
        assert evaluate(formula, lambda v: False if v == V1 else None) is False

    def test_disjunction_short_circuit_true(self):
        formula = disj(V1, V2)
        assert evaluate(formula, lambda v: True if v == V1 else None) is True

    def test_unknown_dominates_otherwise(self):
        formula = conj(V1, V2)
        assert evaluate(formula, lambda v: True if v == V1 else None) is None

    def test_full_assignment(self):
        formula = disj(conj(V1, V2), V3)
        values = {V1: True, V2: False, V3: False}
        assert evaluate(formula, values.get) is False


class TestSubstitute:
    def test_residual_keeps_unknowns(self):
        formula = conj(V1, V2)
        residual = substitute(formula, lambda v: True if v == V1 else None)
        assert residual == V2

    def test_decided_formulas_become_constants(self):
        assert substitute(conj(V1, V2), lambda v: True) is TRUE
        assert substitute(disj(V1, V2), lambda v: False) is FALSE

    def test_no_knowledge_is_identity(self):
        formula = disj(conj(V1, V2), V3)
        assert substitute(formula, lambda v: None) == formula


class TestRestrict:
    def test_keeps_matching_variables(self):
        formula = conj(V1, V3)
        assert restrict(formula, lambda v: v.qualifier == "q1") == V3

    def test_all_foreign_conjunction_is_true(self):
        assert restrict(conj(V1, V2), lambda v: False) is TRUE

    def test_disjunction_of_restrictions(self):
        formula = disj(conj(V1, V3), V2)
        restricted = restrict(formula, lambda v: v.qualifier == "q0")
        assert restricted == disj(V1, V2)


class TestDnf:
    def test_true_is_single_empty_conjunct(self):
        assert dnf(TRUE) == [frozenset()]

    def test_false_is_no_conjuncts(self):
        assert dnf(FALSE) == []

    def test_variable(self):
        assert dnf(V1) == [frozenset((V1,))]

    def test_disjunction_of_conjunctions(self):
        formula = disj(conj(V1, V3), V2)
        assert set(map(frozenset, dnf(formula))) == {
            frozenset((V1, V3)),
            frozenset((V2,)),
        }

    def test_distribution(self):
        formula = conj(disj(V1, V2), V3)
        assert set(map(frozenset, dnf(formula))) == {
            frozenset((V1, V3)),
            frozenset((V2, V3)),
        }


class TestFreshVar:
    def test_unique_uids(self):
        a, b = fresh_var("q0"), fresh_var("q0")
        assert a != b

    def test_qualifier_recorded(self):
        assert fresh_var("q7").qualifier == "q7"


# ---------------------------------------------------------------------------
# property tests

_vars = st.sampled_from([V1, V2, V3])


@st.composite
def formulas(draw, depth=0):
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        return draw(_vars)
    left = draw(formulas(depth=depth + 1))
    right = draw(formulas(depth=depth + 1))
    return conj(left, right) if draw(st.booleans()) else disj(left, right)


@st.composite
def assignments(draw):
    return {
        V1: draw(st.booleans()),
        V2: draw(st.booleans()),
        V3: draw(st.booleans()),
    }


class TestProperties:
    @given(formulas(), assignments())
    def test_substitute_agrees_with_evaluate(self, formula, values):
        assert substitute(formula, values.get) is (
            TRUE if evaluate(formula, values.get) else FALSE
        )

    @given(formulas(), assignments())
    def test_partial_substitution_preserves_meaning(self, formula, values):
        partial = {V1: values[V1]}
        residual = substitute(formula, partial.get)
        assert evaluate(residual, values.get) == evaluate(formula, values.get)

    @given(formulas(), assignments())
    def test_dnf_preserves_meaning(self, formula, values):
        expected = evaluate(formula, values.get)
        via_dnf = any(all(values[v] for v in conjunct) for conjunct in dnf(formula))
        assert via_dnf == expected

    @given(formulas())
    def test_normalization_no_duplicate_vars_per_level(self, formula):
        if isinstance(formula, (And, Or)):
            assert len(formula.terms) == len(set(formula.terms))


class TestAlgebraicLaws:
    """Boolean-algebra laws over the three-valued evaluation."""

    @given(formulas(), formulas(), assignments())
    def test_conj_commutative(self, f, g, values):
        assert evaluate(conj(f, g), values.get) == evaluate(conj(g, f), values.get)

    @given(formulas(), formulas(), assignments())
    def test_disj_commutative(self, f, g, values):
        assert evaluate(disj(f, g), values.get) == evaluate(disj(g, f), values.get)

    @given(formulas(), formulas(), formulas(), assignments())
    def test_conj_associative(self, f, g, h, values):
        left = evaluate(conj(conj(f, g), h), values.get)
        right = evaluate(conj(f, conj(g, h)), values.get)
        assert left == right

    @given(formulas(), assignments())
    def test_idempotence(self, f, values):
        assert conj(f, f) == f
        assert disj(f, f) == f

    @given(formulas(), formulas(), formulas(), assignments())
    def test_distribution_via_dnf(self, f, g, h, values):
        formula = conj(f, disj(g, h))
        expanded = disj(conj(f, g), conj(f, h))
        assert evaluate(formula, values.get) == evaluate(expanded, values.get)

    @given(formulas())
    def test_constants_absorb(self, f):
        assert conj(f, TRUE) == f
        assert disj(f, FALSE) == f
        assert conj(f, FALSE) is FALSE
        assert disj(f, TRUE) is TRUE

    @given(formulas(), assignments())
    def test_restrict_to_all_is_identity(self, f, values):
        assert restrict(f, lambda v: True) == f

    @given(formulas())
    def test_restrict_to_none_is_true(self, f):
        assert restrict(f, lambda v: False) is TRUE

    @given(formulas(), assignments())
    def test_three_valued_monotonicity(self, f, values):
        """Adding knowledge never flips a determined verdict."""
        partial = {V1: values[V1]}
        before = evaluate(f, partial.get)
        after = evaluate(f, values.get)
        if before is not None:
            assert after == before
