"""Unit and property tests for schema-aware query satisfiability."""

import random

import pytest

from repro.dtd import SchemaAnalyzer, parse_dtd
from repro.rpeq.parser import parse

SITE_DTD = """
<!DOCTYPE site [
  <!ELEMENT site (regions, people?)>
  <!ELEMENT regions (item*)>
  <!ELEMENT item (name, mailbox?)>
  <!ELEMENT mailbox (mail*)>
  <!ELEMENT mail (#PCDATA)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT people EMPTY>
]>
"""


@pytest.fixture
def analyzer():
    return SchemaAnalyzer(parse_dtd(SITE_DTD))


def sat(analyzer, query):
    return analyzer.query_is_satisfiable(parse(query))


class TestSatisfiability:
    def test_valid_paths_live(self, analyzer):
        assert sat(analyzer, "site.regions.item.name")
        assert sat(analyzer, "_*.item")
        assert sat(analyzer, "_*.mail")

    def test_wrong_root_dead(self, analyzer):
        assert not sat(analyzer, "regions.item")

    def test_undeclared_label_dead(self, analyzer):
        assert not sat(analyzer, "_*.auction")

    def test_impossible_nesting_dead(self, analyzer):
        # name can never contain item, whatever the document.
        assert not sat(analyzer, "_*.name.item")
        # people is EMPTY: nothing below it.
        assert not sat(analyzer, "_*.people._")

    def test_closure_through_hierarchy(self, analyzer):
        assert sat(analyzer, "site._+")
        assert not sat(analyzer, "mail+")

    def test_union_live_if_any_branch_lives(self, analyzer):
        assert sat(analyzer, "site.(regions|bogus)")
        assert not sat(analyzer, "site.(nope|bogus)")

    def test_optional_step(self, analyzer):
        assert sat(analyzer, "site.people?")


class TestQualifierConditions:
    def test_satisfiable_qualifier_live(self, analyzer):
        assert sat(analyzer, "_*.item[mailbox].name")

    def test_dead_qualifier_kills_query(self, analyzer):
        assert not sat(analyzer, "_*.item[auction].name")

    def test_qualifier_checked_at_right_type(self, analyzer):
        # mailbox exists under item, but regions never has one.
        assert not sat(analyzer, "_*.regions[mailbox]")

    def test_nested_qualifiers(self, analyzer):
        assert sat(analyzer, "_*.item[mailbox[mail]]")
        assert not sat(analyzer, "_*.item[mailbox[name]]")


class TestConservativeness:
    def test_axes_assumed_satisfiable(self, analyzer):
        assert sat(analyzer, "_*.name.following::item")

    def test_ordering_overapproximation(self):
        # (a, b) forbids b before a; the label graph cannot see that, so
        # the analysis (soundly) keeps this query alive.
        analyzer = SchemaAnalyzer(parse_dtd(
            "<!ELEMENT r (a, b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>"
        ))
        assert analyzer.query_is_satisfiable(parse("r.b"))

    def test_recursive_dtd_terminates(self):
        analyzer = SchemaAnalyzer(parse_dtd(
            "<!ELEMENT tree (leaf | tree)*> <!ELEMENT leaf EMPTY>"
        ))
        assert analyzer.query_is_satisfiable(parse("tree.tree.tree.leaf"))
        assert not analyzer.query_is_satisfiable(parse("tree.leaf.tree"))

    def test_recursive_qualifier_terminates(self):
        analyzer = SchemaAnalyzer(parse_dtd(
            "<!ELEMENT tree (tree*)>"
        ))
        assert analyzer.query_is_satisfiable(parse("tree[tree]"))


class TestPrune:
    def test_prune_mapping(self, analyzer):
        verdicts = analyzer.prune(
            {"live": "_*.item.name", "dead": "_*.people.name"}
        )
        assert verdicts == {"live": True, "dead": False}


class TestSoundness:
    """Property: 'unsatisfiable' verdicts are never wrong.

    Generate random DTD-valid documents and random queries; whenever the
    analyzer says dead, the evaluator must find nothing.
    """

    def test_never_false_negative(self, analyzer, rng):
        from repro import SpexEngine
        from repro.rpeq import GeneratorConfig, random_rpeq
        from repro.xmlstream.events import (
            EndDocument,
            EndElement,
            StartDocument,
            StartElement,
        )

        def random_site(rng: random.Random):
            events = [StartDocument(), StartElement("site"), StartElement("regions")]
            for _ in range(rng.randint(0, 4)):
                events.append(StartElement("item"))
                events += [StartElement("name"), EndElement("name")]
                if rng.random() < 0.5:
                    events.append(StartElement("mailbox"))
                    for _ in range(rng.randint(0, 2)):
                        events += [StartElement("mail"), EndElement("mail")]
                    events.append(EndElement("mailbox"))
                events.append(EndElement("item"))
            events.append(EndElement("regions"))
            if rng.random() < 0.5:
                events += [StartElement("people"), EndElement("people")]
            events += [EndElement("site"), EndDocument()]
            return events

        config = GeneratorConfig(
            labels=("site", "regions", "item", "name", "mailbox", "mail", "x"),
            max_depth=3,
        )
        for _ in range(60):
            expr = random_rpeq(rng, config)
            events = random_site(rng)
            if not analyzer.query_is_satisfiable(expr):
                matches = SpexEngine(expr, collect_events=False).positions(
                    iter(events)
                )
                assert matches == [], expr


class TestReachability:
    def test_all_reachable_in_site_dtd(self, analyzer):
        assert analyzer.dead_types() == set()

    def test_orphan_declaration_detected(self):
        analyzer = SchemaAnalyzer(parse_dtd(
            "<!ELEMENT root (a*)> <!ELEMENT a EMPTY> <!ELEMENT orphan (a)>"
        ))
        assert analyzer.dead_types() == {"orphan"}
        assert analyzer.reachable_types() == {"root", "a"}

    def test_queries_on_dead_types_unsatisfiable(self):
        analyzer = SchemaAnalyzer(parse_dtd(
            "<!ELEMENT root (a*)> <!ELEMENT a EMPTY> <!ELEMENT orphan (a)>"
        ))
        assert not analyzer.query_is_satisfiable(parse("_*.orphan"))
        assert not analyzer.query_is_satisfiable(parse("_*.orphan.a"))
