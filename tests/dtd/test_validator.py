"""Unit and integration tests for the streaming DTD validator."""

import pytest

from repro.dtd import DtdValidationError, DtdValidator, parse_dtd
from repro.xmlstream.parser import parse_string

SITE_DTD = """
<!DOCTYPE site [
  <!ELEMENT site (regions, people?)>
  <!ELEMENT regions (item*)>
  <!ELEMENT item (name, (payment | barter)?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT payment EMPTY>
  <!ELEMENT barter EMPTY>
  <!ELEMENT people ANY>
]>
"""


@pytest.fixture
def validator():
    return DtdValidator(parse_dtd(SITE_DTD))


def check(validator, xml):
    return validator.is_valid(parse_string(xml))


class TestAcceptance:
    def test_minimal_valid(self, validator):
        assert check(validator, "<site><regions/></site>")

    def test_full_valid(self, validator):
        assert check(
            validator,
            "<site><regions><item><name>x</name><payment/></item>"
            "<item><name>y</name><barter/></item></regions>"
            "<people><name>p</name>text</people></site>",
        )

    def test_optional_group_absent(self, validator):
        assert check(validator, "<site><regions><item><name>n</name></item></regions></site>")

    def test_any_allows_declared_children_and_text(self, validator):
        # XML's ANY: character data plus any *declared* element type.
        assert check(validator, "<site><regions/><people>t<payment/><name>n</name></people></site>")

    def test_any_still_requires_declared_children(self, validator):
        assert not check(validator, "<site><regions/><people><x/></people></site>")


class TestRejection:
    def test_wrong_root(self, validator):
        assert not check(validator, "<regions/>")

    def test_missing_required_child(self, validator):
        assert not check(validator, "<site><regions><item/></regions></site>")

    def test_wrong_order(self, validator):
        assert not check(
            validator,
            "<site><regions><item><payment/><name>n</name></item></regions></site>",
        )

    def test_both_choice_branches(self, validator):
        assert not check(
            validator,
            "<site><regions><item><name>n</name><payment/><barter/></item></regions></site>",
        )

    def test_empty_with_children(self, validator):
        assert not check(
            validator,
            "<site><regions><item><name>n</name><payment><x/></payment></item></regions></site>",
        )

    def test_empty_with_text(self, validator):
        assert not check(
            validator,
            "<site><regions><item><name>n</name><payment>hi</payment></item></regions></site>",
        )

    def test_text_in_element_content(self, validator):
        assert not check(validator, "<site><regions>words</regions></site>")

    def test_undeclared_element_strict(self, validator):
        assert not check(validator, "<site><regions><weird/></regions></site>")

    def test_pcdata_element_with_child(self, validator):
        assert not check(
            validator,
            "<site><regions><item><name><b/></name></item></regions></site>",
        )


class TestLenientMode:
    def test_undeclared_tolerated(self):
        validator = DtdValidator(parse_dtd(SITE_DTD), strict_undeclared=False)
        assert validator.is_valid(
            parse_string("<site><regions><item><name>n</name></item></regions></site>")
        )
        # Undeclared children still fail inside declared element content.
        assert not validator.is_valid(
            parse_string("<site><regions><weird/></regions></site>")
        )


class TestStreamingBehaviour:
    def test_error_carries_explanation(self, validator):
        with pytest.raises(DtdValidationError, match="content model"):
            for _ in validator.stream(
                parse_string("<site><regions><item><payment/></item></regions></site>")
            ):
                pass

    def test_failure_is_incremental(self, validator):
        """The error is raised at the offending event, not at the end."""
        events = parse_string(
            "<site><bogus/>" + "<regions/>" * 1 + "</site>"
        )
        stream = validator.stream(events)
        consumed = 0
        with pytest.raises(DtdValidationError):
            for _ in stream:
                consumed += 1
        assert consumed <= 2  # <$>, <site> — fails at <bogus>

    def test_composes_with_engine(self, validator):
        from repro import SpexEngine

        xml = (
            "<site><regions><item><name>n</name><payment/></item>"
            "<item><name>m</name></item></regions></site>"
        )
        engine = SpexEngine("_*.item[payment].name", collect_events=False)
        matches = list(engine.run(validator.stream(parse_string(xml))))
        assert [m.position for m in matches] == [4]

    def test_repeated_use(self, validator):
        assert check(validator, "<site><regions/></site>")
        assert check(validator, "<site><regions/></site>")
        assert not check(validator, "<nope/>")
        assert check(validator, "<site><regions/></site>")


class TestDepthBoundedMemory:
    def test_recursive_dtd_deep_document(self):
        """Recursive DTDs validate arbitrarily deep documents — the PDA
        case of the Segoufin/Vianu analysis."""
        validator = DtdValidator(parse_dtd("<!ELEMENT tree (tree*)>"))
        depth = 500
        xml = "<tree>" * depth + "</tree>" * depth
        assert validator.is_valid(parse_string(xml))

    def test_dfa_cache_is_per_element_model(self):
        dtd = parse_dtd("<!ELEMENT a (b*)> <!ELEMENT b EMPTY>")
        validator = DtdValidator(dtd)
        big = "<a>" + "<b/>" * 1000 + "</a>"
        assert validator.is_valid(parse_string(big))
        # Lazy DFA: only a constant number of subset states materialized.
        automaton = validator._automata["a"]
        assert len(automaton._step_cache) <= 3
