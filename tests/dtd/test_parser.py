"""Unit tests for the DTD parser."""

import pytest

from repro.dtd.model import Choice, Optional_, Repeat, Seq, Sym
from repro.dtd.parser import parse_dtd
from repro.errors import QuerySyntaxError


class TestElementDeclarations:
    def test_sequence(self):
        dtd = parse_dtd("<!ELEMENT a (b, c)>")
        assert dtd.elements["a"].model == Seq((Sym("b"), Sym("c")))

    def test_choice(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)>")
        assert dtd.elements["a"].model == Choice((Sym("b"), Sym("c")))

    def test_repetitions(self):
        dtd = parse_dtd("<!ELEMENT a (b*, c+, d?)>")
        model = dtd.elements["a"].model
        assert model == Seq(
            (Repeat(Sym("b")), Repeat(Sym("c"), at_least_one=True), Optional_(Sym("d")))
        )

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT a ((b | c)*, d)>")
        model = dtd.elements["a"].model
        assert model == Seq((Repeat(Choice((Sym("b"), Sym("c")))), Sym("d")))

    def test_group_suffix_on_whole_model(self):
        dtd = parse_dtd("<!ELEMENT a (b, c)+>")
        assert dtd.elements["a"].model == Repeat(
            Seq((Sym("b"), Sym("c"))), at_least_one=True
        )

    def test_empty(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        decl = dtd.elements["a"]
        assert decl.empty and not decl.mixed and decl.model is None

    def test_any(self):
        decl = parse_dtd("<!ELEMENT a ANY>").elements["a"]
        assert decl.mixed and decl.model is None and not decl.empty

    def test_pcdata(self):
        decl = parse_dtd("<!ELEMENT a (#PCDATA)>").elements["a"]
        assert decl.mixed and decl.model == Seq(())

    def test_mixed_content(self):
        decl = parse_dtd("<!ELEMENT a (#PCDATA | b | c)*>").elements["a"]
        assert decl.mixed
        assert decl.model == Repeat(Choice((Sym("b"), Sym("c"))))


class TestDoctypeWrapper:
    DTD = """
    <!DOCTYPE root [
      <!-- a comment -->
      <!ELEMENT root (child*)>
      <!ELEMENT child EMPTY>
      <!ATTLIST child id CDATA #REQUIRED>
      <!ENTITY junk "ignored">
    ]>
    """

    def test_root_from_doctype(self):
        assert parse_dtd(self.DTD).root == "root"

    def test_attlist_and_entity_skipped(self):
        dtd = parse_dtd(self.DTD)
        assert set(dtd.elements) == {"root", "child"}

    def test_explicit_root_override(self):
        assert parse_dtd(self.DTD, root="child").root == "child"

    def test_bare_declarations_default_root(self):
        dtd = parse_dtd("<!ELEMENT top (x?)> <!ELEMENT x EMPTY>")
        assert dtd.root == "top"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",                                  # nothing declared
            "<!ELEMENT a (b,>",                  # malformed group
            "<!ELEMENT a>",                      # no model
            "<!ELEMENT a (b)> <!ELEMENT a (c)>", # duplicate
            "<!WRONG a (b)>",                    # unknown declaration
            "<!-- unterminated",                 # comment
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_dtd(bad)
