"""Unit tests for DTD content models and DTD-level analysis."""

from repro.dtd.model import Choice, Dtd, ElementDecl, Optional_, Repeat, Seq, Sym


class TestModelBasics:
    def test_symbols_collected(self):
        model = Seq((Sym("a"), Choice((Sym("b"), Repeat(Sym("c")))), Optional_(Sym("d"))))
        assert model.symbols() == {"a", "b", "c", "d"}

    def test_str_round_readable(self):
        model = Seq((Sym("a"), Optional_(Sym("b"))))
        assert str(model) == "(a, b?)"


def _dtd(**models):
    dtd = Dtd(root=next(iter(models)))
    for name, model in models.items():
        dtd.elements[name] = ElementDecl(name, model=model)
    return dtd


class TestRecursionAnalysis:
    def test_non_recursive(self):
        dtd = _dtd(a=Seq((Sym("b"),)), b=Seq((Sym("c"),)), c=Seq(()))
        assert not dtd.is_recursive()
        assert dtd.depth_bound() == 3

    def test_direct_recursion(self):
        dtd = _dtd(tree=Repeat(Sym("tree")))
        assert dtd.is_recursive()
        assert dtd.depth_bound() is None

    def test_mutual_recursion(self):
        dtd = _dtd(a=Seq((Sym("b"),)), b=Optional_(Sym("a")))
        assert dtd.is_recursive()

    def test_diamond_is_not_recursion(self):
        dtd = _dtd(
            a=Seq((Sym("b"), Sym("c"))),
            b=Seq((Sym("d"),)),
            c=Seq((Sym("d"),)),
            d=Seq(()),
        )
        assert not dtd.is_recursive()
        assert dtd.depth_bound() == 3

    def test_depth_bound_single_element(self):
        dtd = _dtd(a=Seq(()))
        assert dtd.depth_bound() == 1
