"""Unit and property tests for schema-driven document generation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dtd import DocumentGenerator, DtdValidator, generate_document, parse_dtd
from repro.errors import ReproError
from repro.xmlstream.stats import measure
from repro.xmlstream.validate import is_well_formed

SITE_DTD = """
<!DOCTYPE site [
  <!ELEMENT site (regions, people?)>
  <!ELEMENT regions (item*)>
  <!ELEMENT item (name, (payment | barter)?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT payment EMPTY>
  <!ELEMENT barter EMPTY>
  <!ELEMENT people (name+)>
]>
"""


class TestGeneration:
    def test_well_formed(self):
        assert is_well_formed(generate_document(parse_dtd(SITE_DTD), seed=1))

    def test_deterministic_per_seed(self):
        dtd = parse_dtd(SITE_DTD)
        assert list(generate_document(dtd, seed=4)) == list(
            generate_document(dtd, seed=4)
        )

    def test_seeds_differ(self):
        dtd = parse_dtd(SITE_DTD)
        samples = {tuple(generate_document(dtd, seed=s)) for s in range(12)}
        assert len(samples) > 3

    def test_root_matches_dtd(self):
        events = list(generate_document(parse_dtd(SITE_DTD), seed=1))
        assert events[1].label == "site"

    def test_recursive_dtd_respects_depth_budget(self):
        dtd = parse_dtd("<!ELEMENT tree (tree*, leaf?)> <!ELEMENT leaf EMPTY>")
        generator = DocumentGenerator(dtd, seed=3, max_depth=6)
        stats = measure(generator.events())
        assert stats.max_depth <= 8

    def test_mandatory_recursion_rejected(self):
        with pytest.raises(ReproError, match="mandatory recursion"):
            DocumentGenerator(parse_dtd("<!ELEMENT tree (tree)>"))

    def test_undeclared_reference_rejected(self):
        with pytest.raises(ReproError, match="undeclared"):
            DocumentGenerator(parse_dtd("<!ELEMENT a (ghost)>"))

    def test_mutual_recursion_with_escape(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b | stop)> <!ELEMENT b (a)> <!ELEMENT stop EMPTY>"
        )
        assert is_well_formed(DocumentGenerator(dtd, seed=9, max_depth=8).events())


class TestRoundTripProperty:
    """The defining property: generated documents always validate."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_documents_validate(self, seed):
        dtd = parse_dtd(SITE_DTD)
        validator = DtdValidator(dtd)
        assert validator.is_valid(generate_document(dtd, seed=seed))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_recursive_dtd_round_trip(self, seed):
        dtd = parse_dtd(
            "<!ELEMENT tree (tree*, leaf?)> <!ELEMENT leaf (#PCDATA)>"
        )
        validator = DtdValidator(dtd)
        generator = DocumentGenerator(dtd, seed=seed, max_depth=7)
        assert validator.is_valid(generator.events())

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_satisfiable_queries_hold_on_some_generated_doc(self, seed):
        """Schema analysis consistency: run a schema-live query on a
        generated document; matches, when any, are for declared labels."""
        from repro import SpexEngine

        dtd = parse_dtd(SITE_DTD)
        events = list(generate_document(dtd, seed=seed))
        matches = SpexEngine("_*.item.name").evaluate(iter(events))
        for match in matches:
            assert match.label == "name"
