"""Differential test: streaming validator vs. an re-based reference.

The reference validator materializes the tree and checks every node's
child-label word against the content model compiled to a ``re`` pattern
— a completely independent mechanism from the streaming lazy-DFA stack.
Random mutations of schema-generated documents exercise both accept and
reject paths.
"""

import random
import re

import pytest

from repro.dtd import DocumentGenerator, DtdValidator, parse_dtd
from repro.dtd.model import Choice, Dtd, Model, Optional_, Repeat, Seq, Sym
from repro.xmlstream.events import EndElement, StartElement
from repro.xmlstream.tree import build_document

SITE_DTD = parse_dtd(
    """
    <!DOCTYPE site [
      <!ELEMENT site (regions, people?)>
      <!ELEMENT regions (item*)>
      <!ELEMENT item (name, (payment | barter)?)>
      <!ELEMENT name (#PCDATA)>
      <!ELEMENT payment EMPTY>
      <!ELEMENT barter EMPTY>
      <!ELEMENT people (name+)>
    ]>
    """
)


def _model_regex(model: Model) -> str:
    """Compile a content model to a regex over ' '-terminated labels."""
    if isinstance(model, Sym):
        return f"(?:{re.escape(model.name)} )"
    if isinstance(model, Seq):
        return "".join(_model_regex(part) for part in model.parts)
    if isinstance(model, Choice):
        if not model.options:
            return "(?!x)x"  # matches nothing
        return "(?:" + "|".join(_model_regex(o) for o in model.options) + ")"
    if isinstance(model, Repeat):
        suffix = "+" if model.at_least_one else "*"
        return f"(?:{_model_regex(model.inner)}){suffix}"
    if isinstance(model, Optional_):
        return f"(?:{_model_regex(model.inner)})?"
    raise TypeError(model)


def reference_is_valid(dtd: Dtd, events) -> bool:
    """Tree-walking validator using compiled ``re`` patterns."""
    try:
        document = build_document(iter(events))
    except Exception:
        return False
    if len(document.root.children) != 1:
        return False
    if document.root.children[0].label != dtd.root:
        return False
    patterns = {
        name: re.compile(_model_regex(decl.model) + r"\Z")
        for name, decl in dtd.elements.items()
        if decl.model is not None
    }

    def check(node) -> bool:
        decl = dtd.elements.get(node.label)
        if decl is None:
            return False
        if decl.empty and (node.children or node.text.strip()):
            return False
        if not decl.mixed and not decl.empty and node.text.strip():
            return False
        if decl.model is not None:
            word = "".join(child.label + " " for child in node.children)
            if not patterns[node.label].match(word):
                return False
        elif decl.empty:
            pass
        else:  # ANY: any declared children
            if any(child.label not in dtd.elements for child in node.children):
                return False
        return all(check(child) for child in node.children)

    return check(document.root.children[0])


def _mutate(rng: random.Random, events: list) -> list:
    """Randomly perturb a document (may or may not remain valid)."""
    events = list(events)
    choice = rng.randrange(4)
    element_indices = [
        i for i, e in enumerate(events) if isinstance(e, StartElement)
    ]
    if not element_indices:
        return events
    if choice == 0:
        # Rename an element (start+matching end).
        index = rng.choice(element_indices)
        old = events[index].label
        new = rng.choice(["name", "payment", "item", "bogus"])
        depth = 0
        events[index] = StartElement(new)
        for j in range(index + 1, len(events)):
            if isinstance(events[j], StartElement):
                depth += 1
            elif isinstance(events[j], EndElement):
                if depth == 0 and events[j].label == old:
                    events[j] = EndElement(new)
                    break
                depth -= 1
        return events
    if choice == 1:
        # Duplicate a leaf element.
        index = rng.choice(element_indices)
        if index + 1 < len(events) and isinstance(events[index + 1], EndElement):
            events[index:index] = [events[index], events[index + 1]]
        return events
    if choice == 2:
        # Delete a leaf element.
        index = rng.choice(element_indices)
        if index + 1 < len(events) and isinstance(events[index + 1], EndElement):
            del events[index : index + 2]
        return events
    return events  # no-op mutation


class TestDifferentialValidation:
    def test_generated_and_mutated_documents(self):
        rng = random.Random(20020513)
        validator = DtdValidator(SITE_DTD)
        generator = DocumentGenerator(SITE_DTD, seed=0, max_repeat=3)
        disagreements = []
        for trial in range(150):
            events = list(generator.events(seed=trial))
            if trial % 2:
                events = _mutate(rng, events)
            streaming = validator.is_valid(iter(events))
            reference = reference_is_valid(SITE_DTD, events)
            if streaming != reference:
                disagreements.append((trial, streaming, reference))
        assert not disagreements

    def test_mutations_produce_both_verdicts(self):
        """Sanity: the mutation fuzzer actually exercises reject paths."""
        rng = random.Random(7)
        validator = DtdValidator(SITE_DTD)
        generator = DocumentGenerator(SITE_DTD, seed=0, max_repeat=3)
        verdicts = set()
        for trial in range(100):
            events = _mutate(rng, list(generator.events(seed=trial)))
            verdicts.add(validator.is_valid(iter(events)))
        assert verdicts == {True, False}
