"""Tests for the load harness (small, deterministic scenarios)."""

import pytest

from repro.service.loadgen import (
    LoadConfig,
    load_documents,
    load_subscriptions,
    percentile,
    run_load,
)
from repro.service.server import ServiceConfig
from repro.xmlstream.events import EndDocument, StartDocument


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == 20.0
        assert percentile(values, 100.0) == 40.0
        assert percentile(values, 1.0) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestGenerators:
    def test_documents_deterministic_in_seed(self):
        config = LoadConfig(subscribers=2, documents=3, seed=11)
        assert load_documents(config) == load_documents(config)
        other = LoadConfig(subscribers=2, documents=3, seed=12)
        assert load_documents(config) != load_documents(other)

    def test_documents_are_documents(self):
        for document in load_documents(LoadConfig(subscribers=1, documents=4)):
            assert isinstance(document[0], StartDocument)
            assert isinstance(document[-1], EndDocument)

    def test_subscriptions_partitioned(self):
        config = LoadConfig(subscribers=3, queries_per_subscriber=2)
        per_sub = load_subscriptions(config)
        assert len(per_sub) == 3
        assert all(len(queries) == 2 for queries in per_sub)
        flat = [qid for queries in per_sub for qid, _ in queries]
        assert len(set(flat)) == len(flat)  # no query id collisions

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(subscribers=0)
        with pytest.raises(ValueError):
            LoadConfig(subscribers=2, slow_subscribers=2, disconnect_subscribers=1)


class TestRunLoad:
    def test_small_load_drains_cleanly_with_matches(self):
        report, service = run_load(
            LoadConfig(subscribers=4, documents=6, doc_elements=16, seed=5),
            ServiceConfig(tick=0.005, heartbeat_interval=None),
        )
        assert service is not None
        assert report.drained_cleanly
        assert report.documents_sent == 6
        assert report.events_sent > 0
        assert report.total_matches > 0
        assert len(report.latencies) == report.total_matches
        assert report.p50_latency <= report.p99_latency
        assert report.events_per_second > 0
        assert service.stats.documents_ingested == 6
        assert not service.degraded

    def test_chaos_modes_do_not_break_the_run(self):
        report, service = run_load(
            LoadConfig(
                subscribers=5,
                documents=8,
                doc_elements=16,
                seed=9,
                slow_subscribers=1,
                slow_delay=0.001,
                disconnect_subscribers=1,
                disconnect_after_matches=1,
                abusive_producer=True,
                abusive_documents=3,
            ),
            ServiceConfig(tick=0.005, heartbeat_interval=None),
        )
        assert service is not None
        assert report.drained_cleanly
        # the abusive producer's junk all earned wire errors
        assert report.abusive_rejections >= 3
        # and never shifted the honest stream's indices
        assert service.stats.documents_ingested == 8
        disconnected = [s for s in report.subscribers if s.disconnected]
        assert len(disconnected) == 1
        survivors = [s for s in report.subscribers if not s.disconnected]
        assert any(s.matches for s in survivors)
