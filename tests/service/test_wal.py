"""Write-ahead match log: recovery, commit rule, compaction, idempotence.

The property test at the bottom is the heart of the durability story: a
simulated run writes matches and document markers, the file is cut at an
*arbitrary byte offset* (a crash is not polite enough to tear on record
boundaries), and the recovery + deterministic-regeneration protocol the
server implements must hand the client every sequence number exactly
once — no duplicates, no gaps — for every cut point and every client
ack floor.
"""

import json
import os
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.wal import (
    SessionRecovery,
    WriteAheadLog,
    _canonical,
)

EID = "sess-000001.q"


def _write_run(path, match_counts, acked=0):
    """Simulate one server run: session, matches, markers; return total."""
    wal, _ = WriteAheadLog.open(str(path))
    wal.append_session(
        {"op": "open", "sid": "sess-000001", "tenant": "t", "doc": 0}
    )
    wal.append_session(
        {
            "op": "sub",
            "sid": "sess-000001",
            "qid": "q",
            "eid": EID,
            "query": "_*.a",
            "doc": 0,
        }
    )
    seq = 0
    events = 0
    for index, count in enumerate(match_counts):
        for _ in range(count):
            seq += 1
            wal.append_match(EID, seq, index, {"position": seq, "label": "a"})
        events += count + 2
        wal.append_document(index + 1, events)
    if acked:
        wal.append_session(
            {"op": "ack", "sid": "sess-000001", "qid": "q", "seq": acked}
        )
    wal.close()
    return seq


class TestRecovery:
    def test_empty_log_recovers_empty(self, tmp_path):
        wal, recovery = WriteAheadLog.open(str(tmp_path / "w.wal"))
        assert recovery.committed_documents == 0
        assert recovery.sessions == {}
        assert recovery.matches == {}
        wal.close()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "w.wal"
        total = _write_run(path, [2, 3, 1])
        wal, recovery = WriteAheadLog.open(str(path))
        assert recovery.committed_documents == 3
        assert recovery.seqs == {EID: total}
        session = recovery.sessions["sess-000001"]
        assert session.subscriptions["q"]["engine_id"] == EID
        # nothing acked: the whole committed tail is replayable
        assert [t[0] for t in recovery.matches[EID]] == list(
            range(1, total + 1)
        )
        wal.close()

    def test_uncommitted_matches_dropped(self, tmp_path):
        """Matches after the last document marker are not durable."""
        path = tmp_path / "w.wal"
        _write_run(path, [2, 2])
        wal, _ = WriteAheadLog.open(str(path))
        wal.append_match(EID, 5, 2, {"position": 5, "label": "a"})
        wal.append_match(EID, 6, 2, {"position": 6, "label": "a"})
        wal.close()  # close syncs, but no marker for document 3 exists
        wal, recovery = WriteAheadLog.open(str(path))
        assert recovery.committed_documents == 2
        assert recovery.seqs == {EID: 4}, "uncommitted seqs must not count"
        assert [t[0] for t in recovery.matches[EID]] == [1, 2, 3, 4]
        wal.close()

    def test_ack_floor_prunes_replay_tail(self, tmp_path):
        path = tmp_path / "w.wal"
        total = _write_run(path, [3, 3], acked=4)
        wal, recovery = WriteAheadLog.open(str(path))
        assert [t[0] for t in recovery.matches[EID]] == list(
            range(5, total + 1)
        )
        assert recovery.sessions["sess-000001"].acked == {"q": 4}
        wal.close()

    def test_ownerless_tails_are_dropped(self, tmp_path):
        """Matches of an engine id no session subscribes to are garbage."""
        path = tmp_path / "w.wal"
        wal, _ = WriteAheadLog.open(str(path))
        wal.append_match("ghost.q", 1, 0, {"position": 1, "label": "a"})
        wal.append_document(1, 4)
        wal.close()
        wal, recovery = WriteAheadLog.open(str(path))
        assert recovery.matches == {}
        assert recovery.seqs == {"ghost.q": 1}, "seq counters still pin"
        wal.close()


class TestTornTail:
    def test_torn_final_line_truncated(self, tmp_path):
        path = tmp_path / "w.wal"
        _write_run(path, [2, 2])
        intact = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"t":"m","q":"x","s":9')  # no newline, no CRC
        wal, recovery = WriteAheadLog.open(str(path))
        assert recovery.truncated_bytes > 0
        assert recovery.committed_documents == 2
        assert os.path.getsize(path) == intact, "tail physically removed"
        wal.close()

    def test_corrupt_record_stops_the_scan(self, tmp_path):
        """A flipped byte mid-file invalidates everything after it."""
        path = tmp_path / "w.wal"
        _write_run(path, [1, 1, 1])
        raw = open(path, "rb").read()
        lines = raw.split(b"\n")
        # corrupt the marker of document 2 (line index: sess, sess, m, d, m, d...)
        target = next(
            i for i, ln in enumerate(lines) if b'"n":2' in ln
        )
        lines[target] = lines[target][:-5] + b"XXXXX"
        open(path, "wb").write(b"\n".join(lines))
        wal, recovery = WriteAheadLog.open(str(path))
        assert recovery.committed_documents == 1
        assert recovery.seqs == {EID: 1}
        wal.close()

    def test_crc_catches_semantic_corruption(self, tmp_path):
        """Valid JSON with altered content still fails its CRC."""
        path = tmp_path / "w.wal"
        _write_run(path, [2])
        raw = open(path, "rb").read()
        tampered = raw.replace(b'"s":1', b'"s":7', 1)
        assert tampered != raw
        open(path, "wb").write(tampered)
        wal, recovery = WriteAheadLog.open(str(path))
        # the tampered match record is where trust ends
        assert recovery.seqs.get(EID) is None
        wal.close()


class TestCompaction:
    def test_compaction_preserves_recovery(self, tmp_path):
        path = tmp_path / "w.wal"
        total = _write_run(path, [3, 2, 4], acked=2)
        wal, before = WriteAheadLog.open(str(path))
        size_before = wal.size_bytes
        sessions = {
            token: SessionRecovery(
                token=token,
                tenant=record.tenant,
                subscriptions=record.subscriptions,
                acked=record.acked,
                opened_doc=record.opened_doc,
                last_doc=record.last_doc,
            )
            for token, record in before.sessions.items()
        }
        wal.compact(sessions, committed_events=100)
        assert wal.compactions == 1
        assert wal.size_bytes < size_before
        wal.close()
        wal, after = WriteAheadLog.open(str(path))
        assert after.committed_documents == before.committed_documents
        assert after.seqs == {EID: total}
        assert after.sessions["sess-000001"].acked == {"q": 2}
        assert [t[0] for t in after.matches[EID]] == [
            t[0] for t in before.matches[EID]
        ]
        wal.close()

    def test_appends_continue_after_compaction(self, tmp_path):
        path = tmp_path / "w.wal"
        total = _write_run(path, [2, 2])
        wal, before = WriteAheadLog.open(str(path))
        sessions = {
            token: record for token, record in before.sessions.items()
        }
        wal.compact(sessions, committed_events=50)
        wal.append_match(EID, total + 1, 2, {"position": 9, "label": "a"})
        wal.append_document(3, 60)
        wal.close()
        wal, after = WriteAheadLog.open(str(path))
        assert after.committed_documents == 3
        assert after.seqs == {EID: total + 1}
        wal.close()


class TestFsyncBatching:
    def test_marker_fsync_cadence(self, tmp_path):
        wal, _ = WriteAheadLog.open(str(tmp_path / "w.wal"), 3)
        assert wal.append_document(1, 10) is False
        assert wal.append_document(2, 20) is False
        assert wal.append_document(3, 30) is True, "third marker syncs"
        assert wal.durable_documents == 3
        assert wal.append_document(4, 40) is False
        wal.close()
        assert wal.durable_documents == 4, "close syncs the stragglers"


# ----------------------------------------------------------------------
# the exactly-once property


def _regenerate(recovery, match_counts, floor):
    """The server's resume protocol, distilled to its WAL arithmetic.

    Returns the seqs the reconnecting client observes after the crash:
    the replayed tail above its floor, then regenerated live delivery
    for documents past the committed cut (identical seqs by engine
    determinism), suppressed at or below the floor.
    """
    committed = recovery.committed_documents
    observed = [t[0] for t in recovery.matches.get(EID, []) if t[0] > floor]
    seq = 0
    for index, count in enumerate(match_counts):
        for _ in range(count):
            seq += 1
            if index + 1 <= committed:
                continue  # rebuilt silently: already in the log
            if seq <= floor:
                continue  # the client saw it before the crash
            observed.append(seq)
    return observed


@settings(max_examples=60, deadline=None)
@given(
    match_counts=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=8),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    floor_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_any_cut_any_floor_is_exactly_once(
    tmp_path_factory, match_counts, cut_fraction, floor_fraction
):
    """SIGKILL at any byte offset + resume from any floor ⇒ each seq once.

    The crash may tear mid-record (the scan truncates), lose recently
    appended-but-unsynced suffixes (modelled by the cut itself), and the
    client may have observed any prefix of what was generated.  After
    recovery + producer replay, the union of pre-crash observations (up
    to the floor) and post-crash delivery must be exactly 1..total, each
    once, in order.
    """
    tmp_path = tmp_path_factory.mktemp("wal-prop")
    path = tmp_path / "w.wal"
    total = _write_run(path, match_counts)
    raw = open(path, "rb").read()
    cut = int(len(raw) * cut_fraction)
    open(path, "wb").write(raw[:cut])

    wal, recovery = WriteAheadLog.open(str(path))
    wal.close()
    committed = recovery.committed_documents
    committed_seqs = sum(match_counts[:committed])
    # The client can only have observed seqs that were generated before
    # the crash; any of them may be its floor (it never has to ack).
    floor = int(total * floor_fraction)
    # ...but a floor above what recovery retains models a client that
    # observed uncommitted matches: legal, the regeneration covers it.
    observed_after = _regenerate(recovery, match_counts, floor)
    full = list(range(floor + 1, total + 1))
    assert observed_after == full, (
        f"cut={cut}/{len(raw)} committed={committed} "
        f"committed_seqs={committed_seqs} floor={floor}"
    )
    # replay prefix property: recovering the same file twice is a no-op
    wal2, recovery2 = WriteAheadLog.open(str(path))
    wal2.close()
    assert recovery2.committed_documents == committed
    assert recovery2.seqs == recovery.seqs
    assert recovery2.matches == recovery.matches


def test_canonical_encoding_is_stable():
    """CRC inputs must not depend on dict insertion order."""
    a = _canonical({"b": 1, "a": 2})
    b = _canonical({"a": 2, "b": 1})
    assert a == b
    record = json.loads(a)
    assert zlib.crc32(_canonical(record)) == zlib.crc32(a)
