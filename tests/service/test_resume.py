"""Durable sessions: connection resume, service-native resume, latches.

The differential contract under test: whatever crashes — the client's
connection or the whole server process — the session token survives,
the reconnecting subscriber replays the retained WAL tail above its
floor, the producer re-sends from the engine's resume position, and the
total observed stream is bit-identical to one uninterrupted offline
pass with strictly contiguous sequence numbers.
"""

import asyncio

import pytest

from repro.core.multiquery import MultiQueryEngine
from repro.service.client import ProducerClient, SubscriberClient
from repro.service.loadgen import (
    LoadConfig,
    load_documents,
    load_subscriptions,
    run_load_async,
)
from repro.service.protocol import (
    SVC_SESSION_EXPIRED,
    SVC_SESSION_UNKNOWN,
    SVC_TENANT_BUDGET,
    resume_frame,
)
from repro.service.server import ServiceConfig, SpexService

QUERY = "_*.name"


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 60))


def durable_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        tick=0.005,
        heartbeat_interval=None,
        drain_grace=2.0,
        wal_path=str(tmp_path / "svc.wal"),
        checkpoint_path=str(tmp_path / "svc.ckpt"),
        checkpoint_every_documents=3,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def documents_for(seed, count=8, elements=16):
    return load_documents(
        LoadConfig(documents=count, doc_elements=elements, seed=seed)
    )


def offline_reference(documents):
    """One uninterrupted offline pass — the ground truth stream."""
    engine = MultiQueryEngine({"q1": QUERY})
    flat = [event for document in documents for event in document]
    return [(match.position, match.label) for _qid, match in engine.serve(iter(flat))]


async def consume(client, stream, floors, stop_after=None):
    """Append ``(seq, position, label)`` per match; track the ack floor."""
    async for frame in client.frames():
        if frame.get("type") == "match":
            stream.append(
                (frame["seq"], frame["match"]["position"], frame["match"]["label"])
            )
            qid = frame["query_id"]
            floors[qid] = max(floors.get(qid, 0), frame["seq"])
            if stop_after is not None and len(stream) >= stop_after:
                return "enough"
        elif frame.get("type") == "bye":
            return "bye"
    return "eof"


async def crash(service):
    """Abandon the service the way SIGKILL would: no drain, no flush.

    The WAL handle is left dangling with whatever was fsynced — exactly
    the state a new process finds on disk.
    """
    service._server.close()
    service._engine_task.cancel()
    service._housekeeper.cancel()
    if service._checkpoint_task is not None:
        try:
            await service._checkpoint_task
        except (Exception, asyncio.CancelledError):
            pass
    await asyncio.sleep(0.05)


async def wait_for(predicate, timeout=10.0):
    async with asyncio.timeout(timeout):
        while not predicate():
            await asyncio.sleep(0.01)


def assert_stream_is_offline_pass(stream, offline):
    seqs = [seq for seq, _, _ in stream]
    assert seqs == list(range(1, len(seqs) + 1)), f"seq gaps/dups: {seqs}"
    assert [(p, label) for _, p, label in stream] == offline


class TestConnectionResume:
    def test_connection_crash_then_resume_is_exactly_once(self, tmp_path):
        """Client dies mid-stream; reconnect+resume fills the gap exactly."""

        async def scenario():
            documents = documents_for(seed=5)
            offline = offline_reference(documents)
            assert len(offline) >= 6, "need a non-trivial stream"
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            assert token is not None
            verdict = await sub.subscribe("q1", QUERY)
            assert verdict["type"] == "subscribed"
            producer = await ProducerClient.connect(host, port)
            stream, floors = [], {}
            for document in documents[:4]:
                await producer.send_events(document)
            assert await consume(sub, stream, floors, stop_after=2) == "enough"
            await sub.close()  # abrupt: no unsubscribe, no goodbye
            # the detached session keeps accruing WAL tail while away
            for document in documents[4:]:
                await producer.send_events(document)
            await wait_for(lambda: service.committed_documents == len(documents))
            await producer.close()
            sub2 = await SubscriberClient.connect(host, port, session=token)
            assert sub2.session == token
            resumed = await sub2.resume(floors)
            assert resumed["type"] == "resumed"
            finisher = asyncio.create_task(consume(sub2, stream, floors))
            await service.stop()
            assert await finisher == "bye"
            await sub2.close()
            assert_stream_is_offline_pass(stream, offline)
            assert service.stats.sessions_resumed == 1
            assert service.stats.matches_replayed > 0
            assert not service.degraded

        run(scenario())

    def test_ack_shrinks_the_replay_tail(self, tmp_path):
        """An acked floor is never re-delivered on resume."""

        async def scenario():
            documents = documents_for(seed=9, count=5)
            offline = offline_reference(documents)
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            await sub.subscribe("q1", QUERY)
            producer = await ProducerClient.connect(host, port)
            for document in documents:
                await producer.send_events(document)
            stream, floors = [], {}
            assert await consume(sub, stream, floors, stop_after=3) == "enough"
            await sub.ack("q1", floors["q1"])
            await wait_for(lambda: service.committed_documents == len(documents))
            await sub.close()
            await producer.close()
            sub2 = await SubscriberClient.connect(host, port, session=token)
            await sub2.resume(floors)
            finisher = asyncio.create_task(consume(sub2, stream, floors))
            await service.stop()
            await finisher
            await sub2.close()
            assert_stream_is_offline_pass(stream, offline)

        run(scenario())


    def test_live_matches_during_replay_are_never_lost(self, tmp_path):
        """Live matches that arrive while the WAL tail replays divert to
        the resume buffer; with a one-slot queue every put blocks, so a
        match can land in the buffer *during* the flush — the drain loop
        must re-check emptiness after each put or it is lost forever."""

        async def scenario():
            documents = documents_for(seed=11, count=10)
            offline = offline_reference(documents)
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            await sub.subscribe("q1", QUERY)
            producer = await ProducerClient.connect(host, port)
            for document in documents[:5]:
                await producer.send_events(document)
            await wait_for(lambda: service.committed_documents == 5)
            await sub.close()  # abrupt: the tail accrues unacked
            sub2 = await SubscriberClient.connect(
                host, port, session=token, queue_size=1
            )
            # the resume frame goes out *before* the feeder starts, so
            # every second-half match lands during the replay window and
            # exercises the diversion buffer + drain loop
            await sub2.conn.send(resume_frame({}))

            async def feed():
                for document in documents[5:]:
                    await producer.send_events(document)

            feeder = asyncio.create_task(feed())
            stream, floors = [], {}
            while True:
                frame = await sub2.conn.recv()
                assert frame is not None, "connection died awaiting 'resumed'"
                if frame.get("type") == "resumed":
                    break
                if frame.get("type") == "match":
                    stream.append(
                        (
                            frame["seq"],
                            frame["match"]["position"],
                            frame["match"]["label"],
                        )
                    )
                    qid = frame["query_id"]
                    floors[qid] = max(floors.get(qid, 0), frame["seq"])
            finisher = asyncio.create_task(consume(sub2, stream, floors))
            await feeder
            await wait_for(lambda: service.committed_documents == len(documents))
            await producer.close()
            await service.stop()
            assert await finisher == "bye"
            await sub2.close()
            # replayed tail first, then every live match: the offline
            # pass exactly, no gap where a buffered frame vanished
            assert_stream_is_offline_pass(stream, offline)

        run(scenario())

    def test_ack_past_the_counter_cannot_blackhole(self, tmp_path):
        """An ack beyond the highest assigned sequence is clamped; it
        must not raise the floor above all future matches and silently
        suppress the rest of the subscription."""

        async def scenario():
            documents = documents_for(seed=7, count=6)
            offline = offline_reference(documents)
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            await sub.subscribe("q1", QUERY)
            producer = await ProducerClient.connect(host, port)
            stream, floors = [], {}
            for document in documents[:3]:
                await producer.send_events(document)
            first = len(offline_reference(documents[:3]))
            assert first > 0
            assert await consume(sub, stream, floors, stop_after=first) == "enough"
            await sub.ack("q1", floors["q1"] + 1000)  # buggy client
            for document in documents[3:]:
                await producer.send_events(document)
            await wait_for(lambda: service.committed_documents == len(documents))
            await producer.close()
            finisher = asyncio.create_task(consume(sub, stream, floors))
            await service.stop()
            assert await finisher == "bye"
            await sub.close()
            assert_stream_is_offline_pass(stream, offline)

        run(scenario())

    def test_resume_with_inflated_floors_cannot_blackhole(self, tmp_path):
        """The acked map in a resume frame is clamped the same way."""

        async def scenario():
            documents = documents_for(seed=3, count=6)
            offline = offline_reference(documents)
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            await sub.subscribe("q1", QUERY)
            producer = await ProducerClient.connect(host, port)
            stream, floors = [], {}
            for document in documents[:3]:
                await producer.send_events(document)
            first = len(offline_reference(documents[:3]))
            assert await consume(sub, stream, floors, stop_after=first) == "enough"
            await sub.close()
            sub2 = await SubscriberClient.connect(host, port, session=token)
            await sub2.resume({"q1": floors["q1"] + 1000})  # inflated claim
            for document in documents[3:]:
                await producer.send_events(document)
            await wait_for(lambda: service.committed_documents == len(documents))
            await producer.close()
            finisher = asyncio.create_task(consume(sub2, stream, floors))
            await service.stop()
            assert await finisher == "bye"
            await sub2.close()
            assert_stream_is_offline_pass(stream, offline)

        run(scenario())


class TestServiceNativeResume:
    @pytest.mark.parametrize("crash_after", [2, 5, 7])
    def test_service_crash_then_native_resume_matches_offline(
        self, tmp_path, crash_after
    ):
        """SIGKILL-equivalent at a document boundary; generation two is
        rebuilt checkpoint+WAL → listening server, never the offline path."""

        async def scenario():
            documents = documents_for(seed=11, count=8, elements=20)
            offline = offline_reference(documents)
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            await sub.subscribe("q1", QUERY)
            producer = await ProducerClient.connect(host, port)
            stream, floors = [], {}
            for document in documents[:crash_after]:
                await producer.send_events(document)
            assert await consume(sub, stream, floors, stop_after=2) == "enough"
            await wait_for(lambda: service.committed_documents == crash_after)
            await crash(service)
            await sub.close()
            await producer.close()

            service2 = SpexService(durable_config(tmp_path, resume=True))
            host2, port2 = await service2.start()
            assert service2.resumed or service2.committed_documents >= 0
            assert service2.session_count == 1
            sub2 = await SubscriberClient.connect(host2, port2, session=token)
            assert sub2.session == token
            resumed = await sub2.resume(floors)
            assert resumed["documents"] == crash_after
            producer2 = await ProducerClient.connect(host2, port2)
            replay_from = producer2.conn.welcome["replay_from"]
            assert 1 <= replay_from <= crash_after + 1
            for document in documents[replay_from - 1 :]:
                await producer2.send_events(document)
            await wait_for(
                lambda: service2.committed_documents == len(documents)
            )
            await producer2.close()
            finisher = asyncio.create_task(consume(sub2, stream, floors))
            await service2.stop()
            assert await finisher == "bye"
            await sub2.close()
            assert_stream_is_offline_pass(stream, offline)
            assert service2.stats.sessions_resumed == 1

        run(scenario())

    def test_resume_without_checkpoint_rebuilds_from_wal_alone(self, tmp_path):
        """No checkpoint ever written: the WAL alone replays the pass."""

        async def scenario():
            documents = documents_for(seed=3, count=6)
            offline = offline_reference(documents)
            config = durable_config(
                tmp_path, checkpoint_every_documents=10_000
            )
            service = SpexService(config)
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            await sub.subscribe("q1", QUERY)
            producer = await ProducerClient.connect(host, port)
            stream, floors = [], {}
            for document in documents[:4]:
                await producer.send_events(document)
            assert await consume(sub, stream, floors, stop_after=1) == "enough"
            await wait_for(lambda: service.committed_documents == 4)
            await crash(service)
            await sub.close()
            await producer.close()

            service2 = SpexService(
                durable_config(
                    tmp_path, checkpoint_every_documents=10_000, resume=True
                )
            )
            host2, port2 = await service2.start()
            assert not service2.resumed, "no checkpoint existed to resume"
            assert service2.committed_documents == 4
            sub2 = await SubscriberClient.connect(host2, port2, session=token)
            await sub2.resume(floors)
            producer2 = await ProducerClient.connect(host2, port2)
            assert producer2.conn.welcome["replay_from"] == 1
            for document in documents:
                await producer2.send_events(document)
            await wait_for(
                lambda: service2.committed_documents == len(documents)
            )
            await producer2.close()
            finisher = asyncio.create_task(consume(sub2, stream, floors))
            await service2.stop()
            await finisher
            await sub2.close()
            assert_stream_is_offline_pass(stream, offline)
            assert service2.stats.documents_rebuilt == 4

        run(scenario())


class TestResumedLatches:
    def test_tenant_budget_survives_the_crash(self, tmp_path):
        """Recovered sessions still count against their tenant's budget —
        no free subscriptions via crashing the server."""

        async def scenario():
            service = SpexService(
                durable_config(tmp_path, max_subscriptions_per_tenant=1)
            )
            host, port = await service.start()
            sub = await SubscriberClient.connect(
                host, port, tenant="acme", durable=True
            )
            verdict = await sub.subscribe("q1", QUERY)
            assert verdict["type"] == "subscribed"
            producer = await ProducerClient.connect(host, port)
            await producer.send_events(documents_for(seed=1, count=1)[0])
            await wait_for(lambda: service.committed_documents == 1)
            await crash(service)
            await sub.close()
            await producer.close()

            service2 = SpexService(
                durable_config(
                    tmp_path, max_subscriptions_per_tenant=1, resume=True
                )
            )
            host2, port2 = await service2.start()
            fresh = await SubscriberClient.connect(host2, port2, tenant="acme")
            verdict = await fresh.subscribe("q2", QUERY)
            assert verdict["type"] == "rejected"
            assert verdict["code"] == SVC_TENANT_BUDGET
            await fresh.close()
            await service2.stop()

        run(scenario())

    def test_unknown_session_token_is_refused(self, tmp_path):
        async def scenario():
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            with pytest.raises(ConnectionError, match=SVC_SESSION_UNKNOWN):
                await SubscriberClient.connect(
                    host, port, session="sess-999999"
                )
            await service.stop()

        run(scenario())

    def test_refusal_is_flushed_with_a_one_slot_queue(self, tmp_path):
        """The SVC010 error + bye must reach the client even when its
        chosen queue_size is 1 — the refusal bypasses the queue."""

        async def scenario():
            service = SpexService(durable_config(tmp_path))
            host, port = await service.start()
            with pytest.raises(ConnectionError, match=SVC_SESSION_UNKNOWN):
                await SubscriberClient.connect(
                    host, port, session="sess-nobody", queue_size=1
                )
            await service.stop()

        run(scenario())

    def test_expired_session_token_is_distinguished(self, tmp_path):
        """A token aged out by retention gets SVC011, not SVC010."""

        async def scenario():
            service = SpexService(
                durable_config(
                    tmp_path,
                    session_retention_documents=1,
                    checkpoint_every_documents=2,
                )
            )
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, durable=True)
            token = sub.session
            await sub.subscribe("q1", QUERY)
            await sub.close()  # disconnect: retention clock starts
            producer = await ProducerClient.connect(host, port)
            for document in documents_for(seed=2, count=6):
                await producer.send_events(document)
            await wait_for(lambda: service.stats.sessions_expired == 1)
            await producer.close()
            with pytest.raises(ConnectionError, match=SVC_SESSION_EXPIRED):
                await SubscriberClient.connect(host, port, session=token)
            await service.stop()

        run(scenario())


class TestLoadgenCrashReconnect:
    def test_crash_reconnect_mode_is_lossless(self, tmp_path):
        """The seeded chaos client crashes, resumes, and still observes
        the complete stream with a measured recovery time."""

        async def scenario():
            config = LoadConfig(
                documents=10,
                doc_elements=16,
                subscribers=3,
                queries_per_subscriber=1,
                crash_reconnect_subscribers=2,
                crash_after_matches=2,
                seed=1,
            )
            # offline expectation per subscriber query, over the same corpus
            documents = load_documents(config)
            subscriptions = load_subscriptions(config)
            queries = {
                f"{index}:{qid}": query
                for index, subs in enumerate(subscriptions)
                for qid, query in subs
            }
            flat = [event for document in documents for event in document]
            expected: dict[str, int] = {}
            for owner, _match in MultiQueryEngine(queries).serve(iter(flat)):
                expected[owner] = expected.get(owner, 0) + 1
            report, service = await run_load_async(
                config, durable_config(tmp_path)
            )
            assert service is not None
            assert report.drained_cleanly
            assert report.reconnects == 2  # both chaos clients crash (seed 1)
            assert len(report.recovery_times) == report.reconnects
            assert report.max_recovery > 0.0
            assert service.stats.sessions_resumed == report.reconnects
            for result in report.subscribers:
                for qid in result.queries:
                    want = expected.get(f"{result.index}:{qid}", 0)
                    got = sum(1 for m in result.matches if m[0] == qid)
                    assert got == want, (result.index, qid, got, want)
                if result.reconnects:
                    # exactly-once across the crash: contiguous from 1
                    assert result.seqs == list(range(1, len(result.seqs) + 1))

        run(scenario())
