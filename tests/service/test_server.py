"""Integration tests for the asyncio service (no real sleeping where a
FakeClock can decide the deadline instead)."""

import asyncio
from collections import defaultdict

import pytest

from repro.core.clock import FakeClock
from repro.core.multiquery import MultiQueryEngine
from repro.core.serving import AdmissionPolicy, classify_admission
from repro.rpeq.parser import parse
from repro.service.client import ProducerClient, SubscriberClient
from repro.service.protocol import (
    SVC_BAD_DOCUMENT,
    SVC_DRAINING,
    SVC_HANDSHAKE_TIMEOUT,
    SVC_IDLE_TIMEOUT,
    SVC_OVERFLOW,
    SVC_PROTOCOL,
    SVC_TENANT_BUDGET,
)
from repro.service.server import ServiceConfig, SpexService
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
)


def run(coro):
    """Drive one async test with a global stall guard."""
    return asyncio.run(asyncio.wait_for(coro, 30))


def fast_config(**overrides) -> ServiceConfig:
    defaults = dict(tick=0.005, heartbeat_interval=None, drain_grace=2.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def flat_doc(*labels) -> list:
    """``<$><r><x/><y/>...</r></$>`` — one flat document."""
    events = [StartDocument(), StartElement("r")]
    for label in labels:
        events.append(StartElement(label))
        events.append(EndElement(label))
    events.append(EndElement("r"))
    events.append(EndDocument())
    return events


def offline_matches(queries: dict, documents: list) -> dict:
    """Ground truth: the same documents through an offline pump."""
    engine = MultiQueryEngine(queries)
    pump = engine.start_pump()
    out = defaultdict(list)
    for document in documents:
        for event in document:
            for query_id, match in pump.feed(event):
                out[query_id].append(
                    (pump.serving.documents_seen - 1, match.position, match.label)
                )
    return dict(out)


async def collect_frames(client: SubscriberClient) -> list:
    return [frame async for frame in client.frames()]


def match_tuples(frames: list, query_id: str) -> list:
    return [
        (f["document"], f["match"]["position"], f["match"]["label"])
        for f in frames
        if f.get("type") == "match" and f.get("query_id") == query_id
    ]


class TestPubSub:
    def test_single_subscriber_matches_offline_pass(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            verdict = await sub.subscribe("q", "_*.a")
            assert verdict["type"] == "subscribed"
            assert verdict["status"] == "admit"
            assert verdict["code"] == "ADMIT000"
            documents = [flat_doc("a", "b", "a"), flat_doc("b"), flat_doc("a")]
            producer = await ProducerClient.connect(host, port)
            for document in documents:
                await producer.send_events(document)
            await producer.close()
            frames_task = asyncio.create_task(collect_frames(sub))
            await service.stop()
            frames = await frames_task
            await sub.close()
            expected = offline_matches({"q": "_*.a"}, documents)["q"]
            assert match_tuples(frames, "q") == expected
            assert frames[-1]["type"] == "bye"
            assert frames[-1]["code"] == SVC_DRAINING
            assert not service.degraded
            return service

        service = run(scenario())
        assert service.stats.documents_ingested == 3
        assert service.engine.serving.documents_seen == 3

    def test_two_subscribers_are_independent(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            sub_a = await SubscriberClient.connect(host, port)
            sub_b = await SubscriberClient.connect(host, port)
            await sub_a.subscribe("q", "_*.a")
            await sub_b.subscribe("q", "_*.b")  # same client id, own namespace
            documents = [flat_doc("a", "b"), flat_doc("b", "b")]
            producer = await ProducerClient.connect(host, port)
            for document in documents:
                await producer.send_events(document)
            await producer.close()
            tasks = [
                asyncio.create_task(collect_frames(sub_a)),
                asyncio.create_task(collect_frames(sub_b)),
            ]
            await service.stop()
            frames_a, frames_b = await asyncio.gather(*tasks)
            await sub_a.close()
            await sub_b.close()
            expected = offline_matches(
                {"qa": "_*.a", "qb": "_*.b"}, documents
            )
            assert match_tuples(frames_a, "q") == expected["qa"]
            assert match_tuples(frames_b, "q") == expected["qb"]

        run(scenario())

    def test_mid_stream_subscribe_joins_at_document_boundary(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            early = await SubscriberClient.connect(host, port)
            await early.subscribe("q", "_*.a")
            producer = await ProducerClient.connect(host, port)
            await producer.send_events(flat_doc("a"))
            # wait until the engine actually consumed document 0
            while service.engine.serving.documents_seen < 1:
                await asyncio.sleep(0.01)
            late = await SubscriberClient.connect(host, port)
            await late.subscribe("q", "_*.a")
            await producer.send_events(flat_doc("a", "a"))
            await producer.close()
            tasks = [
                asyncio.create_task(collect_frames(early)),
                asyncio.create_task(collect_frames(late)),
            ]
            await service.stop()
            frames_early, frames_late = await asyncio.gather(*tasks)
            await early.close()
            await late.close()
            assert [d for d, _, _ in match_tuples(frames_early, "q")] == [0, 1, 1]
            # the late join never sees a half-document: only document 1
            assert [d for d, _, _ in match_tuples(frames_late, "q")] == [1, 1]

        run(scenario())

    def test_unsubscribe_is_clean_not_degraded(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            await sub.subscribe("q", "_*.a")
            producer = await ProducerClient.connect(host, port)
            await producer.send_events(flat_doc("a"))
            while service.engine.serving.documents_seen < 1:
                await asyncio.sleep(0.01)
            await sub.unsubscribe("q")
            frames_task = asyncio.create_task(collect_frames(sub))
            await producer.close()
            await service.stop()
            frames = await frames_task
            await sub.close()
            closed = [f for f in frames if f.get("type") == "notice"]
            assert any(f["code"] == "CLOSED" for f in closed)
            assert not service.degraded
            return service

        service = run(scenario())
        outcomes = service.engine.serving.outcomes
        assert any(o.status == "closed" for o in outcomes.values())


class TestAdmission:
    def test_wire_verdicts_mirror_classify_admission(self):
        policy = AdmissionPolicy(reject_sigma=2, depth_bound=3)
        queries = {"plain": "a", "deep": "_*.a[b.c]"}

        async def scenario():
            service = SpexService(fast_config(admission=policy))
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            verdicts = {}
            for query_id, query in queries.items():
                verdicts[query_id] = await sub.subscribe(query_id, query)
            await sub.close()
            await service.stop()
            return verdicts

        verdicts = run(scenario())
        for query_id, query in queries.items():
            decision = classify_admission(parse(query), policy)
            frame = verdicts[query_id]
            if not decision.admitted:
                assert frame["type"] == "rejected"
            else:
                assert frame["type"] == "subscribed"
                assert frame["status"] == (
                    "degraded" if decision.degraded else "admit"
                )
            assert frame["code"] == decision.code

    def test_unparsable_query_rejected_not_fatal(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            bad = await sub.subscribe("bad", "](((")
            good = await sub.subscribe("good", "_*.a")
            await sub.close()
            await service.stop()
            return bad, good

        bad, good = run(scenario())
        assert bad["type"] == "rejected"
        assert bad["code"] == SVC_PROTOCOL
        assert good["type"] == "subscribed"

    def test_tenant_budget(self):
        async def scenario():
            service = SpexService(
                fast_config(max_subscriptions_per_tenant=1)
            )
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, tenant="acme")
            first = await sub.subscribe("q1", "_*.a")
            second = await sub.subscribe("q2", "_*.b")
            other = await SubscriberClient.connect(host, port, tenant="zen")
            third = await other.subscribe("q1", "_*.a")
            await sub.close()
            await other.close()
            await service.stop()
            return first, second, third

        first, second, third = run(scenario())
        assert first["type"] == "subscribed"
        assert second["type"] == "rejected"
        assert second["code"] == SVC_TENANT_BUDGET
        assert third["type"] == "subscribed"  # budgets are per tenant

    def test_tenant_slot_frees_on_unsubscribe(self):
        async def scenario():
            service = SpexService(
                fast_config(max_subscriptions_per_tenant=1)
            )
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port, tenant="acme")
            assert (await sub.subscribe("q1", "_*.a"))["type"] == "subscribed"
            await sub.unsubscribe("q1")
            # drain the CLOSED notice before the next verdict
            retry = await sub.subscribe("q2", "_*.b")
            await sub.close()
            await service.stop()
            return retry

        assert run(scenario())["type"] == "subscribed"


class TestProducerFaultDomain:
    def test_malformed_document_rejected_stream_continues(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            await sub.subscribe("q", "_*.a")
            producer = await ProducerClient.connect(host, port)
            bad = [
                StartDocument(),
                StartElement("a"),
                EndElement("b"),  # mismatched
                EndDocument(),
            ]
            await producer.send_events(bad)
            error = await producer.conn.recv()
            assert error["type"] == "error"
            assert error["code"] == SVC_BAD_DOCUMENT
            await producer.send_events(flat_doc("a"))
            frames_task = asyncio.create_task(collect_frames(sub))
            await producer.close()
            await service.stop()
            frames = await frames_task
            await sub.close()
            # the malformed document never moved the stream position
            assert [d for d, _, _ in match_tuples(frames, "q")] == [0]
            return service

        service = run(scenario())
        assert service.stats.documents_rejected == 1
        assert service.stats.documents_ingested == 1

    def test_partial_document_from_dead_producer_is_invisible(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            await sub.subscribe("q", "_*.a")
            dying = await ProducerClient.connect(host, port)
            await dying.send_events(
                [StartDocument(), StartElement("a")]  # never finished
            )
            await dying.close()
            healthy = await ProducerClient.connect(host, port)
            await healthy.send_events(flat_doc("a"))
            frames_task = asyncio.create_task(collect_frames(sub))
            await healthy.close()
            await service.stop()
            frames = await frames_task
            await sub.close()
            assert [d for d, _, _ in match_tuples(frames, "q")] == [0]
            return service

        service = run(scenario())
        assert service.stats.partial_documents == 1
        assert service.engine.serving.documents_seen == 1
        assert not service.degraded


class TestOverflow:
    def test_disconnect_policy_cuts_slow_subscriber(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            slow = await SubscriberClient.connect(
                host, port, overflow="disconnect", queue_size=1
            )
            await slow.subscribe("q", "_*.a")
            witness = await SubscriberClient.connect(host, port)
            await witness.subscribe("q", "_*.a")
            producer = await ProducerClient.connect(host, port)
            # enough matches to overrun a 1-frame queue and the socket
            # buffer while the slow client refuses to read
            big = flat_doc(*["a"] * 4000)
            await producer.send_events(big)
            slow_task = asyncio.create_task(collect_frames(slow))
            witness_task = asyncio.create_task(collect_frames(witness))
            await producer.close()
            await service.stop()
            slow_frames = await slow_task
            witness_frames = await witness_task
            await slow.close()
            await witness.close()
            return service, slow_frames, witness_frames

        service, slow_frames, witness_frames = run(scenario())
        byes = [f for f in slow_frames if f.get("type") == "bye"]
        assert byes and byes[-1]["code"] == SVC_OVERFLOW
        # the witness on the default block policy missed nothing
        assert len(match_tuples(witness_frames, "q")) == 4000
        assert service.stats.forced_disconnects == 1
        assert service.degraded  # forced disconnects are degraded delivery

    def test_shed_oldest_trades_loss_for_liveness(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            lossy = await SubscriberClient.connect(
                host, port, overflow="shed_oldest", queue_size=4
            )
            await lossy.subscribe("q", "_*.a")
            producer = await ProducerClient.connect(host, port)
            await producer.send_events(flat_doc(*["a"] * 4000))
            lossy_task = asyncio.create_task(collect_frames(lossy))
            await producer.close()
            await service.stop()
            frames = await lossy_task
            await lossy.close()
            return service, frames

        service, frames = run(scenario())
        assert service.stats.frames_shed > 0
        notices = [f for f in frames if f.get("type") == "notice"]
        assert any(f["code"] == "SHED001" for f in notices)
        assert len(match_tuples(frames, "q")) < 4000
        assert service.degraded


class TestClockedTimeouts:
    def test_handshake_timeout_decided_on_fake_clock(self):
        clock = FakeClock()

        async def scenario():
            service = SpexService(
                fast_config(clock=clock, handshake_timeout=5.0)
            )
            host, port = await service.start()
            reader, writer = await asyncio.open_connection(host, port)
            await asyncio.sleep(0.05)  # housekeeping ticks; fake time frozen
            assert reader.at_eof() is False
            clock.advance(6.0)
            line = await reader.readline()
            writer.close()
            await service.stop()
            return line

        import json

        frame = json.loads(run(scenario()))
        assert frame["type"] == "bye"
        assert frame["code"] == SVC_HANDSHAKE_TIMEOUT

    def test_idle_producer_timed_out_on_fake_clock(self):
        clock = FakeClock()

        async def scenario():
            service = SpexService(
                fast_config(clock=clock, idle_timeout=30.0)
            )
            host, port = await service.start()
            producer = await ProducerClient.connect(host, port)
            await asyncio.sleep(0.05)
            clock.advance(31.0)
            frame = await producer.conn.recv()
            await producer.close()
            await service.stop()
            return frame

        frame = run(scenario())
        assert frame["type"] == "bye"
        assert frame["code"] == SVC_IDLE_TIMEOUT

    def test_heartbeats_on_fake_clock(self):
        clock = FakeClock()

        async def scenario():
            service = SpexService(
                fast_config(clock=clock, heartbeat_interval=10.0)
            )
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            await sub.subscribe("q", "_*.a")
            clock.advance(11.0)
            await asyncio.sleep(0.05)
            frames_task = asyncio.create_task(collect_frames(sub))
            await service.stop()
            frames = await frames_task
            await sub.close()
            return frames

        frames = run(scenario())
        assert any(f.get("type") == "heartbeat" for f in frames)


class TestDrainCheckpoint:
    def test_drain_checkpoints_and_resume_completes_the_stream(self, tmp_path):
        path = tmp_path / "service.ckpt"
        documents = [flat_doc("a", "b"), flat_doc("a"), flat_doc("b", "a")]

        async def scenario():
            service = SpexService(
                fast_config(checkpoint_path=str(path))
            )
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            await sub.subscribe("q", "_*.a")
            producer = await ProducerClient.connect(host, port)
            for document in documents[:2]:
                await producer.send_events(document)
            frames_task = asyncio.create_task(collect_frames(sub))
            await producer.close()
            await service.stop()
            frames = await frames_task
            await sub.close()
            return service, frames

        service, frames = run(scenario())
        assert path.exists()
        assert service.stats.checkpoints_written == 1
        from repro.core.checkpoint import Checkpoint

        checkpoint = Checkpoint.load(str(path))
        engine_id = next(iter(checkpoint.payload["queries"]))
        # resume against the full stream: the continuation must deliver
        # exactly the matches of the documents after the cut
        resumed_engine = MultiQueryEngine.from_checkpoint(checkpoint)
        stream = [event for document in documents for event in document]
        resumed = [
            (match.position, match.label)
            for _qid, match in resumed_engine.resume(checkpoint, stream)
        ]
        offline = offline_matches({"q": "_*.a"}, documents)["q"]
        delivered = match_tuples(frames, "q")
        assert [(p, l) for _d, p, l in delivered] + resumed == [
            (p, l) for _d, p, l in offline
        ]
        assert engine_id.endswith(".q")


class TestExitStatus:
    def test_clean_run_not_degraded(self):
        async def scenario():
            service = SpexService(fast_config())
            host, port = await service.start()
            sub = await SubscriberClient.connect(host, port)
            await sub.subscribe("q", "_*.a")
            frames_task = asyncio.create_task(collect_frames(sub))
            await service.stop()
            await frames_task
            await sub.close()
            return service

        assert run(scenario()).degraded is False

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(overflow="yolo")
        with pytest.raises(ValueError):
            ServiceConfig(tick=0)
        with pytest.raises(ValueError):
            ServiceConfig(subscriber_queue=0)
        with pytest.raises(ValueError):
            ServiceConfig(idle_timeout=-1)
