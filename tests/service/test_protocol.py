"""Unit tests for the transport-agnostic wire protocol."""

import pytest

from repro.core.output_tx import Match
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    OVERFLOW_POLICIES,
    ProtocolError,
    SVC_MALFORMED_FRAME,
    decode_frame,
    encode_frame,
    events_frame,
    events_from_frame,
    hello_frame,
    match_frame,
    match_from_obj,
    match_to_obj,
    subscribe_frame,
)
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)


class TestFrameCodec:
    def test_round_trip(self):
        frame = subscribe_frame("q1", "_*.a[b]")
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_frame(line) == frame

    def test_compact_encoding(self):
        assert b" " not in encode_frame({"type": "ping"})

    def test_rejects_oversized(self):
        line = encode_frame({"type": "events", "pad": "x" * 64})
        with pytest.raises(ProtocolError) as exc:
            decode_frame(line, max_bytes=16)
        assert exc.value.code == SVC_MALFORMED_FRAME

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"not json\n")
        assert exc.value.code == SVC_MALFORMED_FRAME

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1,2,3]\n")

    def test_rejects_missing_type(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'{"role":"producer"}\n')

    def test_default_ceiling_is_sane(self):
        assert MAX_FRAME_BYTES >= 65536


class TestEventCodec:
    def test_events_round_trip(self):
        events = [
            StartDocument(),
            StartElement("a", {"k": "v"}),
            Text("hi"),
            EndElement("a"),
            EndDocument(),
        ]
        frame = decode_frame(encode_frame(events_frame(events)))
        assert events_from_frame(frame) == events

    def test_undecodable_event_is_svc001(self):
        with pytest.raises(ProtocolError) as exc:
            events_from_frame({"type": "events", "events": [["??"]]})
        assert exc.value.code == SVC_MALFORMED_FRAME

    def test_events_must_be_a_list(self):
        with pytest.raises(ProtocolError):
            events_from_frame({"type": "events", "events": "nope"})


class TestMatchCodec:
    def test_positions_only_round_trip(self):
        match = Match(position=3, label="b")
        assert match_from_obj(match_to_obj(match)) == match

    def test_with_events_round_trip(self):
        match = Match(
            position=1,
            label="a",
            events=(StartElement("a"), EndElement("a")),
        )
        assert match_from_obj(match_to_obj(match)) == match

    def test_match_frame_carries_document_index(self):
        frame = match_frame("q", Match(position=2, label="c"), document=7)
        assert frame["document"] == 7
        assert frame["query_id"] == "q"


class TestHello:
    def test_rejects_unknown_role(self):
        with pytest.raises(ProtocolError):
            hello_frame("spectator")

    def test_rejects_unknown_overflow(self):
        with pytest.raises(ProtocolError):
            hello_frame("subscriber", overflow="yolo")

    def test_overflow_policies_complete(self):
        assert set(OVERFLOW_POLICIES) == {"block", "shed_oldest", "disconnect"}
