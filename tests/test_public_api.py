"""API hygiene: every public name exists, is importable and documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.xmlstream",
    "repro.rpeq",
    "repro.conditions",
    "repro.core",
    "repro.cq",
    "repro.dtd",
    "repro.baselines",
    "repro.workloads",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    module = importlib.import_module(package)
    exported = list(module.__all__)
    assert exported == sorted(exported), f"{package}.__all__ not sorted"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) and not inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
        elif inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package}: undocumented exports {undocumented}"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings(package):
    module = importlib.import_module(package)
    assert (module.__doc__ or "").strip(), f"{package} has no module docstring"


def test_no_accidental_cross_exports():
    """Top-level ``repro`` exposes only its curated surface."""
    import repro

    assert "SpexEngine" in repro.__all__
    assert "Network" not in repro.__all__  # internals stay in repro.core


def test_version_is_pep440ish():
    import re

    import repro

    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
