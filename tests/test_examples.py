"""Smoke tests: every shipped example runs green.

Examples are executed as subprocesses (their own ``__main__``), with
scaled-down arguments where they accept any, so the suite stays fast.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: example -> extra argv (scaled down for test runtime)
EXAMPLES = {
    "quickstart.py": [],
    "sdi_filtering.py": [],
    "conjunctive_queries.py": [],
    "extended_navigation.py": [],
    "schema_pipeline.py": [],
    "infinite_monitoring.py": [],
    "checkpoint_resume.py": [],
    "large_documents.py": ["2000"],
    "service_client.py": [],
}


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples on disk and in the smoke-test table diverged"
    )


@pytest.mark.parametrize("example", sorted(EXAMPLES))
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example), *EXAMPLES[example]],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{example} produced no output"
