"""Unit tests for the sharded-serving building blocks.

Covers partitioning (hash stability, prefix affinity), the heartbeat
monitor on a fake clock, checkpoint quarantine surgery, the extracted
:class:`~repro.core.supervisor.ExponentialBackoff`, per-shard fault
seeding, breaker latching, and the mergeable
:class:`~repro.core.serving.ServingReport` codec.  End-to-end crash /
stall / poison behaviour (real worker processes) lives in
``tests/integration/test_shards.py``.
"""

import zlib

import pytest

from repro import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    CheckpointError,
    FakeClock,
    HeartbeatMonitor,
    MultiQueryEngine,
    ServingReport,
    ShardConfig,
    StreamCursor,
    partition_queries,
)
from repro.core.serving import QueryOutcome
from repro.core.shards import quarantine_in_checkpoint
from repro.core.supervisor import ExponentialBackoff
from repro.xmlstream.faults import FaultInjector

DOC = "<a><b><c/></b><b/><c/></a>"


# ----------------------------------------------------------------------
# partitioning


class TestPartitionQueries:
    QUERIES = {f"q{i}": "_*.a" for i in range(20)}

    def test_hash_is_disjoint_and_covering(self):
        layout = partition_queries(self.QUERIES, 4)
        flat = [qid for ids in layout for qid in ids]
        assert sorted(flat) == sorted(self.QUERIES)
        assert len(flat) == len(set(flat))

    def test_hash_is_crc32_stable(self):
        # The layout must be a pure function of the id — never the
        # interpreter's salted hash() — so restarted coordinators
        # rebuild the identical topology.
        layout = partition_queries(self.QUERIES, 3)
        for shard, ids in enumerate(layout):
            for qid in ids:
                assert zlib.crc32(qid.encode("utf-8")) % 3 == shard

    def test_single_shard_gets_everything(self):
        layout = partition_queries(self.QUERIES, 1)
        assert len(layout) == 1
        assert sorted(layout[0]) == sorted(self.QUERIES)

    def test_prefix_colocates_shared_heads(self):
        # Grouping keys on the exact first step — the unit the shared-
        # prefix trie deduplicates on — so a qualified head ("country[x]")
        # would be its own group; these three share the bare step.
        queries = {
            "a1": "country.name",
            "a2": "country.city",
            "a3": "country.population",
            "b1": "org.name",
        }
        layout = partition_queries(queries, 2, strategy="prefix")
        by_query = {
            qid: shard for shard, ids in enumerate(layout) for qid in ids
        }
        assert by_query["a1"] == by_query["a2"] == by_query["a3"]
        assert by_query["b1"] != by_query["a1"]

    def test_prefix_balances_groups(self):
        # Four singleton groups over two shards: 2 + 2.
        queries = {f"q{i}": f"l{i}.x" for i in range(4)}
        layout = partition_queries(queries, 2, strategy="prefix")
        assert sorted(len(ids) for ids in layout) == [2, 2]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            partition_queries(self.QUERIES, 0)
        with pytest.raises(ValueError):
            partition_queries(self.QUERIES, 2, strategy="modulo")


# ----------------------------------------------------------------------
# heartbeats


class TestHeartbeatMonitor:
    def test_fresh_shard_is_not_stalled(self):
        monitor = HeartbeatMonitor(1.0, FakeClock())
        assert not monitor.stalled(0)

    def test_stall_after_silence(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(1.0, clock)
        monitor.beat(0)
        clock.advance(0.9)
        assert not monitor.stalled(0)
        clock.advance(0.2)
        assert monitor.stalled(0)

    def test_beat_resets_the_budget(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(1.0, clock)
        monitor.beat(0)
        clock.advance(0.9)
        monitor.beat(0)
        clock.advance(0.9)
        assert not monitor.stalled(0)

    def test_shards_are_independent(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(1.0, clock)
        monitor.beat(0)
        monitor.beat(1)
        clock.advance(1.5)
        monitor.beat(1)
        assert monitor.stalled(0)
        assert not monitor.stalled(1)

    def test_disarm_silences_the_watchdog(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(1.0, clock)
        monitor.beat(0)
        clock.advance(5.0)
        monitor.disarm(0)
        assert not monitor.stalled(0)

    def test_none_timeout_disables_detection(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(None, clock)
        monitor.beat(0)
        clock.advance(1e9)
        assert not monitor.stalled(0)

    def test_silence_reports_elapsed(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(1.0, clock)
        assert monitor.silence(0) == 0.0
        monitor.beat(0)
        clock.advance(2.5)
        assert monitor.silence(0) == pytest.approx(2.5)


# ----------------------------------------------------------------------
# checkpoint quarantine surgery


def serving_checkpoint(queries=None):
    engine = MultiQueryEngine(queries or {"q1": "_*.b", "q2": "_*.c"})
    for _ in engine.serve(DOC, cursor=StreamCursor()):
        pass
    return engine, engine.checkpoint()


class TestQuarantineInCheckpoint:
    def test_latches_breaker_and_drops_network(self):
        _engine, checkpoint = serving_checkpoint()
        edited = quarantine_in_checkpoint(checkpoint, ["q1"], max_trips=3)
        payload = edited.require("multiquery")
        assert "q1" not in payload["networks"]
        breaker = payload["serving"]["breakers"]["q1"]
        assert breaker["state"] == "open"
        assert breaker["trips"] == 3
        outcome = payload["serving"]["outcomes"]["q1"]
        assert outcome["status"] == "quarantined"
        assert outcome["code"] == "POISON"
        assert outcome["degraded"] is True

    def test_original_checkpoint_is_untouched(self):
        _engine, checkpoint = serving_checkpoint()
        before = checkpoint.to_dict()
        quarantine_in_checkpoint(checkpoint, ["q1"], max_trips=3)
        assert checkpoint.to_dict() == before

    def test_bumps_quarantine_counter_once(self):
        _engine, checkpoint = serving_checkpoint()
        payload = checkpoint.require("multiquery")
        base = payload["serving"]["report"]["quarantines"]
        edited = quarantine_in_checkpoint(checkpoint, ["q1"], max_trips=3)
        twice = quarantine_in_checkpoint(edited, ["q1"], max_trips=3)
        report = twice.require("multiquery")["serving"]["report"]
        # Re-latching an already-quarantined query is idempotent.
        assert report["quarantines"] == base + 1

    def test_unknown_query_raises(self):
        _engine, checkpoint = serving_checkpoint()
        with pytest.raises(CheckpointError, match="not in the checkpoint"):
            quarantine_in_checkpoint(checkpoint, ["ghost"], max_trips=3)

    def test_non_serving_checkpoint_raises(self):
        engine = MultiQueryEngine({"q1": "_*.b"})
        cursor = StreamCursor()
        for _ in engine.run(DOC, cursor=cursor):
            pass
        checkpoint = engine.checkpoint()
        with pytest.raises(CheckpointError, match="non-serving"):
            quarantine_in_checkpoint(checkpoint, ["q1"], max_trips=3)

    def test_resume_keeps_latched_query_out(self):
        from repro.xmlstream import iter_events

        _engine, checkpoint = serving_checkpoint()
        edited = quarantine_in_checkpoint(checkpoint, ["q1"], max_trips=3)
        events = list(iter_events(DOC))
        fresh = MultiQueryEngine({"q1": "_*.b", "q2": "_*.c"})
        # Source = the consumed prefix plus one more document; resume
        # skips the prefix, replays the second document, and the
        # latched q1 must never produce again while q2 streams on.
        replay = list(fresh.resume(edited, iter(events + events)))
        assert {qid for qid, _ in replay} == {"q2"}
        outcome = fresh.serving.outcomes["q1"]
        assert outcome.status == "quarantined"
        assert outcome.code == "POISON"


# ----------------------------------------------------------------------
# backoff


class TestExponentialBackoff:
    def test_deterministic_per_seed(self):
        a = ExponentialBackoff(seed=7)
        b = ExponentialBackoff(seed=7)
        assert [a.delay(i) for i in range(1, 6)] == [
            b.delay(i) for i in range(1, 6)
        ]

    def test_seeds_diverge(self):
        a = ExponentialBackoff(seed=1)
        b = ExponentialBackoff(seed=2)
        assert [a.delay(i) for i in range(1, 6)] != [
            b.delay(i) for i in range(1, 6)
        ]

    def test_growth_and_cap(self):
        backoff = ExponentialBackoff(
            initial=1.0, factor=2.0, maximum=8.0, jitter=0.0
        )
        assert [backoff.delay(i) for i in range(1, 6)] == [
            1.0,
            2.0,
            4.0,
            8.0,
            8.0,
        ]

    def test_jitter_stays_in_band(self):
        backoff = ExponentialBackoff(
            initial=1.0, factor=1.0, maximum=10.0, jitter=0.1, seed=3
        )
        for _ in range(100):
            assert 0.9 <= backoff.delay(1) <= 1.1


# ----------------------------------------------------------------------
# per-shard fault seeding


class TestFaultInjectorForShard:
    def test_derived_streams_differ(self):
        base = FaultInjector(seed=42)
        a, b = base.for_shard(0), base.for_shard(1)
        assert a.seed != b.seed
        assert [a.rng.random() for _ in range(5)] != [
            b.rng.random() for _ in range(5)
        ]

    def test_derivation_is_reproducible(self):
        assert (
            FaultInjector(seed=42).for_shard(3).seed
            == FaultInjector(seed=42).for_shard(3).seed
        )

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(seed=1).for_shard(-1)


# ----------------------------------------------------------------------
# breaker latch


class TestBreakerLatch:
    def test_latch_exhausts_the_breaker(self):
        breaker = CircuitBreaker(BreakerPolicy(max_trips=3))
        breaker.latch()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 3
        assert not breaker.admits()

    def test_latch_never_lowers_trips(self):
        breaker = CircuitBreaker(BreakerPolicy(max_trips=2))
        breaker.trips = 5
        breaker.latch()
        assert breaker.trips == 5

    def test_latch_requires_finite_max_trips(self):
        breaker = CircuitBreaker(BreakerPolicy(max_trips=None))
        with pytest.raises(ValueError):
            breaker.latch()


# ----------------------------------------------------------------------
# report codec / merge


class TestServingReportCodec:
    def make(self):
        report = ServingReport()
        report.documents_seen = 2
        report.breaker_trips = 1
        outcome = report.outcome("q1")
        outcome.status = "quarantined"
        outcome.code = "POISON"
        outcome.degraded = True
        outcome.matches = 4
        return report

    def test_round_trip(self):
        report = self.make()
        again = ServingReport.from_obj(report.to_obj())
        assert again.to_obj() == report.to_obj()
        assert again.outcomes["q1"].code == "POISON"

    def test_merged_sums_counters(self):
        left, right = self.make(), ServingReport()
        right.documents_seen = 5
        right.quarantines = 2
        right.outcome("q2").matches = 7
        merged = ServingReport.merged([left, right])
        # documents_seen is per-stream, not additive across shards.
        assert merged.documents_seen == 5
        assert merged.breaker_trips == 1
        assert merged.quarantines == 2
        assert set(merged.outcomes) == {"q1", "q2"}

    def test_outcome_round_trip(self):
        outcome = QueryOutcome("q")
        outcome.status = "degraded"
        outcome.code = "DEADLINE_DOC"
        outcome.matches = 3
        again = QueryOutcome.from_obj("q", outcome.to_obj())
        assert again.to_obj() == outcome.to_obj()


# ----------------------------------------------------------------------
# config validation


class TestShardConfig:
    def test_defaults_are_valid(self):
        config = ShardConfig()
        assert config.shards == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"partition": "modulo"},
            {"heartbeat_interval": 0.0},
            {"heartbeat_interval": 2.0, "heartbeat_timeout": 1.0},
            {"max_trips": 0},
            {"batch_events": 0},
            {"queue_batches": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_none_timeout_is_allowed(self):
        assert ShardConfig(heartbeat_timeout=None).heartbeat_timeout is None
