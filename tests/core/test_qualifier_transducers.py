"""Unit tests for variable-creator, -filter and -determinant transducers."""

import pytest

from repro.conditions.formula import TRUE, And, Var, conj, disj
from repro.conditions.store import ConditionStore, VariableAllocator
from repro.core.messages import Activation, Close, Contribute, Doc
from repro.core.qualifier_transducers import (
    VariableCreator,
    VariableDeterminant,
    VariableFilter,
)
from repro.xmlstream.events import events_from_tags


@pytest.fixture
def store():
    return ConditionStore()


@pytest.fixture
def creator(store):
    return VariableCreator("q0", VariableAllocator(), store)


def doc(tag):
    return Doc(next(events_from_tags([tag])))


class TestVariableCreator:
    def test_creates_one_variable_per_activation(self, creator, store):
        out = creator.feed([Activation(TRUE), doc("<a>")])
        activations = [m for m in out if isinstance(m, Activation)]
        assert len(activations) == 1
        created = activations[0].formula
        assert isinstance(created, Var) and created.qualifier == "q0"
        assert store.total_variables == 1

    def test_conjoins_variable_onto_formula(self, creator):
        outer = Var(99, "outer")
        out = creator.feed([Activation(outer), doc("<a>")])
        formula = next(m.formula for m in out if isinstance(m, Activation))
        assert isinstance(formula, And)
        assert outer in formula.terms

    def test_close_emitted_at_scope_end(self, creator):
        out_open = creator.feed([Activation(TRUE), doc("<a>")])
        created = next(m.formula for m in out_open if isinstance(m, Activation))
        out_close = creator.feed([doc("</a>")])
        assert out_close[0] == Close(created)
        assert isinstance(out_close[1], Doc)

    def test_unactivated_elements_pass_silently(self, creator, store):
        creator.feed([doc("<a>")])
        out = creator.feed([doc("</a>")])
        assert not any(isinstance(m, Close) for m in out)
        assert store.total_variables == 0

    def test_nested_activations_get_distinct_variables(self, creator):
        out1 = creator.feed([Activation(TRUE), doc("<a>")])
        out2 = creator.feed([Activation(TRUE), doc("<a>")])
        v1 = next(m.formula for m in out1 if isinstance(m, Activation))
        v2 = next(m.formula for m in out2 if isinstance(m, Activation))
        assert v1 != v2
        # closes come innermost-first
        assert creator.feed([doc("</a>")])[0] == Close(v2)
        assert creator.feed([doc("</a>")])[0] == Close(v1)


class TestVariableFilter:
    def test_positive_keeps_own_variables(self):
        own, foreign = Var(1, "q0"), Var(2, "q9")
        fltr = VariableFilter(frozenset(("q0",)), positive=True)
        out = fltr.feed([Activation(conj(own, foreign))])
        assert out == [Activation(own)]

    def test_negative_drops_own_variables(self):
        own, foreign = Var(1, "q0"), Var(2, "q9")
        fltr = VariableFilter(frozenset(("q0",)), positive=False)
        out = fltr.feed([Activation(conj(own, foreign))])
        assert out == [Activation(foreign)]

    def test_keeps_nested_qualifier_variables(self):
        own, nested = Var(1, "q0"), Var(2, "q1")
        fltr = VariableFilter(frozenset(("q0", "q1")), positive=True)
        out = fltr.feed([Activation(conj(own, nested))])
        assert out == [Activation(conj(own, nested))]

    def test_documents_and_conditions_pass(self):
        fltr = VariableFilter(frozenset(("q0",)))
        message = doc("<a>")
        assert fltr.feed([message]) == [message]
        contribution = Contribute(Var(1, "q0"), TRUE)
        assert fltr.feed([contribution]) == [contribution]


class TestVariableDeterminant:
    def test_plain_instance_yields_paper_protocol(self):
        c = Var(1, "q0")
        vd = VariableDeterminant("q0")
        assert vd.feed([Activation(c)]) == [Contribute(c, TRUE)]

    def test_disjunction_determines_every_instance(self):
        # A b-descendant inside two nested closure scopes satisfies both
        # qualifier instances at once.
        c1, c2 = Var(1, "q0"), Var(2, "q0")
        vd = VariableDeterminant("q0")
        out = vd.feed([Activation(disj(c1, c2))])
        assert set(out) == {Contribute(c1, TRUE), Contribute(c2, TRUE)}

    def test_nested_residue_forwarded_as_evidence(self):
        outer, inner = Var(1, "q0"), Var(2, "q1")
        vd = VariableDeterminant("q0")
        out = vd.feed([Activation(conj(outer, inner))])
        assert out == [Contribute(outer, inner)]

    def test_true_formula_contributes_nothing(self):
        vd = VariableDeterminant("q0")
        assert vd.feed([Activation(TRUE)]) == []

    def test_documents_pass_through(self):
        vd = VariableDeterminant("q0")
        message = doc("<a>")
        assert vd.feed([message]) == [message]

    def test_condition_messages_pass_through(self):
        vd = VariableDeterminant("q0")
        message = Close(Var(1, "q0"))
        assert vd.feed([message]) == [message]
