"""Unit tests for the following/preceding transducers in isolation."""

import pytest

from repro.conditions.formula import TRUE, Var
from repro.conditions.store import ConditionStore, VariableAllocator
from repro.core.axis_transducers import FollowingTransducer, PrecedingTransducer
from repro.core.messages import Activation, Close, Contribute, Doc
from repro.rpeq.ast import WILDCARD, Label
from repro.xmlstream.events import events_from_tags


def docs(*tags):
    return [Doc(event) for event in events_from_tags(tags)]


@pytest.fixture
def store():
    return ConditionStore()


class TestFollowingStandalone:
    def test_matches_only_after_context_closes(self, store):
        fo = FollowingTransducer(Label("b"), store)
        d = docs("<$>", "<a>", "<b>", "</b>", "</a>", "<b>", "</b>", "</$>")
        # Activate the <a> element as context.
        fo.feed([Activation(TRUE), d[1]])       # <a> (context opens)
        inside = fo.feed([d[2]])                # <b> inside the context
        assert not any(isinstance(m, Activation) for m in inside)
        fo.feed([d[3]])
        fo.feed([d[4]])                          # </a>: context closed
        after = fo.feed([d[5]])                  # <b> after the context
        assert any(isinstance(m, Activation) for m in after)

    def test_label_test_applies(self, store):
        fo = FollowingTransducer(Label("x"), store)
        d = docs("<$>", "<a>", "</a>", "<b>", "</b>", "</$>")
        fo.feed([d[0]])
        fo.feed([Activation(TRUE), d[1]])
        fo.feed([d[2]])
        out = fo.feed([d[3]])  # <b> does not pass the x test
        assert not any(isinstance(m, Activation) for m in out)

    def test_wildcard_matches_everything_after(self, store):
        fo = FollowingTransducer(Label(WILDCARD), store)
        d = docs("<$>", "<a>", "</a>", "<b>", "</b>", "</$>")
        fo.feed([d[0]])
        fo.feed([Activation(TRUE), d[1]])
        fo.feed([d[2]])
        out = fo.feed([d[3]])
        assert any(isinstance(m, Activation) for m in out)

    def test_branch_retainer_blocks_release_of_conjunct_var(self, store):
        from repro.conditions.formula import conj

        head, inner = Var(1, "q0"), Var(2, "q1")
        store.register(head)
        store.register(inner)
        fo = FollowingTransducer(Label("b"), store, branch=True)
        d = docs("<$>", "<a>", "</a>", "</$>")
        fo.feed([d[0]])
        fo.feed([Activation(conj(head, inner)), d[1]])
        fo.feed([d[2]])  # after == head ^ inner
        store.contribute(head, TRUE)  # head determined; inner unknown
        store.close(head)
        # Branch mode keeps the partially-determined conjunct whole, so
        # the determined head stays referenced and must not be released.
        assert not store.maybe_release(head)

    def test_main_mode_substitutes_determined_vars(self, store):
        var = Var(1, "q0")
        store.register(var)
        fo = FollowingTransducer(Label("b"), store)
        d = docs("<$>", "<a>", "</a>", "</$>")
        fo.feed([d[0]])
        fo.feed([Activation(var), d[1]])
        fo.feed([d[2]])
        store.contribute(var, TRUE)  # broadcast substitutes: after == TRUE
        assert fo._after is TRUE
        assert store.maybe_release(var) or not store.is_closed(var)


class TestPrecedingStandalone:
    def _make(self, store, branch_head=None):
        return PrecedingTransducer(
            Label("x"),
            "spec",
            VariableAllocator(),
            store,
            branch_head=branch_head,
        )

    def test_speculation_activation_emitted_per_match(self, store):
        pr = self._make(store)
        d = docs("<$>", "<x>", "</x>", "</$>")
        pr.feed([d[0]])
        out = pr.feed([d[1]])
        activations = [m for m in out if isinstance(m, Activation)]
        assert len(activations) == 1
        assert isinstance(activations[0].formula, Var)
        assert activations[0].formula.qualifier == "spec"

    def test_context_confirms_closed_elements_only(self, store):
        pr = self._make(store)
        d = docs("<$>", "<x>", "</x>", "<x>", "<a>", "</a>", "</x>", "</$>")
        pr.feed([d[0]])
        pr.feed([d[1]])       # first x opens
        pr.feed([d[2]])       # first x closes
        pr.feed([d[3]])       # second x opens (still open!)
        out = pr.feed([Activation(TRUE)])  # a context arrives
        contributions = [m for m in out if isinstance(m, Contribute)]
        assert len(contributions) == 1  # only the closed first x

    def test_all_unconfirmed_closed_at_document_end(self, store):
        pr = self._make(store)
        d = docs("<$>", "<x>", "</x>", "</$>")
        pr.feed([d[0]])
        pr.feed([d[1]])
        pr.feed([d[2]])
        out = pr.feed([d[3]])  # </$>
        assert any(isinstance(m, Close) for m in out)

    def test_branch_mode_pairs_head_with_speculations(self, store):
        head = Var(99, "qh")
        store.register(head)
        pr = self._make(store, branch_head="qh")
        d = docs("<$>", "<x>", "</x>", "</$>")
        pr.feed([d[0]])
        pr.feed([d[1]])
        pr.feed([d[2]])
        out = pr.feed([Activation(head)])
        contributions = [m for m in out if isinstance(m, Contribute)]
        assert len(contributions) == 1
        assert contributions[0].var == head  # evidence FOR the head
