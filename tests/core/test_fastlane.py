"""Unit and differential tests for the shared lazy-DFA fast lane.

The fast lane (:mod:`repro.core.fastlane`) must be *invisible in the
answers*: any query the planner routes onto the ``dfa``/``hybrid``/
``gated`` lanes has to produce the exact match sequence of the
transducer-network evaluation it replaces.  These tests pin that down at
three levels: the split/gate helpers (pure AST surgery), the core's
bounded determinization memo (saturation falls back to transient states,
never to wrong answers), and end-to-end differentials through
:class:`~repro.core.multiquery.MultiQueryEngine` driven by the seeded
query generator.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.nfa import compile_nfa
from repro.core.fastlane import (
    KIND_DFA,
    FastLaneAdapter,
    FastLaneCore,
    FastLaneUnsupported,
    build_lane_runner,
    gate_expr,
    native_hybrid_split,
)
from repro.core.multiquery import MultiQueryEngine
from repro.core.optimize import ALL_OPTIMIZATIONS
from repro.rpeq.ast import Qualifier, Rpeq
from repro.rpeq.parser import parse
from repro.rpeq.unparse import unparse

from ..conftest import PAPER_DOC, event_streams, make_random_events, rpeq_queries

# ----------------------------------------------------------------------
# AST surgery: hybrid split and the gate over-approximation


class TestNativeHybridSplit:
    def test_trailing_qualifier_splits(self):
        split = native_hybrid_split(parse("a.b[c]"))
        assert split is not None
        spine, condition = split
        assert unparse(spine) == "a.b"
        assert unparse(condition) == "c"

    def test_closure_spine_splits(self):
        split = native_hybrid_split(parse("_*.a[b.c]"))
        assert split is not None
        spine, condition = split
        assert unparse(spine) == "_*.a"
        assert unparse(condition) == "b.c"

    def test_inner_qualifier_does_not_split(self):
        assert native_hybrid_split(parse("a[b].c")) is None

    def test_stacked_qualifiers_do_not_split(self):
        assert native_hybrid_split(parse("a.b[c][d]")) is None

    def test_axis_condition_does_not_split(self):
        assert native_hybrid_split(parse("a.b[following::c]")) is None


def _has_qualifier(expr: Rpeq) -> bool:
    if isinstance(expr, Qualifier):
        return True
    return any(
        _has_qualifier(getattr(expr, field.name))
        for field in dataclasses.fields(expr)
        if isinstance(getattr(expr, field.name), Rpeq)
    )


class TestGateExpr:
    def test_over_approximation_is_qualifier_free(self):
        for text in ("a[b].c", "_*[b]._*.c", "a[b.c].(b|c)", "a[b[c]].d"):
            over = gate_expr(parse(text))
            assert not _has_qualifier(over), text
            # and it actually compiles onto the qualifier-free NFA path
            compile_nfa(over, allow_qualifiers=False)

    def test_axes_are_unsupported(self):
        with pytest.raises(FastLaneUnsupported):
            gate_expr(parse("a[following::b].c"))


# ----------------------------------------------------------------------
# lane routing through the engine


def _fingerprints(engine, events):
    return [
        (query_id, match.position, match.label, match.events)
        for query_id, match in engine.run(iter(events))
    ]


class TestLaneRouting:
    def test_each_query_class_lands_on_its_lane(self):
        engine = MultiQueryEngine(
            {
                "plain": "a.c",
                "closure": "_*.b",
                "trailing": "_*.a[c]",
                "inner": "a[b].c",
            }
        )
        engine.evaluate(PAPER_DOC)
        assert engine.lane_executions == {
            "plain": "dfa",
            "closure": "dfa",
            "trailing": "hybrid",
            "inner": "gated",
        }
        assert engine.lane_demotions == {}

    def test_knobs_off_runs_everything_on_the_network(self):
        engine = MultiQueryEngine(
            {"plain": "a.c", "trailing": "_*.a[c]"}, optimize=False
        )
        engine.evaluate(PAPER_DOC)
        assert set(engine.lane_executions.values()) == {"network"}

    def test_collecting_fragments_stays_on_the_network(self):
        """Fragment reconstruction is network-only; routing must notice."""
        engine = MultiQueryEngine({"q": "a.c"}, collect_events=True)
        results = engine.evaluate(PAPER_DOC)
        assert engine.lane_executions == {"q": "network"}
        assert [m.position for m in results["q"]] == [5]

    def test_stats_report_lane_counts(self):
        engine = MultiQueryEngine(
            {"d": "a.c", "h": "_*.a[c]", "g": "a[b].c", "n": "a.following::b"}
        )
        engine.evaluate(PAPER_DOC)
        stats = engine.stats
        assert stats.fastlane_dfa_queries == 1
        assert stats.fastlane_hybrid_queries == 1
        assert stats.fastlane_gated_queries == 1
        assert stats.fastlane_states > 0
        assert "fast-lane" in stats.summary()


# ----------------------------------------------------------------------
# bounded determinization memo


class TestMemoBound:
    def test_oversized_automaton_is_rejected_at_registration(self):
        core = FastLaneCore(max_states=2)
        nfa = compile_nfa(parse("_*.a.b.c"), allow_qualifiers=False)
        with pytest.raises(FastLaneUnsupported, match="determinization budget"):
            core.register("q", KIND_DFA, nfa)

    def test_build_lane_runner_demotes_with_a_reason(self):
        engine = MultiQueryEngine({"q": "_*.a.b.c"})
        plan = engine.plans["q"]
        assert plan.lane == "dfa"
        runner, lane, reason = build_lane_runner(
            FastLaneCore(max_states=2),
            "q",
            engine.queries["q"],
            plan,
            ALL_OPTIMIZATIONS,
            lambda: None,
        )
        assert runner is None
        assert lane == "network"
        assert reason is not None and "determinization budget" in reason

    def test_saturated_memo_still_answers_exactly(self, rng):
        """Past the cap the core runs on transient states — never OOM,
        never a different answer."""
        queries = {
            "q1": "_*.a",
            "q2": "_*.b.c",
            "q3": "(a|b)._*.c",
            "q4": "_*.d.(a|b)",
        }
        events = []
        for _ in range(10):
            events.extend(make_random_events(rng, max_children=5, max_depth=6))
        reference = {
            query_id: [(m.position, m.label) for m in matches]
            for query_id, matches in MultiQueryEngine(
                queries, optimize=False
            ).evaluate(iter(events)).items()
        }

        core = FastLaneCore(max_states=14)
        adapters = {}
        for query_id, text in queries.items():
            expr = parse(text)
            nfa = compile_nfa(expr, allow_qualifiers=False)
            assert nfa.size <= core.max_states, "pre-check must admit these"
            slot = core.register(query_id, KIND_DFA, nfa)
            adapters[query_id] = FastLaneAdapter(core, slot, expr)
        got = {query_id: [] for query_id in queries}
        for event in events:
            core.advance(event)
            for query_id, adapter in adapters.items():
                got[query_id].extend(
                    (m.position, m.label) for m in adapter.process_event(event)
                )
        assert got == reference
        assert core.saturated_steps > 0
        assert core.states_interned <= core.max_states


# ----------------------------------------------------------------------
# differential: lanes vs. the transducer network


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rpeq_queries(allow_qualifiers=False), event_streams())
def test_dfa_lane_matches_network(query, events):
    """Qualifier-free queries all plan onto the dfa lane; the lazy DFA
    must reproduce the network's matches bit for bit."""
    reference = _fingerprints(MultiQueryEngine({"q": query}, optimize=False), events)
    engine = MultiQueryEngine({"q": query})
    assert _fingerprints(engine, events) == reference
    assert engine.lane_executions["q"] == "dfa"


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rpeq_queries(), event_streams())
def test_all_lanes_match_network(query, events):
    """Unrestricted queries spread over all four lanes."""
    reference = _fingerprints(MultiQueryEngine({"q": query}, optimize=False), events)
    engine = MultiQueryEngine({"q": query})
    assert _fingerprints(engine, events) == reference
    assert engine.lane_executions["q"] in {"dfa", "hybrid", "gated", "network"}


def test_multi_document_streams_reset_cleanly(rng):
    """The shared core's per-document reset, across lane kinds at once."""
    queries = {"d": "_*.c", "h": "_*.a[c]", "g": "_*[b].c", "n": "a.following::b"}
    events = []
    for _ in range(4):
        events.extend(make_random_events(rng))
    reference = _fingerprints(MultiQueryEngine(queries, optimize=False), events)
    engine = MultiQueryEngine(queries)
    assert _fingerprints(engine, events) == reference
