"""Unit tests for the checkpoint layer.

Covers the :class:`~repro.core.checkpoint.Checkpoint` container (format,
integrity, atomic persistence), the source-position primitives
(:class:`~repro.xmlstream.StreamCursor`, :func:`~repro.xmlstream.skip_events`)
and the engine-level ``checkpoint()``/``resume()`` contract including its
failure modes.  The lossless round-trip property across *every* cut point
is exercised end to end in ``tests/integration/test_checkpoint_resume.py``.
"""

import json
import os

import pytest

from repro import (
    Checkpoint,
    CheckpointError,
    SpexEngine,
    StreamCursor,
    StreamError,
)
from repro.core.checkpoint import CHECKPOINT_VERSION
from repro.core.multiquery import MultiQueryEngine
from repro.errors import EngineError
from repro.xmlstream import iter_events, skip_events

DOC = "<a><a><c/></a><b/><c/><d><b><c/></b></d></a>"


def run_with_cursor(engine, source, prefix_events):
    """Drive a cursor-tracked strict run over the first ``prefix_events``."""
    import itertools

    cursor = StreamCursor()
    prefix = list(itertools.islice(iter_events(source), prefix_events))
    matches = list(engine.run(iter(prefix), cursor=cursor, require_end=False))
    return cursor, matches


# ----------------------------------------------------------------------
# Checkpoint container


class TestCheckpointContainer:
    def make(self):
        engine = SpexEngine("_*.a")
        run_with_cursor(engine, DOC, 5)
        return engine.checkpoint()

    def test_dict_round_trip(self):
        checkpoint = self.make()
        data = checkpoint.to_dict()
        again = Checkpoint.from_dict(json.loads(json.dumps(data)))
        assert again.kind == checkpoint.kind
        assert again.payload == checkpoint.payload
        assert again.version == CHECKPOINT_VERSION

    def test_position_reads_cursor(self):
        assert self.make().position == 5

    def test_checksum_detects_tampering(self):
        data = self.make().to_dict()
        data["payload"]["cursor"]["events_read"] = 1
        with pytest.raises(CheckpointError, match="integrity"):
            Checkpoint.from_dict(data)

    def test_version_skew_rejected(self):
        data = self.make().to_dict()
        data["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            Checkpoint.from_dict(data)

    def test_malformed_dict_rejected(self):
        with pytest.raises(CheckpointError, match="malformed"):
            Checkpoint.from_dict({"kind": "spex"})
        with pytest.raises(CheckpointError, match="malformed"):
            Checkpoint.from_dict(None)

    def test_save_load_round_trip(self, tmp_path):
        checkpoint = self.make()
        path = tmp_path / "checkpoint.json"
        checkpoint.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.payload == checkpoint.payload
        # no temp files left behind
        assert os.listdir(tmp_path) == ["checkpoint.json"]

    def test_save_replaces_atomically(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        first = self.make()
        first.save(path)
        engine = SpexEngine("_*.a")
        run_with_cursor(engine, DOC, 9)
        engine.checkpoint().save(path)
        assert Checkpoint.load(path).position == 9

    def test_concurrent_writers_never_tear(self, tmp_path):
        # The sharded engine runs one checkpoint writer per worker
        # process against a shared directory; hammer one target path
        # from many threads and require every intermediate read to be a
        # complete, loadable checkpoint (temp-name collisions between
        # writers would surface here as torn or vanished files).
        import threading

        path = tmp_path / "checkpoint.json"
        checkpoints = []
        for prefix in range(4, 12):
            engine = SpexEngine("_*.a")
            run_with_cursor(engine, DOC, prefix)
            checkpoints.append(engine.checkpoint())
        positions = {checkpoint.position for checkpoint in checkpoints}
        errors = []

        def hammer(checkpoint):
            try:
                for _ in range(25):
                    checkpoint.save(path)
                    assert Checkpoint.load(path).position in positions
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(checkpoint,))
            for checkpoint in checkpoints
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # The survivor is one coherent write; no temp litter remains.
        assert Checkpoint.load(path).position in positions
        assert os.listdir(tmp_path) == ["checkpoint.json"]

    def test_load_missing_or_garbage(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(tmp_path / "nope.json")
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        self.make().save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_require_kind(self):
        checkpoint = self.make()
        assert checkpoint.require("spex") is checkpoint.payload
        with pytest.raises(CheckpointError, match="multiquery"):
            checkpoint.require("multiquery")


# ----------------------------------------------------------------------
# cursor and skip primitives


class TestStreamCursor:
    def test_counts_and_envelope(self):
        cursor = StreamCursor()
        events = list(cursor.attach(iter_events(DOC)))
        assert cursor.events_read == len(events)
        assert cursor.open_labels == []
        assert not cursor.in_document
        assert cursor.documents_seen == 1

    def test_advances_before_yield(self):
        cursor = StreamCursor()
        stream = cursor.attach(iter_events(DOC))
        next(stream)  # <$>
        assert cursor.events_read == 1
        next(stream)  # <a>
        assert cursor.events_read == 2
        assert cursor.open_labels == ["a"]
        assert cursor.in_document

    def test_state_round_trip(self):
        cursor = StreamCursor()
        stream = cursor.attach(iter_events(DOC))
        for _ in range(4):
            next(stream)
        again = StreamCursor.from_state(
            json.loads(json.dumps(cursor.state()))
        )
        assert again.state() == cursor.state()


class TestSkipEvents:
    def test_skips_exact_prefix(self):
        full = list(iter_events(DOC))
        assert list(skip_events(iter_events(DOC), 4)) == full[4:]

    def test_short_source_raises(self):
        with pytest.raises(StreamError, match="cannot resume"):
            list(skip_events(iter_events("<a/>"), 100))


# ----------------------------------------------------------------------
# engine-level contract


class TestEngineCheckpointContract:
    def test_checkpoint_without_run_raises(self):
        with pytest.raises(CheckpointError, match="nothing to checkpoint"):
            SpexEngine("_*.a").checkpoint()

    def test_checkpoint_without_cursor_raises(self):
        engine = SpexEngine("_*.a")
        list(engine.run(DOC))  # no cursor -> not checkpointable
        with pytest.raises(CheckpointError):
            engine.checkpoint()

    def test_cursor_rejected_under_recovery_policies(self):
        engine = SpexEngine("_*.a")
        with pytest.raises(EngineError, match="strict"):
            list(engine.run(DOC, on_error="skip", cursor=StreamCursor()))

    def test_resume_checks_query(self):
        engine = SpexEngine("_*.a")
        run_with_cursor(engine, DOC, 5)
        checkpoint = engine.checkpoint()
        other = SpexEngine("_*.b")
        with pytest.raises(CheckpointError, match="query"):
            other.resume(checkpoint, DOC)

    def test_resume_checks_options(self):
        engine = SpexEngine("_*.a", collect_events=True)
        run_with_cursor(engine, DOC, 5)
        checkpoint = engine.checkpoint()
        mismatched = SpexEngine("_*.a", collect_events=False)
        with pytest.raises(CheckpointError, match="collect_events"):
            mismatched.resume(checkpoint, DOC)

    def test_resume_checks_kind(self):
        multi = MultiQueryEngine({"q": "_*.a"})
        cursor = StreamCursor()
        list(multi.run(DOC, cursor=cursor))
        checkpoint = multi.checkpoint()
        with pytest.raises(CheckpointError, match="multiquery"):
            SpexEngine("_*.a").resume(checkpoint, DOC)

    def test_resume_verification_is_eager(self):
        engine = SpexEngine("_*.a")
        run_with_cursor(engine, DOC, 5)
        checkpoint = engine.checkpoint()
        with pytest.raises(CheckpointError):
            # note: no iteration — the mismatch must surface at call time
            SpexEngine("_*.b").resume(checkpoint, DOC)

    def test_resume_rejects_short_source(self):
        engine = SpexEngine("_*.a")
        run_with_cursor(engine, DOC, 5)
        checkpoint = engine.checkpoint()
        with pytest.raises(StreamError, match="cannot resume"):
            list(engine.resume(checkpoint, "<a/>"))

    def test_from_checkpoint_matches_settings(self):
        engine = SpexEngine("_*.a[b].c", collect_events=False, optimize=False)
        run_with_cursor(engine, DOC, 5)
        checkpoint = engine.checkpoint()
        rebuilt = SpexEngine.from_checkpoint(checkpoint)
        assert rebuilt.collect_events is False
        assert rebuilt.optimize is False
        # and therefore resume is accepted
        list(rebuilt.resume(checkpoint, DOC))

    def test_counters_and_summary(self):
        engine = SpexEngine("_*.a")
        run_with_cursor(engine, DOC, 5)
        checkpoint = engine.checkpoint()
        list(engine.resume(checkpoint, DOC))
        stats = engine.stats
        assert stats.checkpoints_written == 1
        assert stats.restores == 1
        summary = stats.summary()
        assert "checkpoints written   : 1" in summary
        assert "restores              : 1" in summary
        assert "retries               : 0" in summary
        assert "stalls detected       : 0" in summary

    def test_resume_completes_resumed_run(self):
        baseline = [m.position for m in SpexEngine("_*.a[b].c").run(DOC)]
        engine = SpexEngine("_*.a[b].c")
        cursor, matches = run_with_cursor(engine, DOC, 7)
        checkpoint = engine.checkpoint()
        positions = [m.position for m in matches]
        positions += [
            m.position for m in engine.resume(checkpoint, DOC)
        ]
        assert positions == baseline


class TestMultiQueryCheckpointContract:
    QUERIES = {"plain": "_*.a", "qualified": "_*.a[b].c"}

    def test_round_trip_through_disk(self, tmp_path):
        import itertools

        baseline = [
            (query_id, match.position)
            for query_id, match in MultiQueryEngine(self.QUERIES).run(DOC)
        ]
        engine = MultiQueryEngine(self.QUERIES)
        cursor = StreamCursor()
        prefix = list(itertools.islice(iter_events(DOC), 6))
        got = [
            (query_id, match.position)
            for query_id, match in engine.run(iter(prefix), cursor=cursor)
        ]
        path = tmp_path / "checkpoint.json"
        engine.checkpoint().save(path)
        loaded = Checkpoint.load(path)
        fresh = MultiQueryEngine.from_checkpoint(loaded)
        got += [
            (query_id, match.position)
            for query_id, match in fresh.resume(loaded, DOC)
        ]
        assert got == baseline

    def test_resume_checks_subscription_set(self):
        engine = MultiQueryEngine(self.QUERIES)
        cursor = StreamCursor()
        list(engine.run(DOC, cursor=cursor))
        checkpoint = engine.checkpoint()
        other = MultiQueryEngine({"plain": "_*.a"})
        with pytest.raises(CheckpointError, match="subscription"):
            other.resume(checkpoint, DOC)


class TestRotation:
    """keep-N generation rotation and the corruption fallback chain."""

    @staticmethod
    def snap(query: str) -> Checkpoint:
        import itertools

        engine = MultiQueryEngine({"q": query})
        cursor = StreamCursor()
        prefix = list(itertools.islice(iter_events(DOC), 6))
        list(engine.run(iter(prefix), cursor=cursor))
        return engine.checkpoint()

    def test_keep_shifts_generations(self, tmp_path):
        path = tmp_path / "ck.json"
        generations = [self.snap(q) for q in ("_*.a", "_*.b", "_*.c")]
        for checkpoint in generations:
            checkpoint.save(path, keep=3)
        assert Checkpoint.load(path).to_dict() == generations[2].to_dict()
        assert (
            Checkpoint._load_one(f"{path}.1").to_dict()
            == generations[1].to_dict()
        )
        assert (
            Checkpoint._load_one(f"{path}.2").to_dict()
            == generations[0].to_dict()
        )
        assert not os.path.exists(f"{path}.3")

    def test_keep_bounds_generation_count(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = self.snap("_*.a")
        for _ in range(5):
            checkpoint.save(path, keep=2)
        assert os.path.exists(f"{path}.1")
        assert not os.path.exists(f"{path}.2"), "oldest must drop"

    def test_keep_one_rotates_nothing(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = self.snap("_*.a")
        checkpoint.save(path)
        checkpoint.save(path)
        assert not os.path.exists(f"{path}.1")

    def test_torn_primary_falls_back_one_generation(self, tmp_path):
        """A crash mid-write of the newest file must not lose the run."""
        path = tmp_path / "ck.json"
        old, new = self.snap("_*.a"), self.snap("_*.b")
        old.save(path, keep=3)
        new.save(path, keep=3)
        raw = open(path, "r", encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(raw[: len(raw) // 2])
        assert Checkpoint.load(path).to_dict() == old.to_dict()

    def test_corrupt_chain_falls_to_oldest_good_generation(self, tmp_path):
        path = tmp_path / "ck.json"
        generations = [self.snap(q) for q in ("_*.a", "_*.b", "_*.c")]
        for checkpoint in generations:
            checkpoint.save(path, keep=3)
        open(path, "w", encoding="utf-8").write("not json")
        open(f"{path}.1", "w", encoding="utf-8").write("{}")
        assert Checkpoint.load(path).to_dict() == generations[0].to_dict()

    def test_every_generation_bad_raises_the_primary_error(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = self.snap("_*.a")
        checkpoint.save(path, keep=2)
        checkpoint.save(path, keep=2)
        open(path, "w", encoding="utf-8").write("junk")
        open(f"{path}.1", "w", encoding="utf-8").write("junk")
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(path)
