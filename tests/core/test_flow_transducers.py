"""Unit tests for split, join and union transducers."""

import pytest

from repro.conditions.formula import TRUE, Var, disj
from repro.core.flow_transducers import JoinTransducer, SplitTransducer, UnionTransducer
from repro.core.messages import Activation, Close, Contribute, Doc
from repro.errors import EngineError
from repro.xmlstream.events import events_from_tags

V1, V2 = Var(1, "q0"), Var(2, "q0")


def doc(tag):
    return Doc(next(events_from_tags([tag])))


class TestSplit:
    def test_identity(self):
        split = SplitTransducer()
        messages = [Activation(V1), doc("<a>")]
        assert split.feed(messages) == messages


class TestJoin:
    def test_document_emitted_once(self):
        join = JoinTransducer()
        left, right = [doc("<a>")], [doc("<a>")]
        out = join.feed2(left, right)
        assert out == [doc("<a>")]

    def test_branch_extras_collected_before_document(self):
        join = JoinTransducer()
        left = [Activation(V1), doc("<a>")]
        right = [Contribute(V2, TRUE), doc("<a>")]
        out = join.feed2(left, right)
        assert out == [Activation(V1), Contribute(V2, TRUE), doc("<a>")]

    def test_upstream_duplicates_eliminated(self):
        # Messages replicated by the split appear in both inputs exactly
        # once after the join (Sec. III.7: the join removes duplicates).
        join = JoinTransducer()
        shared = Close(V1)
        out = join.feed2([shared, doc("<a>")], [shared, doc("<a>")])
        assert out == [shared, doc("<a>")]

    def test_shared_activation_object_forwarded_once(self):
        join = JoinTransducer()
        shared = Activation(V1)
        out = join.feed2([shared, doc("<a>")], [shared, doc("<a>")])
        assert out == [shared, doc("<a>")]

    def test_equal_but_distinct_activations_both_kept(self):
        # Identity dedup only: downstream disjunction (f v f == f)
        # absorbs equal formulas, so forwarding both is harmless.
        join = JoinTransducer()
        out = join.feed2([Activation(V1), doc("<a>")], [Activation(V1), doc("<a>")])
        assert out == [Activation(V1), Activation(V1), doc("<a>")]

    def test_dedup_ablation_toggle(self):
        join = JoinTransducer(dedup=False)
        shared = Close(V1)
        out = join.feed2([shared, doc("<a>")], [shared, doc("<a>")])
        assert out == [shared, shared, doc("<a>")]

    def test_distinct_activations_both_kept(self):
        join = JoinTransducer()
        out = join.feed2([Activation(V1), doc("<a>")], [Activation(V2), doc("<a>")])
        assert out == [Activation(V1), Activation(V2), doc("<a>")]

    def test_disagreeing_documents_raise(self):
        join = JoinTransducer()
        with pytest.raises(EngineError):
            join.feed2([doc("<a>")], [doc("<b>")])

    def test_single_input_feed_rejected(self):
        with pytest.raises(EngineError):
            JoinTransducer().feed([doc("<a>")])


class TestUnion:
    def test_two_activations_become_disjunction(self):
        union = UnionTransducer()
        assert union.feed([Activation(V1)]) == []
        assert union.feed([Activation(V2)]) == []
        out = union.feed([doc("<a>")])
        assert out == [Activation(disj(V1, V2)), doc("<a>")]

    def test_single_activation_forwarded_on_tag(self):
        union = UnionTransducer()
        union.feed([Activation(V1)])
        out = union.feed([doc("<a>")])
        assert out == [Activation(V1), doc("<a>")]

    def test_no_activation_plain_forward(self):
        union = UnionTransducer()
        assert union.feed([doc("<a>")]) == [doc("<a>")]

    def test_condition_messages_pass(self):
        union = UnionTransducer()
        message = Contribute(V1, TRUE)
        assert union.feed([message]) == [message]
