"""Unit tests for the supervised runner.

The acceptance property: against a source that raises transient errors
or stalls mid-stream, a supervised run yields exactly the matches of an
uninterrupted run — failures cost retries (visible in the report and the
engine's robustness counters), never duplicated or dropped matches.
"""

import os
import time

import pytest

from repro import (
    Checkpoint,
    SpexEngine,
    StallError,
    Supervisor,
    SupervisorConfig,
    supervise,
)
from repro.core.multiquery import MultiQueryEngine
from repro.xmlstream import FlakySource, iter_events

DOC = "<a><a><c/></a><b/><c/><d><b><c/></b></d><a><b/><c><b/></c></a></a>"
QUERY = "_*.a[b].c"

EVENTS = list(iter_events(DOC))
BASELINE = [m.position for m in SpexEngine(QUERY).run(DOC)]


def fast_config(**kwargs):
    """Config with no real sleeping, for quick deterministic tests."""
    kwargs.setdefault("backoff_initial", 0.0)
    kwargs.setdefault("jitter", 0.0)
    return SupervisorConfig(**kwargs)


# ----------------------------------------------------------------------
# FlakySource itself


class TestFlakySource:
    def test_clean_replay(self):
        source = FlakySource(EVENTS)
        assert list(source.connect()) == EVENTS
        assert list(source.connect()) == EVENTS
        assert source.connects == 2

    def test_error_script(self):
        source = FlakySource(EVENTS, script=[("error", 3)])
        connection = source.connect()
        delivered = []
        with pytest.raises(IOError, match="transient"):
            for event in connection:
                delivered.append(event)
        assert delivered == EVENTS[:3]
        # next connection is clean (script exhausted)
        assert list(source.connect()) == EVENTS

    def test_callable_is_connect(self):
        source = FlakySource(EVENTS)
        assert list(source()) == EVENTS
        assert source.connects == 1

    def test_unknown_mode_rejected(self):
        source = FlakySource(EVENTS, script=[("explode", 1)])
        with pytest.raises(ValueError, match="explode"):
            list(source.connect())


# ----------------------------------------------------------------------
# transient errors


class TestTransientErrors:
    def test_single_failure_recovers_losslessly(self):
        source = FlakySource(EVENTS, script=[("error", 7)])
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, source, fast_config())
        assert [m.position for m in supervisor.run()] == BASELINE
        assert supervisor.report.completed
        assert supervisor.report.retries == 1
        assert engine.robustness.retries == 1
        assert engine.robustness.restores == 1

    def test_repeated_failures_recover_losslessly(self):
        script = [("error", 3), ("error", 8), ("error", 15)]
        source = FlakySource(EVENTS, script=script)
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, source, fast_config(max_retries=5))
        assert [m.position for m in supervisor.run()] == BASELINE
        assert source.connects == len(script) + 1
        assert supervisor.report.retries == len(script)

    def test_failure_at_first_event(self):
        source = FlakySource(EVENTS, script=[("error", 0)])
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, source, fast_config())
        assert [m.position for m in supervisor.run()] == BASELINE

    def test_max_retries_exhaustion_propagates(self):
        source = FlakySource(EVENTS, script=[("error", 3)] * 10)
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, source, fast_config(max_retries=2))
        with pytest.raises(IOError):
            list(supervisor.run())

    def test_failure_counter_resets_on_progress(self):
        # Five failures in a row, but each connection advances past the
        # previous failure point — so max_retries=1 still completes.
        script = [("error", k) for k in (3, 6, 9, 12, 15)]
        source = FlakySource(EVENTS, script=script)
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, source, fast_config(max_retries=1))
        assert [m.position for m in supervisor.run()] == BASELINE

    def test_non_transient_errors_propagate_immediately(self):
        bad = "<a><b></a></b>"  # malformed: retrying cannot help
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, lambda: bad, fast_config())
        from repro import StreamError

        with pytest.raises(StreamError):
            list(supervisor.run())
        assert supervisor.report.retries == 0


# ----------------------------------------------------------------------
# stalls


class TestStalls:
    def test_stall_reconnect(self):
        source = FlakySource(EVENTS, script=[("stall", 5)], stall_seconds=5.0)
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(
            engine, source, fast_config(heartbeat_timeout=0.2)
        )
        started = time.monotonic()
        assert [m.position for m in supervisor.run()] == BASELINE
        assert time.monotonic() - started < 5.0  # did not wait out the stall
        assert supervisor.report.stalls == 1
        assert engine.robustness.stalls_detected == 1

    def test_stall_checkpoint_exit(self, tmp_path):
        source = FlakySource(EVENTS, script=[("stall", 5)], stall_seconds=5.0)
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(
            engine,
            source,
            fast_config(
                heartbeat_timeout=0.2,
                on_stall="checkpoint_exit",
                checkpoint_dir=str(tmp_path),
            ),
        )
        delivered = []
        with pytest.raises(StallError):
            for match in supervisor.run():
                delivered.append(match.position)
        path = supervisor.report.last_checkpoint_path
        assert path is not None and os.path.exists(path)
        # a later process resumes from the file and completes losslessly
        checkpoint = Checkpoint.load(path)
        fresh = SpexEngine.from_checkpoint(checkpoint)
        resumed = Supervisor(fresh, FlakySource(EVENTS), fast_config())
        delivered += [m.position for m in resumed.run(checkpoint)]
        assert delivered == BASELINE

    def test_invalid_on_stall_rejected(self):
        with pytest.raises(ValueError, match="on_stall"):
            SupervisorConfig(on_stall="panic")

    def test_no_watchdog_without_heartbeat(self):
        # stall_seconds=0 means the "stall" is instantaneous; without a
        # heartbeat no watchdog thread is involved and the run completes.
        source = FlakySource(EVENTS, script=[("stall", 5)], stall_seconds=0.0)
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, source, fast_config())
        assert [m.position for m in supervisor.run()] == BASELINE
        assert supervisor.report.stalls == 0


# ----------------------------------------------------------------------
# checkpoint cadence


class TestCadence:
    def test_event_cadence(self, tmp_path):
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(
            engine,
            FlakySource(EVENTS),
            fast_config(
                checkpoint_every_events=4, checkpoint_dir=str(tmp_path)
            ),
        )
        assert [m.position for m in supervisor.run()] == BASELINE
        # one per cadence interval plus the final completion checkpoint
        assert supervisor.report.checkpoints_written >= len(EVENTS) // 4
        assert os.path.exists(supervisor.report.last_checkpoint_path)
        # the rolling file is the latest checkpoint: end of stream
        assert Checkpoint.load(
            supervisor.report.last_checkpoint_path
        ).position == len(EVENTS)

    def test_time_cadence(self):
        clock = {"now": 0.0}
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(
            engine,
            FlakySource(EVENTS),
            fast_config(checkpoint_every_seconds=10.0),
            clock=lambda: clock["now"],
        )
        run = supervisor.run()
        # advance the clock mid-stream; the next event boundary checkpoints
        for index, _match in enumerate(run):
            clock["now"] += 7.0
        assert supervisor.report.checkpoints_written >= 2

    def test_no_cadence_no_mid_stream_checkpoints(self):
        engine = SpexEngine(QUERY)
        supervisor = Supervisor(engine, FlakySource(EVENTS), fast_config())
        list(supervisor.run())
        # only the final completion checkpoint
        assert supervisor.report.checkpoints_written == 1


# ----------------------------------------------------------------------
# backoff


class TestBackoff:
    def collect_delays(self, config, failures=4):
        source = FlakySource(EVENTS, script=[("error", 0)] * failures)
        engine = SpexEngine(QUERY)
        slept = []
        supervisor = Supervisor(
            engine, source, config, sleep=slept.append
        )
        list(supervisor.run())
        return slept

    def test_exponential_growth(self):
        delays = self.collect_delays(
            SupervisorConfig(
                max_retries=10,
                backoff_initial=0.1,
                backoff_factor=2.0,
                backoff_max=30.0,
                jitter=0.0,
            )
        )
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_backoff_ceiling(self):
        delays = self.collect_delays(
            SupervisorConfig(
                max_retries=10,
                backoff_initial=10.0,
                backoff_factor=10.0,
                backoff_max=15.0,
                jitter=0.0,
            )
        )
        assert delays == [10.0, 15.0, 15.0, 15.0]

    def test_jitter_is_seeded_and_bounded(self):
        config = dict(
            max_retries=10,
            backoff_initial=1.0,
            backoff_factor=1.0,
            backoff_max=30.0,
            jitter=0.25,
        )
        first = self.collect_delays(SupervisorConfig(seed=42, **config))
        second = self.collect_delays(SupervisorConfig(seed=42, **config))
        assert first == second  # reproducible
        assert all(0.75 <= delay <= 1.25 for delay in first)
        assert len(set(first)) > 1  # actually jittered


# ----------------------------------------------------------------------
# engines × supervisor


class TestAcrossEngines:
    def test_multiquery_supervised(self):
        queries = {"plain": "_*.a", "qualified": QUERY}
        baseline = [
            (query_id, match.position)
            for query_id, match in MultiQueryEngine(queries).run(DOC)
        ]
        source = FlakySource(EVENTS, script=[("error", 6), ("error", 14)])
        engine = MultiQueryEngine(queries)
        supervisor = Supervisor(engine, source, fast_config(max_retries=4))
        got = [
            (query_id, match.position) for query_id, match in supervisor.run()
        ]
        assert got == baseline
        assert engine.robustness.retries == 2

    def test_supervise_convenience(self):
        source = FlakySource(EVENTS, script=[("error", 7)])
        engine = SpexEngine(QUERY)
        matches = supervise(
            engine, source, max_retries=3, backoff_initial=0.0, jitter=0.0
        )
        assert [m.position for m in matches] == BASELINE
