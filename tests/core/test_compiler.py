"""Unit tests for the rpeq -> network translation (Fig. 11)."""

import pytest

from repro.core.compiler import compile_network
from repro.core.flow_transducers import JoinTransducer, SplitTransducer, UnionTransducer
from repro.core.output_tx import OutputTransducer
from repro.core.path_transducers import ChildTransducer, ClosureTransducer, InputTransducer
from repro.core.qualifier_transducers import (
    VariableCreator,
    VariableDeterminant,
    VariableFilter,
)
from repro.rpeq.generate import query_family
from repro.rpeq.parser import parse


def kinds(query, optimize=False):
    """Node kinds of the compiled network (literal Fig. 11 by default)."""
    network, _ = compile_network(parse(query), optimize=optimize)
    return [type(node).__name__ for node in network.nodes]


class TestShapes:
    def test_label_is_child_transducer(self):
        assert kinds("a") == ["InputTransducer", "ChildTransducer", "OutputTransducer"]

    def test_plus_is_closure_transducer(self):
        assert kinds("a+") == ["InputTransducer", "ClosureTransducer", "OutputTransducer"]

    def test_star_adds_bypass(self):
        assert kinds("a*") == [
            "InputTransducer",
            "SplitTransducer",
            "ClosureTransducer",
            "JoinTransducer",
            "OutputTransducer",
        ]

    def test_star_fused_when_optimizing(self):
        assert kinds("a*", optimize=True) == [
            "InputTransducer",
            "StarTransducer",
            "OutputTransducer",
        ]

    def test_optimized_and_literal_agree(self):
        from repro import SpexEngine
        from ..conftest import PAPER_DOC

        for query in ("_*", "_*.c", "a*.c", "_*.a[b].c", "c*"):
            literal = SpexEngine(query, optimize=False).positions(PAPER_DOC)
            fused = SpexEngine(query, optimize=True).positions(PAPER_DOC)
            assert literal == fused, query

    def test_optional_adds_bypass(self):
        assert kinds("a?") == [
            "InputTransducer",
            "SplitTransducer",
            "ChildTransducer",
            "JoinTransducer",
            "OutputTransducer",
        ]

    def test_union_shape(self):
        assert kinds("(a|b)") == [
            "InputTransducer",
            "SplitTransducer",
            "ChildTransducer",
            "ChildTransducer",
            "JoinTransducer",
            "UnionTransducer",
            "OutputTransducer",
        ]

    def test_qualifier_shape_matches_fig_12(self):
        assert kinds("a[b]") == [
            "InputTransducer",
            "ChildTransducer",       # CH(a)
            "VariableCreator",       # VC(q)
            "SplitTransducer",       # SP
            "ChildTransducer",       # CH(b)   (branch)
            "VariableFilter",        # VF(q+)
            "VariableDeterminant",   # VD
            "JoinTransducer",        # JO
            "OutputTransducer",
        ]

    def test_empty_query_is_passthrough(self):
        assert kinds("") == ["InputTransducer", "OutputTransducer"]

    def test_concatenation_chains(self):
        assert kinds("a.b.c").count("ChildTransducer") == 3


class TestLinearity:
    """Lemma V.1: network degree and translation are linear in |query|."""

    def test_degree_linear_in_steps(self):
        degrees = []
        for steps in (4, 8, 16):
            network, _ = compile_network(query_family(steps, 0))
            degrees.append(network.degree)
        assert degrees[2] - degrees[1] == 2 * (degrees[1] - degrees[0])

    def test_degree_linear_with_qualifiers(self):
        degrees = []
        for steps in (4, 8, 16):
            network, _ = compile_network(query_family(steps, steps))
            degrees.append(network.degree)
        assert degrees[2] - degrees[1] == 2 * (degrees[1] - degrees[0])

    def test_constant_nodes_per_construct(self):
        base = compile_network(parse("a"))[0].degree
        one_qualifier = compile_network(parse("a[b]"))[0].degree
        two_qualifiers = compile_network(parse("a[b][b]"))[0].degree
        assert two_qualifiers - one_qualifier == one_qualifier - base


class TestQualifierOwnership:
    def test_nested_qualifier_ids_distinct(self):
        network, _ = compile_network(parse("a[b[c]]"))
        creators = [n for n in network.nodes if isinstance(n, VariableCreator)]
        assert len(creators) == 2
        assert creators[0].qualifier != creators[1].qualifier

    def test_filter_owns_nested_qualifiers(self):
        network, _ = compile_network(parse("a[b[c]]"))
        filters = [n for n in network.nodes if isinstance(n, VariableFilter)]
        owned_sizes = sorted(len(f.owned) for f in filters)
        # The inner filter owns 1 qualifier, the outer owns both.
        assert owned_sizes == [1, 2]


class TestFreshNetworks:
    def test_compilations_are_independent(self):
        expr = parse("_*.a[b]")
        n1, s1 = compile_network(expr)
        n2, s2 = compile_network(expr)
        assert n1 is not n2 and s1 is not s2
        assert {id(t) for t in n1.nodes}.isdisjoint({id(t) for t in n2.nodes})
