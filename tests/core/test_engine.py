"""Unit tests for the SpexEngine facade."""

import pytest

from repro import SpexEngine, evaluate
from repro.errors import QuerySyntaxError
from repro.rpeq.parser import parse

from ..conftest import PAPER_DOC


class TestEvaluation:
    def test_accepts_query_string(self):
        assert SpexEngine("a.c").positions(PAPER_DOC) == [5]

    def test_accepts_ast(self):
        assert SpexEngine(parse("a.c")).positions(PAPER_DOC) == [5]

    def test_bad_query_raises_at_construction(self):
        with pytest.raises(QuerySyntaxError):
            SpexEngine("a..b")

    def test_evaluate_returns_matches(self):
        matches = SpexEngine("_*.c").evaluate(PAPER_DOC)
        assert [m.label for m in matches] == ["c", "c"]

    def test_count(self):
        assert SpexEngine("_*._").count(PAPER_DOC) == 5

    def test_module_level_convenience(self):
        assert [m.position for m in evaluate("a.c", PAPER_DOC)] == [5]

    def test_engine_reusable_across_runs(self):
        engine = SpexEngine("a.c")
        assert engine.positions(PAPER_DOC) == engine.positions(PAPER_DOC)

    def test_accepts_event_iterable(self):
        from repro.xmlstream.parser import parse_string

        assert SpexEngine("a.c").positions(parse_string(PAPER_DOC)) == [5]

    def test_run_is_lazy(self):
        """No stream consumption before the first next()."""
        consumed = []

        def stream():
            from repro.xmlstream.parser import parse_string

            for event in parse_string(PAPER_DOC):
                consumed.append(event)
                yield event

        iterator = SpexEngine("_*._").run(stream())
        assert consumed == []
        next(iterator)
        assert 0 < len(consumed) < 12


class TestPositionsOnlyMode:
    def test_matches_carry_no_events(self):
        engine = SpexEngine("a.c", collect_events=False)
        (match,) = engine.evaluate(PAPER_DOC)
        assert match.events is None
        assert match.position == 5


class TestStats:
    def test_stats_populated_after_run(self):
        engine = SpexEngine("_*.a[b].c")
        engine.evaluate(PAPER_DOC)
        stats = engine.stats
        assert stats.network.events == 12
        assert stats.network.degree == engine.network_degree()
        assert stats.condition_variables == 2  # two a-elements qualified
        assert stats.query.qualifiers == 1

    def test_network_degree_without_run(self):
        assert SpexEngine("a").network_degree() == 3

    def test_describe_network(self):
        text = SpexEngine("a[b]").describe_network()
        assert "VC(q0)" in text and "VD(q0)" in text


class TestDocumentsWithText:
    def test_text_preserved_in_fragments(self):
        doc = "<r><a><b>hello</b></a></r>"
        (match,) = SpexEngine("_*.a").evaluate(doc)
        assert match.to_xml() == "<a><b>hello</b></a>"

    def test_text_does_not_affect_matching(self):
        doc = "<r>x<a>y</a>z</r>"
        assert SpexEngine("r.a").positions(doc) == [2]


class TestConveniences:
    def test_first(self):
        match = SpexEngine("_*.c").first(PAPER_DOC)
        assert match is not None and match.position == 3

    def test_first_none_when_empty(self):
        assert SpexEngine("x").first(PAPER_DOC) is None

    def test_first_short_circuits(self):
        consumed = []

        def stream():
            from repro.xmlstream.parser import parse_string

            for event in parse_string(PAPER_DOC):
                consumed.append(event)
                yield event

        SpexEngine("_*.a", collect_events=False).first(stream())
        assert len(consumed) < 12

    def test_exists(self):
        assert SpexEngine("_*.b").exists(PAPER_DOC)
        assert not SpexEngine("_*.x").exists(PAPER_DOC)


class TestMatchHelpers:
    def test_text(self):
        doc = "<r><a>hello <b>wor</b>ld</a></r>"
        (match,) = SpexEngine("r.a").evaluate(doc)
        assert match.text() == "hello world"

    def test_size(self):
        doc = "<r><a><b/><c><d/></c></a></r>"
        (match,) = SpexEngine("r.a").evaluate(doc)
        assert match.size() == 4

    def test_helpers_require_events(self):
        import pytest as _pytest

        (match,) = SpexEngine("a", collect_events=False).evaluate("<a/>")
        with _pytest.raises(ValueError):
            match.text()
        with _pytest.raises(ValueError):
            match.size()


class TestStatsSummary:
    def test_summary_lines(self):
        engine = SpexEngine("_*.a[b].c")
        engine.evaluate(PAPER_DOC)
        summary = engine.stats.summary()
        assert "rpeq*[]" in summary
        assert "events processed      : 12" in summary
        assert "condition variables   : 2" in summary

    def test_summary_without_run(self):
        summary = SpexEngine("a").stats.summary()
        assert "events processed      : 0" in summary


class TestEarlyExitOnInfiniteStreams:
    """first()/exists() must close the run generator on early exit, so a
    match decision on an unbounded source stops reading immediately."""

    def test_first_on_infinite_ticker(self):
        from repro.workloads import stock_ticker

        pulled = {"events": 0}

        def metered():
            for event in stock_ticker(seed=7):  # no limit: endless
                pulled["events"] += 1
                yield event

        match = SpexEngine("_*.trade.price").first(metered())
        assert match is not None and match.label == "price"
        # the decision needed only the first trade's worth of events
        assert pulled["events"] < 20

    def test_exists_on_infinite_ticker(self):
        from repro.workloads import stock_ticker

        assert SpexEngine("_*.trade[alert]").exists(stock_ticker(seed=7))

    def test_first_closes_the_source_generator(self):
        from repro.workloads import stock_ticker

        closed = {"flag": False}

        def tracked():
            try:
                yield from stock_ticker(seed=7)
            finally:
                closed["flag"] = True

        SpexEngine("_*.trade").first(tracked())
        assert closed["flag"], "early exit must close the source, not leak it"

    def test_first_none_on_finite_miss(self):
        assert SpexEngine("_*.zz").first("<a><b/></a>") is None
