"""Unit tests for network construction and execution."""

import pytest

from repro.conditions.store import ConditionStore
from repro.core.flow_transducers import JoinTransducer, SplitTransducer
from repro.core.network import Network
from repro.core.output_tx import OutputTransducer
from repro.core.path_transducers import ChildTransducer, InputTransducer
from repro.errors import EngineError
from repro.rpeq.ast import Label
from repro.xmlstream.events import events_from_tags


def paper_events():
    return events_from_tags(
        ["<$>", "<a>", "<a>", "<c>", "</c>", "</a>", "<b>", "</b>",
         "<c>", "</c>", "</a>", "</$>"]
    )


def build_simple(query_labels):
    """IN -> CH(l1) -> ... -> OU network."""
    store = ConditionStore()
    source = InputTransducer()
    sink = OutputTransducer(store)
    network = Network(source, sink)
    tape = source
    for label in query_labels:
        tape = network.add(ChildTransducer(Label(label)), tape)
    network.add(sink, tape)
    network.finalize()
    return network


class TestConstruction:
    def test_degree_counts_all_nodes(self):
        assert build_simple(["a", "c"]).degree == 4

    def test_join_requires_two_predecessors(self):
        source = InputTransducer()
        network = Network(source)
        with pytest.raises(EngineError):
            network.add(JoinTransducer(), source)

    def test_non_join_requires_one_predecessor(self):
        source = InputTransducer()
        network = Network(source)
        split = network.add(SplitTransducer(), source)
        with pytest.raises(EngineError):
            network.add(ChildTransducer(Label("a")), split, source)

    def test_predecessor_must_exist(self):
        network = Network(InputTransducer())
        with pytest.raises(EngineError):
            network.add(ChildTransducer(Label("a")), ChildTransducer(Label("x")))

    def test_add_after_finalize_rejected(self):
        network = build_simple(["a"])
        with pytest.raises(EngineError):
            network.add(ChildTransducer(Label("z")), network.source)

    def test_process_before_finalize_rejected(self):
        network = Network(InputTransducer())
        with pytest.raises(EngineError):
            network.process_event(next(paper_events()))

    def test_duplicate_names_disambiguated(self):
        store = ConditionStore()
        source = InputTransducer()
        sink = OutputTransducer(store)
        network = Network(source, sink)
        t1 = network.add(ChildTransducer(Label("a")), source)
        t2 = network.add(ChildTransducer(Label("a")), t1)
        network.add(sink, t2)
        network.finalize()
        assert t1.name != t2.name

    def test_describe_lists_wiring(self):
        text = build_simple(["a", "c"]).describe()
        assert "IN <- (source)" in text
        assert "CH(a) <- IN" in text


class TestExecution:
    def test_example_III_1_end_to_end(self):
        network = build_simple(["a", "c"])
        matches = [m for e in paper_events() for m in network.process_event(e)]
        assert [m.position for m in matches] == [5]

    def test_run_convenience(self):
        network = build_simple(["a", "c"])
        assert [m.position for m in network.run(paper_events())] == [5]

    def test_sinkless_network_returns_nothing(self):
        network = Network(InputTransducer())
        network.finalize()
        assert [network.process_event(e) for e in paper_events()] == [[]] * 12


class TestStats:
    def test_stats_rollup(self):
        network = build_simple(["a", "c"])
        list(network.run(paper_events()))
        stats = network.stats()
        assert stats.degree == 4
        assert stats.events == 12
        assert stats.max_stack == 4  # $, a, a, c  in the first CH
        assert "CH(a)" in stats.per_transducer

    def test_stack_bound_is_depth_plus_one(self):
        network = build_simple(["a"])
        list(network.run(paper_events()))
        # document depth 3, +1 for the envelope
        assert network.stats().max_stack <= 4
