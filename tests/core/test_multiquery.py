"""Unit tests for the multi-query (SDI) engine."""

import pytest

from repro.core.multiquery import MultiQueryEngine
from repro.errors import StreamError
from repro.xmlstream import ErrorReport, events_from_tags

from ..conftest import PAPER_DOC


class TestRun:
    def test_mapping_interface(self):
        engine = MultiQueryEngine({"q1": "a.c", "q2": "_*.b"})
        results = engine.evaluate(PAPER_DOC)
        assert [m.position for m in results["q1"]] == [5]
        assert [m.position for m in results["q2"]] == [4]

    def test_iterable_interface_uses_text_as_id(self):
        engine = MultiQueryEngine(["a.c", "_*.b"])
        results = engine.evaluate(PAPER_DOC)
        assert set(results) == {"a.c", "_*.b"}

    def test_single_pass_sharing(self):
        """The stream is consumed once for all queries."""
        from repro.xmlstream.parser import parse_string

        events = list(parse_string(PAPER_DOC))
        reads = []

        def stream():
            for event in events:
                reads.append(event)
                yield event

        engine = MultiQueryEngine({"q1": "_*.c", "q2": "_*.b"})
        engine.evaluate(stream())
        assert len(reads) == len(events)

    def test_len(self):
        assert len(MultiQueryEngine(["a", "b"])) == 2

    def test_results_tagged_progressively(self):
        engine = MultiQueryEngine({"all": "_*._"})
        seen = list(engine.run(PAPER_DOC))
        assert [(qid, m.position) for qid, m in seen] == [
            ("all", 1), ("all", 2), ("all", 3), ("all", 4), ("all", 5),
        ]


class TestFilterDocuments:
    def test_boolean_matching(self):
        engine = MultiQueryEngine({"has-b": "_*.b", "has-x": "_*.x"})
        assert engine.filter_documents(PAPER_DOC) == {"has-b": True, "has-x": False}

    def test_short_circuit_does_not_change_answers(self):
        queries = {"q1": "a.c", "q2": "_*.a[b]", "q3": "x"}
        engine = MultiQueryEngine(queries)
        filtered = engine.filter_documents(PAPER_DOC)
        full = {k: bool(v) for k, v in engine.evaluate(PAPER_DOC).items()}
        assert filtered == full

    def test_qualifier_queries_supported(self):
        engine = MultiQueryEngine({"q": "_*.a[b]"})
        assert engine.filter_documents(PAPER_DOC)["q"] is True


class TestFilterDocumentsRecovery:
    """SDI robustness: one poisoned document in a multi-document feed."""

    #: Three subscriber documents; the middle one has a mismatched end
    #: tag and must be quarantined under SKIP_DOCUMENT.
    DOC_A = ["<$>", "<a>", "<b>", "</b>", "</a>", "</$>"]
    DOC_BAD = ["<$>", "<c>", "</d>", "</$>"]
    DOC_C = ["<$>", "<c>", "</c>", "</$>"]
    QUERIES = {"has-b": "_*.b", "has-c": "_*.c", "has-x": "_*.x"}

    def stream(self):
        return events_from_tags(self.DOC_A + self.DOC_BAD + self.DOC_C)

    def test_strict_multi_document_poisons_the_run(self):
        engine = MultiQueryEngine(self.QUERIES)
        with pytest.raises(StreamError):
            list(engine.run(self.stream()))

    def test_skip_keeps_remaining_verdicts_correct(self):
        engine = MultiQueryEngine(self.QUERIES)
        report = ErrorReport()
        verdicts = engine.filter_documents(
            self.stream(), on_error="skip", report=report
        )
        # has-c matches document C even though the only other <c> sat in
        # the quarantined document; has-b matches document A; has-x no one.
        assert verdicts == {"has-b": True, "has-c": True, "has-x": False}
        assert report.documents_seen == 3
        assert report.documents_skipped == 1
        [record] = report.records
        assert record.document == 1 and record.action == "skipped"

    def test_skip_excludes_the_bad_documents_matches(self):
        # Only the quarantined document contains <d>: under skip, the
        # verdict must be False — no silent wrong answers either way.
        engine = MultiQueryEngine({"has-d": "_*.d"})
        verdicts = engine.filter_documents(
            events_from_tags(
                self.DOC_A
                + ["<$>", "<d>", "</d>", "<c>", "</$>"]  # malformed, has <d>
                + self.DOC_C
            ),
            on_error="skip",
        )
        assert verdicts == {"has-d": False}

    def test_repair_recovers_the_bad_documents_content(self):
        engine = MultiQueryEngine(self.QUERIES)
        report = ErrorReport()
        verdicts = engine.filter_documents(
            self.stream(), on_error="repair", report=report
        )
        # Repair drops the orphan </d> but keeps <c>…</c>: has-c now also
        # matches the repaired middle document.
        assert verdicts == {"has-b": True, "has-c": True, "has-x": False}
        assert report.documents_skipped == 0
        assert not report.ok

    def test_filter_stream_yields_per_surviving_document(self):
        engine = MultiQueryEngine(self.QUERIES)
        report = ErrorReport()
        verdicts = list(
            engine.filter_stream(self.stream(), on_error="skip", report=report)
        )
        assert verdicts == [
            {"has-b": True, "has-c": False, "has-x": False},
            {"has-b": False, "has-c": True, "has-x": False},
        ]
        assert report.documents_skipped == 1

    def test_run_skips_bad_document_matches(self):
        engine = MultiQueryEngine(self.QUERIES)
        report = ErrorReport()
        tagged = list(engine.run(self.stream(), on_error="skip", report=report))
        assert [(qid, m.position) for qid, m in tagged] == [
            ("has-b", 2),
            ("has-c", 1),
        ]
        assert report.documents_skipped == 1


class TestSharedNetworkEngine:
    def test_results_match_independent_engines(self):
        from repro.core.multiquery import SharedNetworkEngine

        queries = {"q1": "_*.a.c", "q2": "_*.a.b", "q3": "_*.a[b].c", "q4": "a.c"}
        shared = SharedNetworkEngine(queries).evaluate(PAPER_DOC)
        plain = MultiQueryEngine(queries).evaluate(PAPER_DOC)
        assert {k: [m.position for m in v] for k, v in shared.items()} == {
            k: [m.position for m in v] for k, v in plain.items()
        }

    def test_prefix_sharing_reduces_degree(self):
        from repro.core.compiler import compile_network
        from repro.core.multiquery import SharedNetworkEngine

        queries = {
            "names": "_*.country.name",
            "pops": "_*.country.population",
            "cities": "_*.country.province.city",
        }
        engine = SharedNetworkEngine(queries)
        independent = sum(
            compile_network(expr, collect_events=False)[0].degree
            for expr in engine.queries.values()
        )
        assert engine.network_degree() < independent

    def test_shared_qualifier_prefix(self):
        """Two sinks downstream of ONE variable-creator: exercises the
        store's broadcast/retain/deferred-release protocol."""
        from repro.core.multiquery import SharedNetworkEngine

        queries = {"q1": "_*.a[b].c", "q2": "_*.a[b].b"}
        shared = SharedNetworkEngine(queries).evaluate(PAPER_DOC)
        plain = MultiQueryEngine(queries).evaluate(PAPER_DOC)
        assert {k: [m.position for m in v] for k, v in shared.items()} == {
            k: [m.position for m in v] for k, v in plain.items()
        }
        # The qualified prefix is compiled once: only one VC in the net.
        from repro.core.qualifier_transducers import VariableCreator

        network, _sinks = SharedNetworkEngine(queries).compile()
        creators = [n for n in network.nodes if isinstance(n, VariableCreator)]
        assert len(creators) == 1

    def test_randomized_equivalence(self, rng):
        from repro.core.multiquery import SharedNetworkEngine
        from repro.rpeq import GeneratorConfig, random_rpeq

        from ..conftest import make_random_events

        config = GeneratorConfig(max_depth=3)
        for _ in range(15):
            queries = {
                f"q{i}": random_rpeq(rng, config) for i in range(4)
            }
            events = make_random_events(rng)
            shared = SharedNetworkEngine(queries).evaluate(iter(events))
            plain = MultiQueryEngine(queries).evaluate(iter(events))
            assert {k: [m.position for m in v] for k, v in shared.items()} == {
                k: [m.position for m in v] for k, v in plain.items()
            }

    def test_identical_queries_share_everything_but_sinks(self):
        from repro.core.multiquery import SharedNetworkEngine

        engine = SharedNetworkEngine({"a": "_*.c", "b": "_*.c"})
        network, sinks = engine.compile()
        # IN + DS + CH + two sinks.
        assert network.degree == 5
        results = engine.evaluate(PAPER_DOC)
        assert [m.position for m in results["a"]] == [3, 5]
        assert [m.position for m in results["b"]] == [3, 5]

    def test_store_released_after_run(self):
        from repro.core.multiquery import SharedNetworkEngine

        engine = SharedNetworkEngine({"q1": "_*.a[b].c", "q2": "_*.a[c]"})
        network, sinks = engine.compile()
        from repro.xmlstream.parser import parse_string

        for event in parse_string(PAPER_DOC):
            network.process_event(event)
        assert len(network.condition_store._states) == 0
