"""Unit tests for the multi-query (SDI) engine."""

from repro.core.multiquery import MultiQueryEngine

from ..conftest import PAPER_DOC


class TestRun:
    def test_mapping_interface(self):
        engine = MultiQueryEngine({"q1": "a.c", "q2": "_*.b"})
        results = engine.evaluate(PAPER_DOC)
        assert [m.position for m in results["q1"]] == [5]
        assert [m.position for m in results["q2"]] == [4]

    def test_iterable_interface_uses_text_as_id(self):
        engine = MultiQueryEngine(["a.c", "_*.b"])
        results = engine.evaluate(PAPER_DOC)
        assert set(results) == {"a.c", "_*.b"}

    def test_single_pass_sharing(self):
        """The stream is consumed once for all queries."""
        from repro.xmlstream.parser import parse_string

        events = list(parse_string(PAPER_DOC))
        reads = []

        def stream():
            for event in events:
                reads.append(event)
                yield event

        engine = MultiQueryEngine({"q1": "_*.c", "q2": "_*.b"})
        engine.evaluate(stream())
        assert len(reads) == len(events)

    def test_len(self):
        assert len(MultiQueryEngine(["a", "b"])) == 2

    def test_results_tagged_progressively(self):
        engine = MultiQueryEngine({"all": "_*._"})
        seen = list(engine.run(PAPER_DOC))
        assert [(qid, m.position) for qid, m in seen] == [
            ("all", 1), ("all", 2), ("all", 3), ("all", 4), ("all", 5),
        ]


class TestFilterDocuments:
    def test_boolean_matching(self):
        engine = MultiQueryEngine({"has-b": "_*.b", "has-x": "_*.x"})
        assert engine.filter_documents(PAPER_DOC) == {"has-b": True, "has-x": False}

    def test_short_circuit_does_not_change_answers(self):
        queries = {"q1": "a.c", "q2": "_*.a[b]", "q3": "x"}
        engine = MultiQueryEngine(queries)
        filtered = engine.filter_documents(PAPER_DOC)
        full = {k: bool(v) for k, v in engine.evaluate(PAPER_DOC).items()}
        assert filtered == full

    def test_qualifier_queries_supported(self):
        engine = MultiQueryEngine({"q": "_*.a[b]"})
        assert engine.filter_documents(PAPER_DOC)["q"] is True


class TestSharedNetworkEngine:
    def test_results_match_independent_engines(self):
        from repro.core.multiquery import SharedNetworkEngine

        queries = {"q1": "_*.a.c", "q2": "_*.a.b", "q3": "_*.a[b].c", "q4": "a.c"}
        shared = SharedNetworkEngine(queries).evaluate(PAPER_DOC)
        plain = MultiQueryEngine(queries).evaluate(PAPER_DOC)
        assert {k: [m.position for m in v] for k, v in shared.items()} == {
            k: [m.position for m in v] for k, v in plain.items()
        }

    def test_prefix_sharing_reduces_degree(self):
        from repro.core.compiler import compile_network
        from repro.core.multiquery import SharedNetworkEngine

        queries = {
            "names": "_*.country.name",
            "pops": "_*.country.population",
            "cities": "_*.country.province.city",
        }
        engine = SharedNetworkEngine(queries)
        independent = sum(
            compile_network(expr, collect_events=False)[0].degree
            for expr in engine.queries.values()
        )
        assert engine.network_degree() < independent

    def test_shared_qualifier_prefix(self):
        """Two sinks downstream of ONE variable-creator: exercises the
        store's broadcast/retain/deferred-release protocol."""
        from repro.core.multiquery import SharedNetworkEngine

        queries = {"q1": "_*.a[b].c", "q2": "_*.a[b].b"}
        shared = SharedNetworkEngine(queries).evaluate(PAPER_DOC)
        plain = MultiQueryEngine(queries).evaluate(PAPER_DOC)
        assert {k: [m.position for m in v] for k, v in shared.items()} == {
            k: [m.position for m in v] for k, v in plain.items()
        }
        # The qualified prefix is compiled once: only one VC in the net.
        from repro.core.qualifier_transducers import VariableCreator

        network, _sinks = SharedNetworkEngine(queries).compile()
        creators = [n for n in network.nodes if isinstance(n, VariableCreator)]
        assert len(creators) == 1

    def test_randomized_equivalence(self, rng):
        from repro.core.multiquery import SharedNetworkEngine
        from repro.rpeq import GeneratorConfig, random_rpeq

        from ..conftest import make_random_events

        config = GeneratorConfig(max_depth=3)
        for _ in range(15):
            queries = {
                f"q{i}": random_rpeq(rng, config) for i in range(4)
            }
            events = make_random_events(rng)
            shared = SharedNetworkEngine(queries).evaluate(iter(events))
            plain = MultiQueryEngine(queries).evaluate(iter(events))
            assert {k: [m.position for m in v] for k, v in shared.items()} == {
                k: [m.position for m in v] for k, v in plain.items()
            }

    def test_identical_queries_share_everything_but_sinks(self):
        from repro.core.multiquery import SharedNetworkEngine

        engine = SharedNetworkEngine({"a": "_*.c", "b": "_*.c"})
        network, sinks = engine.compile()
        # IN + DS + CH + two sinks.
        assert network.degree == 5
        results = engine.evaluate(PAPER_DOC)
        assert [m.position for m in results["a"]] == [3, 5]
        assert [m.position for m in results["b"]] == [3, 5]

    def test_store_released_after_run(self):
        from repro.core.multiquery import SharedNetworkEngine

        engine = SharedNetworkEngine({"q1": "_*.a[b].c", "q2": "_*.a[c]"})
        network, sinks = engine.compile()
        from repro.xmlstream.parser import parse_string

        for event in parse_string(PAPER_DOC):
            network.process_event(event)
        assert len(network.condition_store._states) == 0
