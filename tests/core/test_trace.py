"""Unit tests for the transition tracer (Figs. 4/5/13 reproduction)."""

from repro.core.trace import Tracer, trace_run
from repro.xmlstream.parser import parse_string

from ..conftest import PAPER_DOC


class TestTraceRun:
    def test_example_III_1_table_shape(self):
        table = trace_run("a.c", PAPER_DOC)
        lines = table.splitlines()
        # Header lists the 12 stream messages of Fig. 1.
        assert lines[0].count("<") == 12
        # One row per transducer: IN, CH(a), CH(c), OU.
        assert len(lines) == 2 + 4

    def test_matches_recorded(self):
        tracer = Tracer("a.c")
        tracer.feed(parse_string(PAPER_DOC))
        assert [m.position for m in tracer.matches] == [5]

    def test_child_match_marked(self):
        table = trace_run("a.c", PAPER_DOC)
        ch_c = next(line for line in table.splitlines() if line.startswith("CH(c)"))
        assert "M" in ch_c  # the second <c> matches

    def test_variable_lifecycle_marked(self):
        table = trace_run("_*.a[b].c", PAPER_DOC)
        vc = next(line for line in table.splitlines() if line.startswith("VC(q0)"))
        cells = vc.split("|", 1)[1]
        # Two instances created (the two <a>), two scope closes.
        assert cells.count("V") == 2
        assert cells.count("F") == 2

    def test_determination_marked(self):
        table = trace_run("_*.a[b].c", PAPER_DOC)
        vd = next(line for line in table.splitlines() if line.startswith("VD(q0)"))
        assert "T" in vd  # the <b> satisfies the outer instance

    def test_candidates_and_result_marked(self):
        table = trace_run("_*.a[b].c", PAPER_DOC)
        ou = next(line for line in table.splitlines() if line.startswith("OU"))
        assert ou.count("C") == 2  # candidate1 (dropped) and candidate2
        assert ou.count("R") == 1  # only candidate2 emitted

    def test_literal_and_optimized_traces_agree_on_matches(self):
        fused = Tracer("_*.c", optimize=True)
        fused.feed(parse_string(PAPER_DOC))
        literal = Tracer("_*.c", optimize=False)
        literal.feed(parse_string(PAPER_DOC))
        assert [m.position for m in fused.matches] == [
            m.position for m in literal.matches
        ]
