"""Unit tests for the SDI dispatcher."""

import pytest

from repro.core.dispatch import Dispatcher

from ..conftest import PAPER_DOC


class TestSubscriptions:
    def test_deliveries_counted(self):
        dispatcher = Dispatcher()
        received = []
        dispatcher.subscribe("cs", "_*.c", received.append)
        report = dispatcher.dispatch(PAPER_DOC)
        assert report.delivered == {"cs": 2}
        assert [m.position for m in received] == [3, 5]

    def test_multiple_callbacks_per_subscription(self):
        dispatcher = Dispatcher()
        first, second = [], []
        dispatcher.subscribe("b", "_*.b", first.append)
        dispatcher.subscribe("b", "_*.b", second.append)
        dispatcher.dispatch(PAPER_DOC)
        assert len(first) == len(second) == 1

    def test_conflicting_requery_rejected(self):
        dispatcher = Dispatcher()
        dispatcher.subscribe("x", "_*.a", lambda m: None)
        with pytest.raises(ValueError):
            dispatcher.subscribe("x", "_*.b", lambda m: None)

    def test_unsubscribe(self):
        dispatcher = Dispatcher()
        dispatcher.subscribe("x", "_*.a", lambda m: None)
        dispatcher.unsubscribe("x")
        assert len(dispatcher) == 0
        assert dispatcher.dispatch(PAPER_DOC).total_delivered == 0

    def test_empty_dispatcher(self):
        assert Dispatcher().dispatch(PAPER_DOC).total_delivered == 0


class TestIsolation:
    def test_failing_callback_does_not_stall_others(self):
        dispatcher = Dispatcher()
        received = []

        def broken(match):
            raise RuntimeError("subscriber bug")

        dispatcher.subscribe("broken", "_*.c", broken)
        dispatcher.subscribe("ok", "_*.c", received.append)
        report = dispatcher.dispatch(PAPER_DOC)
        assert len(received) == 2
        assert report.delivered == {"broken": 2, "ok": 2}
        assert len(report.failures["broken"]) == 2

    def test_failure_recorded_with_exception(self):
        dispatcher = Dispatcher()
        dispatcher.subscribe("x", "_*.b", lambda m: 1 / 0)
        report = dispatcher.dispatch(PAPER_DOC)
        assert isinstance(report.failures["x"][0], ZeroDivisionError)


class TestFragments:
    def test_matches_carry_fragments_by_default(self):
        dispatcher = Dispatcher()
        seen = []
        dispatcher.subscribe("a", "a.c", seen.append)
        dispatcher.dispatch(PAPER_DOC)
        assert seen[0].to_xml() == "<c></c>"

    def test_positions_only_mode(self):
        dispatcher = Dispatcher(collect_events=False)
        seen = []
        dispatcher.subscribe("a", "a.c", seen.append)
        dispatcher.dispatch(PAPER_DOC)
        assert seen[0].events is None
