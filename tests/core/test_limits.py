"""Resource guards: depth, σ, buffers, per-document budgets."""

import pytest

from repro import ResourceLimitError, ResourceLimits, SpexEngine
from repro.core.multiquery import MultiQueryEngine
from repro.xmlstream import ErrorReport, events_from_tags


class TestResourceLimitsConfig:
    def test_defaults_are_unbounded(self):
        assert ResourceLimits().unbounded

    def test_any_bound_arms_the_guards(self):
        assert not ResourceLimits(max_depth=5).unbounded

    def test_nonpositive_bounds_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            ResourceLimits(max_depth=0)
        with pytest.raises(ValueError, match="max_seconds_per_document"):
            ResourceLimits(max_seconds_per_document=0.0)

    def test_unknown_overflow_policy_rejected(self):
        with pytest.raises(ValueError, match="on_buffer_overflow"):
            ResourceLimits(on_buffer_overflow="panic")


class TestDepthGuard:
    def test_depth_bomb_rejected(self):
        depth = 500
        doc = "<a>" * depth + "</a>" * depth
        engine = SpexEngine("_*.z", limits=ResourceLimits(max_depth=100))
        with pytest.raises(ResourceLimitError) as info:
            engine.count(doc)
        assert info.value.limit == "max_depth"

    def test_compliant_stream_unaffected(self):
        engine = SpexEngine("_*.b", limits=ResourceLimits(max_depth=100))
        assert engine.count("<a><b/></a>") == 1

    def test_endless_descent_terminates(self):
        # The paper's infinite-stream stability claim, adversarial
        # version: a stream that only ever opens elements must be cut
        # off by the guard, not buffer forever.
        def descent():
            yield from events_from_tags(["<$>"] + ["<a>"] * 10_000)

        engine = SpexEngine("_*.a[b]", limits=ResourceLimits(max_depth=64))
        with pytest.raises(ResourceLimitError):
            list(engine.run(descent(), require_end=False))


class TestEventBudget:
    def test_oversized_document_rejected(self):
        doc = "<r>" + "<a/>" * 100 + "</r>"
        engine = SpexEngine(
            "_*.a", limits=ResourceLimits(max_events_per_document=50)
        )
        with pytest.raises(ResourceLimitError) as info:
            engine.count(doc)
        assert info.value.limit == "max_events_per_document"

    def test_budget_resets_per_document(self):
        doc = ["<$>", "<a>", "</a>", "</$>"]
        stream = events_from_tags(doc * 20)
        engine = SpexEngine(
            "_*.a",
            collect_events=False,
            limits=ResourceLimits(max_events_per_document=10),
        )
        # 20 documents of 4 events each: fine under skip/repair
        # document-wise evaluation, every document within budget.
        assert len(list(engine.run(stream, on_error="skip"))) == 20


class TestFormulaSizeGuard:
    def test_sigma_blowup_rejected(self):
        # Nested same-label closure scopes with a qualifier grow the
        # condition formulas with depth (the paper's σ).
        depth = 80
        doc = "<a>" * depth + "<b/>" + "</a>" * depth
        engine = SpexEngine(
            "_*.a[_*.b]",
            collect_events=False,
            limits=ResourceLimits(max_formula_size=10),
        )
        with pytest.raises(ResourceLimitError) as info:
            engine.count(doc)
        assert info.value.limit == "max_formula_size"


class TestBufferGuards:
    # One pending candidate per <a>, undecided until its [b] resolves.
    WIDE = "<r>" + "<a><x/><x/><x/><x/><b/></a>" * 10 + "</r>"

    def test_buffered_events_raise(self):
        engine = SpexEngine(
            "_*.a[b]", limits=ResourceLimits(max_buffered_events=3)
        )
        with pytest.raises(ResourceLimitError) as info:
            engine.evaluate(self.WIDE)
        assert info.value.limit == "max_buffered_events"

    def test_drop_oldest_degrades_instead(self):
        engine = SpexEngine(
            "_*.a[b]",
            limits=ResourceLimits(
                max_buffered_events=3, on_buffer_overflow="drop_oldest"
            ),
        )
        matches = engine.evaluate(self.WIDE)
        stats = engine.stats
        assert stats.output.peak_buffered_events <= 3
        assert stats.output.candidates_evicted > 0
        assert stats.limit_hits == stats.output.candidates_evicted
        # Every candidate's span exceeds the ceiling, so all are lost.
        assert matches == []

    def test_drop_oldest_keeps_small_matches(self):
        # Spans of 3 events fit a ceiling of 8: matches survive.
        doc = "<r>" + "<a><b/></a>" * 50 + "</r>"
        engine = SpexEngine(
            "_*.a[b]",
            limits=ResourceLimits(
                max_buffered_events=8, on_buffer_overflow="drop_oldest"
            ),
        )
        matches = engine.evaluate(doc)
        assert len(matches) == 50
        assert engine.stats.output.peak_buffered_events <= 8

    def test_pending_candidates_raise(self):
        # _*._ nests a candidate per open element.
        deep = "<a>" * 30 + "</a>" * 30
        engine = SpexEngine(
            "_*._", limits=ResourceLimits(max_pending_candidates=5)
        )
        with pytest.raises(ResourceLimitError) as info:
            engine.evaluate(deep)
        assert info.value.limit == "max_pending_candidates"

    def test_pending_candidates_drop_oldest(self):
        deep = "<a>" * 30 + "</a>" * 30
        engine = SpexEngine(
            "_*._",
            limits=ResourceLimits(
                max_pending_candidates=5, on_buffer_overflow="drop_oldest"
            ),
        )
        matches = engine.evaluate(deep)
        assert engine.stats.output.peak_pending_candidates <= 5
        # The innermost (youngest) candidates survive.
        assert 0 < len(matches) <= 5


class TestLimitsUnderRecovery:
    def test_limit_hit_skips_document_not_pipeline(self):
        good = ["<$>", "<a>", "</a>", "</$>"]
        bomb = ["<$>"] + ["<x>"] * 50 + ["</x>"] * 50 + ["</$>"]
        stream = events_from_tags(good + bomb + good)
        report = ErrorReport()
        engine = SpexEngine(
            "_*.a",
            collect_events=False,
            limits=ResourceLimits(max_depth=10),
        )
        matches = list(engine.run(stream, on_error="skip", report=report))
        assert len(matches) == 2
        assert report.documents_skipped == 1
        assert report.limit_hits == 1
        assert any(r.action == "limit" for r in report.records)
        stats = engine.stats
        assert stats.documents_skipped == 1
        assert stats.limit_hits == 1

    def test_multiquery_survives_depth_bomb(self):
        good = ["<$>", "<a>", "<b>", "</b>", "</a>", "</$>"]
        bomb = ["<$>"] + ["<x>"] * 50
        stream = events_from_tags(good + bomb)
        report = ErrorReport()
        engine = MultiQueryEngine(
            {"q1": "_*.a", "q2": "_*.b"}, limits=ResourceLimits(max_depth=5)
        )
        results = engine.evaluate(stream, on_error="repair", report=report)
        assert len(results["q1"]) == 1
        assert len(results["q2"]) == 1
        assert report.limit_hits == 1


class TestStatsSummary:
    def test_summary_includes_robustness_counters(self):
        engine = SpexEngine("_*.a", collect_events=False)
        list(engine.run(events_from_tags(["<$>", "<a>", "</a>", "</$>"])))
        summary = engine.stats.summary()
        assert "documents skipped" in summary
        assert "events repaired" in summary
        assert "limit hits" in summary
