"""Property tests for individual path transducers.

Each transducer is run standalone (IN -> T) on random streams and its
emitted activations are compared against a reference oracle computed on
the materialized tree:

* ``CH(l)`` activates exactly the ``l``-children of the root;
* ``CL(l)`` activates exactly the nodes reachable from the root by
  non-empty ``l``-chains;
* ``DS(l*)`` activates the root plus exactly ``CL(l)``'s nodes;
* all of them emit the activation immediately before the matched start
  tag, and their stacks empty out at ``</$>``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.messages import Activation, Doc
from repro.core.path_transducers import (
    ChildTransducer,
    ClosureTransducer,
    InputTransducer,
    StarTransducer,
)
from repro.rpeq.ast import WILDCARD, Label
from repro.xmlstream.events import StartElement
from repro.xmlstream.tree import build_document

from ..conftest import LABELS, event_streams

SETTINGS = dict(
    max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_tests = st.sampled_from([Label(name) for name in (*LABELS, WILDCARD)])


def activated_positions(transducer, events):
    """Positions whose start tag is immediately preceded by an activation."""
    source = InputTransducer()
    positions = []
    counter = 0
    for event in events:
        batch = transducer.feed(source.feed([Doc(event)]))
        if isinstance(event, StartElement):
            counter += 1
            pending = any(isinstance(m, Activation) for m in batch[:-1])
            if pending:
                positions.append(counter)
    return positions, transducer


def child_oracle(test, events):
    document = build_document(events)
    return [
        child.position
        for child in document.root.children
        if test.matches(child.label)
    ]


def chain_oracle(test, events):
    document = build_document(events)
    result = []

    def descend(node):
        for child in node.children:
            if test.matches(child.label):
                result.append(child.position)
                descend(child)

    descend(document.root)
    return sorted(result)


class TestChildTransducer:
    @settings(**SETTINGS)
    @given(_tests, event_streams())
    def test_matches_root_children(self, test, events):
        positions, _ = activated_positions(ChildTransducer(test), events)
        assert positions == child_oracle(test, events)

    @settings(**SETTINGS)
    @given(_tests, event_streams())
    def test_stack_empty_at_end(self, test, events):
        _, transducer = activated_positions(ChildTransducer(test), events)
        assert transducer.stack == []
        assert transducer.pending is None


class TestClosureTransducer:
    @settings(**SETTINGS)
    @given(_tests, event_streams())
    def test_matches_label_chains(self, test, events):
        positions, _ = activated_positions(ClosureTransducer(test), events)
        assert sorted(positions) == chain_oracle(test, events)

    @settings(**SETTINGS)
    @given(_tests, event_streams())
    def test_stack_empty_at_end(self, test, events):
        _, transducer = activated_positions(ClosureTransducer(test), events)
        assert transducer.stack == []


class TestStarTransducer:
    @settings(**SETTINGS)
    @given(_tests, event_streams())
    def test_equals_closure_plus_context(self, test, events):
        positions, _ = activated_positions(StarTransducer(test), events)
        # The context here is the document root, which has no start tag
        # counted by activated_positions — elements only.
        assert sorted(positions) == chain_oracle(test, events)

    @settings(**SETTINGS)
    @given(_tests, event_streams())
    def test_emits_activation_for_context_itself(self, test, events):
        """The epsilon component: the root activation passes through."""
        source = InputTransducer()
        transducer = StarTransducer(test)
        first = events[0]  # <$>
        batch = transducer.feed(source.feed([Doc(first)]))
        assert any(isinstance(m, Activation) for m in batch)
