"""Serving robustness: breakers, admission, deadlines, shedding.

Unit tests for :mod:`repro.core.serving` plus the
:meth:`MultiQueryEngine.serve` behaviours that don't need a soak
(the differential isolation soak lives in
``tests/integration/test_bulkheads.py``).
"""

from itertools import chain

import pytest

from repro import ResourceLimits
from repro.core.clock import FakeClock
from repro.core.multiquery import MultiQueryEngine
from repro.core.serving import (
    AdmissionPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    QueryOutcome,
    ServingPolicy,
    ServingReport,
    classify_admission,
    ensure_admitted,
)
from repro.errors import AdmissionError, EngineError
from repro.rpeq.parser import parse
from repro.xmlstream.parser import iter_events

DOC = "<a><b>x</b><b>y</b></a>"
DEEP = "<a>" + "<b>" * 5 + "x" + "</b>" * 5 + "</a>"


def stream(*docs):
    """Concatenate single-document XML strings into one event stream."""
    return list(chain.from_iterable(list(iter_events(doc)) for doc in docs))


def ticking(events, clock, step):
    """Source that advances ``clock`` by ``step`` before each event."""
    for event in events:
        clock.advance(step)
        yield event


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.admits()

    def test_failure_opens(self):
        breaker = CircuitBreaker()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(BreakerPolicy(cooldown_documents=2, max_trips=None))
        breaker.record_failure()
        assert not breaker.admits()  # cooldown 2 -> 1
        assert breaker.admits()  # cooldown exhausted: half-open probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(BreakerPolicy(probe_documents=2, max_trips=None))
        breaker.record_failure()
        assert breaker.admits()
        assert not breaker.record_document_success()  # 1 of 2
        assert breaker.record_document_success()  # closes
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(BreakerPolicy(max_trips=None))
        breaker.record_failure()
        assert breaker.admits()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_max_trips_latches(self):
        breaker = CircuitBreaker(BreakerPolicy(max_trips=1))
        breaker.record_failure()
        assert breaker.latched
        for _ in range(5):
            assert not breaker.admits()

    def test_success_while_closed_is_a_noop(self):
        breaker = CircuitBreaker()
        assert not breaker.record_document_success()
        assert breaker.state is BreakerState.CLOSED

    def test_snapshot_restore_round_trip(self):
        breaker = CircuitBreaker(BreakerPolicy(cooldown_documents=3, max_trips=None))
        breaker.record_failure()
        breaker.admits()  # cooldown 3 -> 2
        snap = breaker.snapshot()
        clone = CircuitBreaker(breaker.policy)
        clone.restore(snap)
        assert clone.state is BreakerState.OPEN
        assert clone.trips == 1
        assert not clone.admits()  # 2 -> 1
        assert clone.admits()  # half-open

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_documents=0)
        with pytest.raises(ValueError):
            BreakerPolicy(probe_documents=0)
        with pytest.raises(ValueError):
            BreakerPolicy(max_trips=0)


class TestAdmission:
    def test_within_budget_admits(self):
        decision = classify_admission(
            parse("a.b"), AdmissionPolicy(reject_sigma=10, depth_bound=8)
        )
        assert decision.status == "admit" and decision.code == "ADMIT000"
        assert decision.sigma_bound == 1
        assert decision.limits is None

    def test_over_soft_budget_degrades(self):
        decision = classify_admission(
            parse("a[b]"),
            AdmissionPolicy(reject_sigma=10, degrade_sigma=1, depth_bound=8),
        )
        assert decision.status == "degraded" and decision.code == "ADMIT001"
        assert decision.admitted and decision.degraded
        assert decision.limits.max_buffered_events == 4096

    def test_over_hard_budget_rejects(self):
        decision = classify_admission(
            parse("_*.a[_*.b]"),
            AdmissionPolicy(reject_sigma=10, depth_bound=50),
        )
        assert decision.status == "rejected" and decision.code == "ADMIT003"
        assert decision.sigma_bound == 100
        assert not decision.admitted

    def test_uncertifiable_follows_policy(self):
        query = parse("following::a")
        policy = AdmissionPolicy(depth_bound=10)
        assert classify_admission(query, policy).code == "ADMIT002"
        reject = AdmissionPolicy(depth_bound=10, on_uncertifiable="reject")
        assert classify_admission(query, reject).code == "ADMIT004"
        admit = AdmissionPolicy(depth_bound=10, on_uncertifiable="admit")
        assert classify_admission(query, admit).code == "ADMIT000"

    def test_degraded_limits_take_minimum(self):
        decision = classify_admission(
            parse("a[b]"),
            AdmissionPolicy(
                degrade_sigma=1, depth_bound=8, degraded_max_buffered_events=100
            ),
            limits=ResourceLimits(max_buffered_events=7),
        )
        assert decision.limits.max_buffered_events == 7

    def test_ensure_admitted_raises_on_rejection(self):
        decision = classify_admission(
            parse("_*.a[_*.b]"), AdmissionPolicy(reject_sigma=1, depth_bound=50)
        )
        with pytest.raises(AdmissionError) as excinfo:
            ensure_admitted("big", decision)
        assert "ADMIT003" in str(excinfo.value)
        assert excinfo.value.decision is decision

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(on_uncertifiable="explode")
        with pytest.raises(ValueError):
            AdmissionPolicy(reject_sigma=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(reject_sigma=1, degrade_sigma=2)


class TestEngineAdmission:
    def test_rejected_query_never_runs(self):
        engine = MultiQueryEngine(
            {"big": "_*.a[_*.b]", "small": "_*.b"},
            admission=AdmissionPolicy(reject_sigma=10, depth_bound=50),
        )
        assert engine.admissions["big"].status == "rejected"
        results = engine.evaluate(DOC)
        assert results["big"] == []
        assert len(results["small"]) == 2
        assert engine.robustness.admissions_rejected == 1

    def test_serve_reports_rejection(self):
        engine = MultiQueryEngine(
            {"big": "_*.a[_*.b]", "small": "_*.b"},
            admission=AdmissionPolicy(reject_sigma=10, depth_bound=50),
        )
        matches = list(engine.serve(DOC))
        assert {query_id for query_id, _ in matches} == {"small"}
        outcome = engine.serving.outcomes["big"]
        assert outcome.status == "rejected" and outcome.code == "ADMIT003"
        assert engine.serving.rejected == 1 and engine.serving.admitted == 1

    def test_add_query_classifies(self):
        engine = MultiQueryEngine(
            {"small": "a.b"},
            admission=AdmissionPolicy(reject_sigma=10, depth_bound=50),
        )
        decision = engine.add_query("big", "_*.a[_*.b]")
        assert decision.status == "rejected"
        with pytest.raises(AdmissionError):
            engine.add_query("big2", "_*.a[_*.b]", require_admission=True)
        assert "big2" not in engine.queries

    def test_add_and_remove_query(self):
        engine = MultiQueryEngine({"one": "a.b"})
        engine.add_query("two", "_*.b")
        assert len(engine) == 2
        with pytest.raises(EngineError):
            engine.add_query("two", "a")
        engine.remove_query("two")
        assert len(engine) == 1
        with pytest.raises(EngineError):
            engine.remove_query("two")


class TestServeBulkheads:
    def test_healthy_pass_is_equivalent_to_run(self):
        queries = {"q1": "_*.b", "q2": "_*.a"}
        served = MultiQueryEngine(queries)
        ran = MultiQueryEngine(queries)
        events = stream(DOC, DOC)
        assert [
            (q, m.position) for q, m in served.serve(list(events))
        ] == [(q, m.position) for q, m in ran.run(list(events))]
        assert served.serving.documents_seen == 2
        assert served.serving.healthy == ["q1", "q2"]

    def test_quarantine_and_readmission_at_boundary(self):
        engine = MultiQueryEngine(
            {"q": "_*.b"}, limits=ResourceLimits(max_depth=3)
        )
        matches = list(engine.serve(stream(DEEP, DOC, DOC)))
        # doc 1 tripped the guard; docs 2 and 3 served normally
        assert len(matches) == 4
        outcome = engine.serving.outcomes["q"]
        assert outcome.status == "ok" and outcome.degraded
        assert outcome.trips == 1 and outcome.readmissions == 1
        assert engine.serving.quarantines == 1
        assert engine.serving.probes == 1
        assert engine.robustness.quarantines == 1

    def test_latched_breaker_stays_out(self):
        engine = MultiQueryEngine(
            {"q": "_*.b"}, limits=ResourceLimits(max_depth=3)
        )
        policy = ServingPolicy(breaker=BreakerPolicy(max_trips=1))
        matches = list(engine.serve(stream(DEEP, DOC, DOC), policy=policy))
        assert matches == []
        outcome = engine.serving.outcomes["q"]
        assert outcome.status == "quarantined" and outcome.code == "LIMIT"

    def test_quarantine_off_propagates(self):
        from repro.errors import ResourceLimitError

        engine = MultiQueryEngine(
            {"q": "_*.b"}, limits=ResourceLimits(max_depth=3)
        )
        with pytest.raises(ResourceLimitError):
            list(engine.serve(stream(DEEP), policy=ServingPolicy(quarantine=False)))

    def test_document_wise_mode_quarantines_too(self):
        engine = MultiQueryEngine(
            {"q": "_*.b"}, limits=ResourceLimits(max_depth=3)
        )
        matches = list(engine.serve(stream(DEEP, DOC), on_error="skip"))
        assert len(matches) == 2
        assert engine.serving.quarantines == 1
        assert engine.serving.outcomes["q"].readmissions == 1


class TestServeDeadlines:
    def test_stream_deadline_yields_per_query_outcome(self):
        clock = FakeClock()
        engine = MultiQueryEngine({"q1": "_*.b", "q2": "_*.a"})
        matches = list(
            engine.serve(
                ticking(stream(DOC, DOC, DOC), clock, 0.05),
                policy=ServingPolicy(stream_deadline=1.0),
                clock=clock,
            )
        )
        # the pass ended cleanly (no exception) with partial results
        assert matches
        for outcome in engine.serving.outcomes.values():
            assert outcome.status == "deadline"
            assert outcome.code == "DEADLINE_STREAM"
            assert "deadline" in outcome.reason
        assert engine.serving.deadline_hits == 2
        assert engine.robustness.deadline_hits == 2

    def test_doc_deadline_rejoins_next_document(self):
        clock = FakeClock()
        engine = MultiQueryEngine({"q": "_*.b"})
        # 0.3s/event blows a 1.0s budget inside each 8-event document
        list(
            engine.serve(
                ticking(stream(DOC, DOC), clock, 0.3),
                policy=ServingPolicy(doc_deadline=1.0),
                clock=clock,
            )
        )
        assert engine.serving.deadline_hits == 2  # once per document
        assert engine.serving.outcomes["q"].code == "DEADLINE_DOC"
        # doc-deadline detachments carry no breaker penalty
        assert engine.serving.breaker_trips == 0

    def test_no_deadline_never_reads_clock(self):
        class ExplodingClock(FakeClock):
            def monotonic(self):
                raise AssertionError("clock read without a deadline")

        engine = MultiQueryEngine({"q": "_*.b"})
        matches = list(engine.serve(stream(DOC), clock=ExplodingClock()))
        assert len(matches) == 2


class TestServeShedding:
    def test_lowest_priority_is_shed_first(self):
        engine = MultiQueryEngine(
            {"hot": "_*.a[c].b", "cold": "_*.a[c].b"}, collect_events=True
        )
        policy = ServingPolicy(
            shed_buffered_events=2, priorities={"hot": 1, "cold": 0}
        )
        list(engine.serve(stream(DOC), policy=policy))
        assert engine.serving.outcomes["cold"].status == "shed"
        assert engine.serving.outcomes["cold"].code == "SHED001"
        assert engine.serving.load_sheds >= 1
        assert engine.robustness.load_sheds >= 1

    def test_shed_query_rejoins_next_document(self):
        engine = MultiQueryEngine(
            {"hot": "_*.a[c].b", "cold": "_*.b"}, collect_events=True
        )
        policy = ServingPolicy(shed_buffered_events=2, priorities={"hot": 0})
        list(engine.serve(stream(DOC, DOC), policy=policy))
        # shed in doc 0, rejoined at the boundary (no breaker penalty),
        # then shed again in doc 1 — proof it was live in both documents
        outcome = engine.serving.outcomes["hot"]
        assert engine.serving.load_sheds >= 2
        assert outcome.document == 1
        assert outcome.degraded and engine.serving.breaker_trips == 0


class TestServingReport:
    def test_summary_mentions_everything(self):
        report = ServingReport()
        report.outcome("q")
        text = report.summary()
        for word in ("quarantine", "breaker", "readmission", "shed", "deadline"):
            assert word in text

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ServingPolicy(stream_deadline=0)
        with pytest.raises(ValueError):
            ServingPolicy(doc_deadline=-1)
        with pytest.raises(ValueError):
            ServingPolicy(shed_buffered_events=0)


class TestServingReportMerged:
    @staticmethod
    def _report(**outcomes: QueryOutcome) -> ServingReport:
        report = ServingReport()
        for query_id, outcome in outcomes.items():
            assert outcome.query_id == query_id
            report.outcomes[query_id] = outcome
        return report

    def test_empty_report_list_merges_to_empty(self):
        merged = ServingReport.merged([])
        assert merged.outcomes == {}
        for name in ServingReport.COUNTER_FIELDS:
            assert getattr(merged, name) == 0

    def test_merged_of_generator_input(self):
        # the signature takes any iterable, not just a list
        merged = ServingReport.merged(iter([ServingReport(), ServingReport()]))
        assert merged.documents_seen == 0

    def test_disjoint_outcomes_union(self):
        a = self._report(q1=QueryOutcome("q1", matches=2))
        b = self._report(q2=QueryOutcome("q2", matches=3))
        a.documents_seen = 4
        b.documents_seen = 4
        a.quarantines = 1
        merged = ServingReport.merged([a, b])
        assert sorted(merged.outcomes) == ["q1", "q2"]
        assert merged.documents_seen == 4  # max, not sum
        assert merged.quarantines == 1

    def test_duplicate_query_ids_combine_counts(self):
        a = self._report(q=QueryOutcome("q", matches=2, readmissions=1, trips=1))
        b = self._report(q=QueryOutcome("q", matches=3, readmissions=2, trips=2))
        merged = ServingReport.merged([a, b])
        outcome = merged.outcomes["q"]
        assert outcome.matches == 5
        assert outcome.readmissions == 3
        assert outcome.trips == 2  # max, not sum: trips count one breaker

    def test_conflicting_quarantine_latch_survives_either_order(self):
        healthy = QueryOutcome("q", status="ok", matches=1)
        latched = QueryOutcome(
            "q",
            status="quarantined",
            code="POISON",
            reason="crashed its worker",
            degraded=True,
            trips=3,
            document=2,
        )
        for first, second in (
            (healthy, latched),
            (latched, healthy),
        ):
            merged = ServingReport.merged(
                [self._report(q=first), self._report(q=second)]
            )
            outcome = merged.outcomes["q"]
            assert outcome.status == "quarantined"
            assert outcome.code == "POISON"
            assert outcome.degraded is True
            assert outcome.trips == 3
            assert outcome.document == 2
            assert outcome.matches == 1

    def test_rejection_outranks_transient_detachments(self):
        shed = QueryOutcome("q", status="shed", code="SHED001", degraded=True)
        rejected = QueryOutcome("q", status="rejected", code="ADMIT003")
        merged = ServingReport.merged(
            [self._report(q=shed), self._report(q=rejected)]
        )
        assert merged.outcomes["q"].status == "rejected"
        assert merged.outcomes["q"].code == "ADMIT003"
        # the shed's degraded mark latches through the merge
        assert merged.outcomes["q"].degraded is True
