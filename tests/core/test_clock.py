"""The injectable clock abstraction (repro.core.clock)."""

import pytest

from repro.core.clock import (
    SYSTEM_CLOCK,
    Clock,
    FakeClock,
    SystemClock,
    _CallableClock,
    as_clock,
)


class TestFakeClock:
    def test_starts_where_told(self):
        assert FakeClock().monotonic() == 0.0
        assert FakeClock(start=41.5).monotonic() == 41.5

    def test_advance_moves_time(self):
        clock = FakeClock()
        clock.advance(2.5)
        assert clock.monotonic() == 2.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_sleep_advances_and_records(self):
        clock = FakeClock()
        clock.sleep(0.25)
        clock.sleep(0.75)
        assert clock.monotonic() == 1.0
        assert clock.sleeps == [0.25, 0.75]

    def test_zero_sleep_recorded_but_time_still(self):
        clock = FakeClock()
        clock.sleep(0.0)
        assert clock.monotonic() == 0.0
        assert clock.sleeps == [0.0]


class TestSystemClock:
    def test_monotonic_is_monotonic(self):
        first = SYSTEM_CLOCK.monotonic()
        second = SYSTEM_CLOCK.monotonic()
        assert second >= first

    def test_singleton_is_a_system_clock(self):
        assert isinstance(SYSTEM_CLOCK, SystemClock)
        assert isinstance(SYSTEM_CLOCK, Clock)


class TestAsClock:
    def test_none_gives_system_clock(self):
        assert as_clock(None) is SYSTEM_CLOCK

    def test_clock_passes_through(self):
        clock = FakeClock()
        assert as_clock(clock) is clock

    def test_callable_becomes_monotonic(self):
        clock = as_clock(lambda: 123.0)
        assert isinstance(clock, Clock)
        assert clock.monotonic() == 123.0

    def test_rejects_non_clock(self):
        with pytest.raises(TypeError):
            as_clock(42)


class TestCallableClock:
    def test_wraps_both_callables(self):
        slept = []
        clock = _CallableClock(monotonic=lambda: 7.0, sleep=slept.append)
        assert clock.monotonic() == 7.0
        clock.sleep(0.5)
        assert slept == [0.5]

    def test_defaults_fall_back_to_time_module(self):
        clock = _CallableClock()
        assert clock.monotonic() >= 0.0


class TestSupervisorAdoption:
    """The supervisor runs entirely on the injected clock."""

    def test_fake_clock_drives_backoff(self):
        from repro import SpexEngine, Supervisor, SupervisorConfig
        from repro.xmlstream import FlakySource, iter_events

        events = list(iter_events("<a><b>x</b></a>"))
        source = FlakySource(events, script=[("error", 2)])
        clock = FakeClock()
        supervisor = Supervisor(
            SpexEngine("_*.b"),
            source,
            config=SupervisorConfig(jitter=0.0, backoff_initial=0.5),
            clock=clock,
        )
        matches = list(supervisor.run())
        assert len(matches) == 1
        assert supervisor.report.retries == 1
        # the backoff slept on the fake clock, not the wall clock
        assert clock.sleeps == [0.5]

    def test_legacy_callable_signature_still_works(self):
        from repro import SpexEngine, Supervisor, SupervisorConfig
        from repro.xmlstream import FlakySource, iter_events

        events = list(iter_events("<a><b>x</b></a>"))
        source = FlakySource(events, script=[("error", 2)])
        slept = []
        now = {"t": 0.0}
        supervisor = Supervisor(
            SpexEngine("_*.b"),
            source,
            config=SupervisorConfig(jitter=0.0),
            sleep=slept.append,
            clock=lambda: now["t"],
        )
        assert len(list(supervisor.run())) == 1
        assert slept  # backoff used the injected sleeper
