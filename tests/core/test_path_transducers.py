"""Unit tests for input, child and closure transducers.

The child/closure tests replay the paper's Examples III.1 and III.2
message by message against hand-wired transducer pairs and check the
activations they emit — the observable behaviour the transition tables of
Figs. 2-5 specify.
"""

import pytest

from repro.conditions.formula import TRUE, Var, disj
from repro.core.messages import Activation, Doc
from repro.core.path_transducers import ChildTransducer, ClosureTransducer, InputTransducer
from repro.errors import EngineError
from repro.rpeq.ast import WILDCARD, Label
from repro.xmlstream.events import events_from_tags

from ..conftest import PAPER_STREAM_TAGS


def feed_chain(transducers, tags):
    """Run a tag stream through IN -> transducers; return per-event output."""
    source = InputTransducer()
    batches = []
    for event in events_from_tags(tags):
        messages = source.feed([Doc(event)])
        for transducer in transducers:
            messages = transducer.feed(messages)
        batches.append(messages)
    return batches


def activations_per_event(batches):
    return [
        [m.formula for m in batch if isinstance(m, Activation)] for batch in batches
    ]


class TestInputTransducer:
    def test_activation_on_start_document(self):
        source = InputTransducer()
        out = source.feed([Doc(next(events_from_tags(["<$>"])))])
        assert out[0] == Activation(TRUE)

    def test_other_events_forwarded_plain(self):
        source = InputTransducer()
        source.feed([Doc(next(events_from_tags(["<$>"])))])
        out = source.feed([Doc(next(events_from_tags(["<a>"])))])
        assert len(out) == 1 and isinstance(out[0], Doc)

    def test_rejects_incoming_activation(self):
        with pytest.raises(EngineError):
            InputTransducer().feed([Activation(TRUE)])


class TestChildTransducer:
    def test_example_III_1(self):
        """a.c over the Fig. 1 stream: only the second <c> matches."""
        t1, t2 = ChildTransducer(Label("a")), ChildTransducer(Label("c"))
        batches = feed_chain([t1, t2], PAPER_STREAM_TAGS)
        acts = activations_per_event(batches)
        # Event index 8 is the second <c> (position 5 in the document).
        assert [bool(a) for a in acts] == [
            False, False, False, False, False, False,
            False, False, True, False, False, False,
        ]

    def test_match_only_direct_children(self):
        t = ChildTransducer(Label("c"))
        batches = feed_chain([t], ["<$>", "<c>", "<c>", "</c>", "</c>", "</$>"])
        acts = activations_per_event(batches)
        # Only the depth-1 <c> is a child of the activated root.
        assert [bool(a) for a in acts] == [False, True, False, False, False, False]

    def test_wildcard_matches_any_label(self):
        t = ChildTransducer(Label(WILDCARD))
        batches = feed_chain([t], ["<$>", "<x>", "</x>", "<y>", "</y>", "</$>"])
        acts = activations_per_event(batches)
        assert [bool(a) for a in acts] == [False, True, False, True, False, False]

    def test_multiple_scopes_from_nested_activations(self):
        """_._  : the inner transducer matches in two nested scopes."""
        outer = ChildTransducer(Label(WILDCARD))
        inner = ChildTransducer(Label(WILDCARD))
        tags = ["<$>", "<a>", "<b>", "<c>", "</c>", "</b>", "</a>", "</$>"]
        batches = feed_chain([outer, inner], tags)
        acts = activations_per_event(batches)
        # inner matches <b> (child of a, depth 2) and <c>? <c> is depth 3:
        # outer activates children of $ (depth1=a); inner matches depth-2.
        assert [bool(a) for a in acts] == [
            False, False, True, False, False, False, False, False,
        ]

    def test_stack_bounded_by_depth(self):
        t = ChildTransducer(Label("a"))
        feed_chain([t], ["<$>", "<a>", "<a>", "</a>", "</a>", "</$>"])
        assert t.stats.max_stack == 3  # $, a, a

    def test_end_tag_with_empty_stack_raises(self):
        t = ChildTransducer(Label("a"))
        with pytest.raises(EngineError):
            t.feed([Doc(next(events_from_tags(["</a>"])))])


class TestClosureTransducer:
    def test_example_III_2(self):
        """a+.c+ over the Fig. 1 stream: both <c> elements match."""
        t1 = ClosureTransducer(Label("a"))
        t2 = ClosureTransducer(Label("c"))
        batches = feed_chain([t1, t2], PAPER_STREAM_TAGS)
        acts = activations_per_event(batches)
        # Events 3 and 8 are the two <c> start tags.
        assert [bool(a) for a in acts] == [
            False, False, False, True, False, False,
            False, False, True, False, False, False,
        ]

    def test_matches_nested_chain(self):
        t = ClosureTransducer(Label("a"))
        tags = ["<$>", "<a>", "<a>", "<a>", "</a>", "</a>", "</a>", "</$>"]
        batches = feed_chain([t], tags)
        acts = activations_per_event(batches)
        assert [bool(a) for a in acts] == [
            False, True, True, True, False, False, False, False,
        ]

    def test_chain_broken_by_other_label(self):
        t = ClosureTransducer(Label("a"))
        # <a><b><a/></b></a>: the inner <a> is NOT reachable by an a-chain.
        tags = ["<$>", "<a>", "<b>", "<a>", "</a>", "</b>", "</a>", "</$>"]
        batches = feed_chain([t], tags)
        acts = activations_per_event(batches)
        assert [bool(a) for a in acts] == [
            False, True, False, False, False, False, False, False,
        ]

    def test_wildcard_closure_selects_all_descendants(self):
        t = ClosureTransducer(Label(WILDCARD))
        tags = ["<$>", "<a>", "<b>", "</b>", "</a>", "<c>", "</c>", "</$>"]
        batches = feed_chain([t], tags)
        acts = activations_per_event(batches)
        assert [bool(a) for a in acts] == [
            False, True, True, False, False, True, False, False,
        ]

    def test_nested_scope_disjunction(self):
        """Fig. 3 transition 12: nested activations merge by disjunction."""
        t = ClosureTransducer(Label("a"))
        v1, v2 = Var(1, "q"), Var(2, "q")
        stream = list(events_from_tags(["<$>", "<a>", "<a>", "</a>", "</a>", "</$>"]))
        t.feed([Doc(stream[0])])
        out1 = t.feed([Activation(v1), Doc(stream[1])])
        # Outer <a> activated with v1 and in no scope yet: no match.
        assert not [m for m in out1 if isinstance(m, Activation)]
        out2 = t.feed([Activation(v2), Doc(stream[2])])
        # Inner <a>: matched under v1, and freshly activated with v2 ->
        # its own children would be in scope under v1 v v2.
        assert [m.formula for m in out2 if isinstance(m, Activation)] == [v1]
        assert t.stack[-1] == disj(v1, v2)
