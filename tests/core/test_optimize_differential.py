"""Differential tests for the hot-path optimization knobs.

Every knob in :class:`repro.core.optimize.OptimizationFlags` must be
invisible in the answers: for any query/document pair, every knob
combination from :func:`all_knob_combinations` has to produce exactly
the positions and fragments of the literal Fig. 11 evaluation
(``optimize=False``).  The seeded corpus below covers the query classes
of Sec. VI (closure prefixes, unions, nested qualifiers) plus the axes;
hypothesis adds adversarial shrunken cases on top.

The :class:`~repro.conditions.formula.FormulaMemo` unit tests live here
too — the memo is the one knob with internal state of its own (bounded
identity-keyed table), so its mechanics get direct coverage.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro import SpexEngine
from repro.conditions.formula import And, FormulaMemo, Var, conj, disj
from repro.core.optimize import (
    ALL_OPTIMIZATIONS,
    NO_OPTIMIZATIONS,
    OptimizationFlags,
    all_knob_combinations,
    as_flags,
)

from ..conftest import event_streams, make_random_events, rpeq_queries

# ----------------------------------------------------------------------
# knob plumbing


def test_all_knob_combinations_cover_endpoints_and_single_knobs():
    combos = all_knob_combinations()
    assert ALL_OPTIMIZATIONS in combos
    assert NO_OPTIMIZATIONS in combos
    # one-off and one-on variant per knob, no duplicates
    assert len(combos) == len(set(combos)) == 16


def test_as_flags_round_trips_checkpoint_encoding():
    for flags in all_knob_combinations():
        assert as_flags(flags.to_obj()) == flags
    assert as_flags(True) is ALL_OPTIMIZATIONS
    assert as_flags(False) is NO_OPTIMIZATIONS


def test_as_flags_rejects_unknown_knob():
    with pytest.raises(ValueError, match="unknown optimization flag"):
        as_flags({"vectorize": True})


# ----------------------------------------------------------------------
# FormulaMemo mechanics


def test_memo_hit_replays_without_renormalizing():
    memo = FormulaMemo()
    a, b = Var(1, "q"), Var(2, "q")
    first = memo.disj(a, b)
    assert (memo.hits, memo.misses) == (0, 1)
    assert memo.disj(a, b) is first
    assert (memo.hits, memo.misses) == (1, 1)
    # conj of the same operands is a distinct key
    assert isinstance(memo.conj(a, b), And)
    assert (memo.hits, memo.misses) == (1, 2)


def test_memo_matches_unmemoized_normalization():
    memo = FormulaMemo()
    a, b = Var(1, "q"), Var(2, "q")
    assert memo.conj(a, b) == conj(a, b)
    assert memo.disj(a, b) == disj(a, b)


def test_memo_keys_by_identity_not_equality():
    """Two equal-but-distinct operand objects occupy separate entries.

    Identity keying trades a few duplicate entries for skipping
    structural hashing; both entries must still yield correct (equal)
    results.
    """
    memo = FormulaMemo()
    base = Var(1, "q")
    twin_a = conj(base, Var(2, "q"))
    twin_b = conj(base, Var(2, "q"))
    assert twin_a == twin_b and twin_a is not twin_b
    out_a = memo.disj(twin_a, base)
    out_b = memo.disj(twin_b, base)
    assert memo.misses == 2 and memo.hits == 0
    assert out_a == out_b
    assert len(memo) == 2


def test_memo_fifo_eviction_at_capacity():
    memo = FormulaMemo(capacity=4)
    operands = [Var(n, "q") for n in range(6)]
    keep_alive = [memo.disj(operands[n], operands[n + 1]) for n in range(5)]
    assert keep_alive
    assert len(memo) == 4
    assert memo.evictions == 1
    # the oldest pair was evicted: re-merging it misses again
    memo.disj(operands[0], operands[1])
    assert memo.misses == 6
    # the newest pair is still cached
    memo.disj(operands[4], operands[5])
    assert memo.hits == 1


def test_memo_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        FormulaMemo(capacity=0)


# ----------------------------------------------------------------------
# answers are knob-invariant


def _answers(query, events, optimize):
    engine = SpexEngine(query, optimize=optimize)
    return [
        (match.position, match.label, match.events)
        for match in engine.run(iter(events))
    ]


#: fixed queries spanning the paper's Sec. VI query classes and the axes
CORPUS_QUERIES = [
    "a",
    "_*.c",
    "a._.c|a.b",
    "_*.a[c]",
    "a[b.c].(b|c)",
    "_*[b]._*.c",
    "a.following::b",
    "_*.c[preceding::a]",
]


@pytest.mark.parametrize("query", CORPUS_QUERIES)
def test_knob_combinations_agree_on_seeded_corpus(query):
    rng = random.Random(0xC0FFEE)
    streams = [make_random_events(rng) for _ in range(5)]
    for events in streams:
        reference = _answers(query, events, NO_OPTIMIZATIONS)
        for flags in all_knob_combinations():
            assert _answers(query, events, flags) == reference, (
                f"knobs {flags.describe()} diverged on {query!r}"
            )


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rpeq_queries(), event_streams())
def test_random_queries_agree_across_knobs(query, events):
    reference = _answers(query, events, NO_OPTIMIZATIONS)
    for flags in all_knob_combinations():
        if flags == NO_OPTIMIZATIONS:
            continue
        assert _answers(query, events, flags) == reference


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rpeq_queries(), event_streams())
def test_single_knob_routing_and_pool_agree(query, events):
    """The two purely-mechanical knobs, isolated one at a time.

    ``routing`` and ``message_pool`` rewrite *how* messages move, not
    what they say — the likeliest place for an aliasing bug to hide, so
    they get dedicated single-knob runs beyond the combination sweep.
    """
    reference = _answers(query, events, NO_OPTIMIZATIONS)
    for name in ("routing", "message_pool"):
        lone = OptimizationFlags(
            star_fusion=False,
            routing=name == "routing",
            formula_memo=False,
            message_pool=name == "message_pool",
            dfa_lane=False,
            hybrid_gate=False,
            fused_network=False,
        )
        assert _answers(query, events, lone) == reference
