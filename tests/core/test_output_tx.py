"""Unit tests for the output transducer: candidates, ordering, buffering."""

import pytest

from repro.conditions.formula import TRUE, Var, conj
from repro.conditions.store import ConditionStore
from repro.core.messages import Activation, Close, Contribute, Doc
from repro.core.output_tx import OutputTransducer
from repro.xmlstream.events import StartElement, events_from_tags


@pytest.fixture
def store():
    return ConditionStore()


@pytest.fixture
def sink(store):
    return OutputTransducer(store)


def docs(*tags):
    return [Doc(event) for event in events_from_tags(tags)]


def var(store, uid, qualifier="q0"):
    v = Var(uid, qualifier)
    store.register(v)
    return v


def run(sink, messages):
    for message in messages:
        sink.feed([message])
    return list(sink.results)


class TestUnconditionalCandidates:
    def test_match_emitted_at_end_tag(self, sink):
        d = docs("<$>", "<a>", "</a>", "</$>")
        run(sink, [d[0], Activation(TRUE), d[1]])
        assert not sink.results  # span not complete yet
        matches = run(sink, [d[2], d[3]])
        assert [m.position for m in matches] == [1]
        assert matches[0].label == "a"

    def test_fragment_events_captured(self, sink):
        d = docs("<$>", "<a>", "<b>", "</b>", "</a>", "</$>")
        run(sink, [d[0], Activation(TRUE), d[1], d[2], d[3], d[4], d[5]])
        (match,) = sink.results
        assert [str(e) for e in match.events] == ["<a>", "<b>", "</b>", "</a>"]

    def test_positions_count_start_tags(self, sink):
        d = docs("<$>", "<a>", "</a>", "<b>", "</b>", "</$>")
        matches = run(sink, [d[0], d[1], d[2], Activation(TRUE), d[3], d[4], d[5]])
        assert [m.position for m in matches] == [2]

    def test_root_candidate(self, sink):
        d = docs("<$>", "<a>", "</a>", "</$>")
        matches = run(sink, [Activation(TRUE), d[0], d[1], d[2], d[3]])
        assert [m.position for m in matches] == [0]
        assert matches[0].label == "$"

    def test_nested_candidates_in_document_order(self, sink):
        d = docs("<$>", "<a>", "<b>", "</b>", "</a>", "</$>")
        matches = run(
            sink,
            [d[0], Activation(TRUE), d[1], Activation(TRUE), d[2], d[3], d[4], d[5]],
        )
        # inner completes first, but output is document order (a then b)
        assert [m.position for m in matches] == [1, 2]


class TestConditionalCandidates:
    def test_future_condition_buffers_then_emits(self, sink, store):
        c = var(store, 1)
        d = docs("<$>", "<a>", "</a>", "</$>")
        run(sink, [d[0], Activation(c), d[1], d[2]])
        assert not sink.results  # undecided: buffered
        matches = run(sink, [Contribute(c, TRUE)])
        assert [m.position for m in matches] == [1]

    def test_future_condition_false_drops(self, sink, store):
        c = var(store, 1)
        d = docs("<$>", "<a>", "</a>", "</$>")
        matches = run(sink, [d[0], Activation(c), d[1], d[2], Close(c), d[3]])
        assert matches == []
        assert sink.output_stats.candidates_dropped == 1

    def test_past_condition_streams_immediately(self, sink, store):
        # Class-4 behaviour: variable already true when candidate appears.
        c = var(store, 1)
        store.contribute(c, TRUE)
        d = docs("<$>", "<a>", "</a>", "</$>")
        matches = run(sink, [d[0], Activation(c), d[1], d[2]])
        assert [m.position for m in matches] == [1]

    def test_decided_false_at_birth_never_buffered(self, sink, store):
        c = var(store, 1)
        store.close(c)
        d = docs("<$>", "<a>", "</a>", "</$>")
        matches = run(sink, [d[0], Activation(c), d[1], d[2]])
        assert matches == []
        assert sink.output_stats.peak_buffered_events == 0

    def test_order_preserved_across_decisions(self, sink, store):
        """A later candidate decided early must wait for an earlier one."""
        c1, c2 = var(store, 1), var(store, 2)
        d = docs("<$>", "<a>", "</a>", "<b>", "</b>", "</$>")
        run(sink, [d[0], Activation(c1), d[1], d[2]])
        run(sink, [Activation(c2), d[3], Contribute(c2, TRUE), d[4]])
        assert not sink.results  # b is ready but a is still undecided
        matches = run(sink, [Contribute(c1, TRUE)])
        assert [m.position for m in matches] == [1, 2]

    def test_sec_III_10_candidate_scenario(self, sink, store):
        """candidate1 dropped via {co2,false}; candidate2 emitted directly."""
        co1, co2 = var(store, 1), var(store, 2)
        d = docs("<$>", "<c>", "</c>", "<c>", "</c>", "</$>")
        run(sink, [d[0], Activation(co2), d[1], d[2]])
        matches = run(sink, [Close(co2)])
        assert matches == []  # candidate1 discarded
        run(sink, [Contribute(co1, TRUE)])
        matches = run(sink, [Activation(co1), d[3], d[4]])
        assert [m.position for m in matches] == [2]


class TestBufferAccounting:
    def test_no_candidates_no_buffering(self, sink):
        d = docs("<$>", "<a>", "<b>", "</b>", "</a>", "</$>")
        run(sink, d)
        assert sink.output_stats.peak_buffered_events == 0

    def test_log_trimmed_after_emission(self, sink):
        d = docs("<$>", "<a>", "</a>", "<b>", "</b>", "</$>")
        run(sink, [d[0], Activation(TRUE), d[1], d[2], d[3], d[4], d[5]])
        assert len(sink._log) == 0

    def test_positions_only_mode_skips_buffering(self, store):
        sink = OutputTransducer(store, collect_events=False)
        d = docs("<$>", "<a>", "</a>", "</$>")
        matches = run(sink, [d[0], Activation(TRUE), d[1], d[2], d[3]])
        assert matches[0].events is None
        assert sink.output_stats.peak_buffered_events == 0
        with pytest.raises(ValueError):
            matches[0].to_xml()

    def test_undecided_candidate_forces_buffering(self, sink, store):
        c = var(store, 1)
        d = docs("<$>", "<a>", "<b>", "</b>", "</a>", "</$>")
        run(sink, [d[0], Activation(c), d[1], d[2], d[3], d[4]])
        assert sink.output_stats.peak_buffered_events == 4


class TestMatchObject:
    def test_to_xml(self, sink):
        d = docs("<$>", "<a>", "<b>", "</b>", "</a>", "</$>")
        matches = run(sink, [d[0], Activation(TRUE), d[1], d[2], d[3], d[4], d[5]])
        assert matches[0].to_xml() == "<a><b></b></a>"

    def test_match_is_frozen(self, sink):
        d = docs("<$>", "<a>", "</a>", "</$>")
        (match,) = run(sink, [d[0], Activation(TRUE), d[1], d[2], d[3]])
        with pytest.raises(AttributeError):
            match.position = 9
