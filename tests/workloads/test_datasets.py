"""Unit tests for the paper-analog datasets (MONDIAL, WordNet, DMOZ)."""

import itertools

import pytest

from repro import SpexEngine
from repro.rpeq.parser import parse
from repro.workloads import (
    DMOZ_QUERIES,
    MONDIAL_QUERIES,
    TICKER_QUERIES,
    WORDNET_QUERIES,
    dmoz_content,
    dmoz_structure,
    mondial,
    sensor_feed,
    stock_ticker,
    wordnet,
)
from repro.xmlstream.events import EndDocument
from repro.xmlstream.stats import measure
from repro.xmlstream.validate import is_well_formed


class TestMondial:
    def test_well_formed(self):
        assert is_well_formed(mondial(seed=7, countries=30))

    def test_depth_matches_paper(self):
        # Paper: MONDIAL has maximum depth 5 (mondial > country >
        # province > city > leaf).
        stats = measure(mondial(seed=7, countries=50))
        assert stats.max_depth == 5

    def test_default_scale_close_to_paper(self):
        stats = measure(mondial())
        assert 15_000 < stats.elements < 40_000  # paper: 24,184

    def test_queries_parse_and_run(self):
        events = list(mondial(seed=7, countries=10))
        for query in MONDIAL_QUERIES.values():
            SpexEngine(parse(query), collect_events=False).count(iter(events))


class TestWordnet:
    def test_well_formed(self):
        assert is_well_formed(wordnet(seed=7, nouns=50))

    def test_flat_depth(self):
        assert measure(wordnet(seed=7, nouns=50)).max_depth == 3

    def test_queries_have_expected_selectivity(self):
        events = list(wordnet(seed=7, nouns=300))
        class1 = SpexEngine(WORDNET_QUERIES[1], collect_events=False).count(iter(events))
        class2 = SpexEngine(WORDNET_QUERIES[2], collect_events=False).count(iter(events))
        assert class1 > 0 and class2 > 0
        assert class2 <= 300  # one lexID per qualified noun


class TestDmoz:
    def test_structure_well_formed(self):
        assert is_well_formed(dmoz_structure(seed=7, topics=100))

    def test_content_richer_than_structure(self):
        structure = measure(dmoz_structure(seed=7, topics=200)).elements
        content = measure(dmoz_content(seed=7, topics=200)).elements
        assert content > structure

    def test_flat_depth(self):
        assert measure(dmoz_structure(seed=7, topics=100)).max_depth == 3

    def test_queries_run(self):
        events = list(dmoz_structure(seed=7, topics=50))
        for query in DMOZ_QUERIES.values():
            SpexEngine(query, collect_events=False).count(iter(events))


class TestInfiniteStreams:
    def test_ticker_never_terminates_document(self):
        events = list(itertools.islice(stock_ticker(seed=1), 5000))
        assert not any(isinstance(e, EndDocument) for e in events)

    def test_ticker_limit_stops_generation(self):
        events = list(stock_ticker(seed=1, limit=10))
        trades = sum(1 for e in events if getattr(e, "label", None) == "trade") // 2
        assert trades == 10

    def test_ticker_queries_match_progressively(self):
        engine = SpexEngine(TICKER_QUERIES["all_trades"], collect_events=False)
        count = sum(1 for _ in engine.run(stock_ticker(seed=1, limit=50)))
        assert 0 < count <= 50

    def test_sensor_feed_bounded_depth(self):
        events = list(sensor_feed(seed=1, limit=100))
        depth = 0
        max_depth = 0
        for event in events:
            label = getattr(event, "label", None)
            if label is not None:
                if event.__class__.__name__ == "StartElement":
                    depth += 1
                    max_depth = max(max_depth, depth)
                elif event.__class__.__name__ == "EndElement":
                    depth -= 1
        assert max_depth <= 3


class TestXmark:
    def test_well_formed(self):
        from repro.workloads import xmark
        from repro.xmlstream.validate import is_well_formed

        assert is_well_formed(xmark(seed=7, scale=20))

    def test_depth_profile(self):
        from repro.workloads import xmark

        stats = measure(xmark(seed=7, scale=40))
        assert 6 <= stats.max_depth <= 7
        assert stats.distinct_labels > 15

    def test_deterministic(self):
        from repro.workloads import xmark

        assert list(xmark(seed=3, scale=10)) == list(xmark(seed=3, scale=10))

    def test_queries_agree_across_evaluators(self):
        from repro.baselines import DomEvaluator
        from repro.rpeq import parse
        from repro.workloads import XMARK_QUERIES, xmark

        events = list(xmark(seed=7, scale=15))
        from repro.xmlstream.tree import build_document

        document = build_document(iter(events))
        for query in XMARK_QUERIES.values():
            expr = parse(query)
            oracle = sorted(
                n.position for n in DomEvaluator(expr).evaluate_document(document)
            )
            spex = sorted(
                SpexEngine(expr, collect_events=False).positions(iter(events))
            )
            assert spex == oracle, query


class TestTreebank:
    def test_well_formed(self):
        from repro.workloads import treebank
        from repro.xmlstream.validate import is_well_formed

        assert is_well_formed(treebank(seed=7, sentences=30))

    def test_deep_recursion_profile(self):
        from repro.workloads import treebank

        stats = measure(treebank(seed=7, sentences=300, max_depth=30))
        assert stats.max_depth >= 12  # genuinely deep
        assert stats.distinct_labels >= 7

    def test_depth_budget_respected(self):
        from repro.workloads import treebank

        stats = measure(treebank(seed=7, sentences=300, max_depth=10))
        assert stats.max_depth <= 14  # budget + bounded overshoot of leaves

    def test_queries_agree_with_oracle(self):
        from repro.baselines import DomEvaluator
        from repro.rpeq import parse
        from repro.workloads import TREEBANK_QUERIES, treebank
        from repro.xmlstream.tree import build_document

        events = list(treebank(seed=7, sentences=25))
        document = build_document(iter(events))
        for query in TREEBANK_QUERIES.values():
            expr = parse(query)
            oracle = sorted(
                n.position for n in DomEvaluator(expr).evaluate_document(document)
            )
            spex = sorted(
                SpexEngine(expr, collect_events=False).positions(iter(events))
            )
            assert spex == oracle, query
