"""Tests for the dataset-materialization CLI."""

import pytest

from repro.workloads.__main__ import main


class TestWorkloadsCli:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "mondial.xml"
        assert main(["-o", str(path), "mondial", "--countries", "3"]) == 0
        text = path.read_text()
        assert text.startswith("<mondial>")
        assert "<country>" in text

    def test_stdout(self, capsys):
        assert main(["random", "--elements", "20"]) == 0
        out = capsys.readouterr().out
        assert out.count("<") >= 20

    def test_file_round_trips_through_engine(self, tmp_path):
        from repro import SpexEngine

        path = tmp_path / "xmark.xml"
        main(["-o", str(path), "xmark", "--scale", "4"])
        count = SpexEngine("_*.item.name", collect_events=False).count(str(path))
        assert count > 0

    def test_seed_changes_output(self, capsys):
        main(["--seed", "1", "random", "--elements", "30"])
        first = capsys.readouterr().out
        main(["--seed", "2", "random", "--elements", "30"])
        second = capsys.readouterr().out
        assert first != second

    def test_indent_mode(self, capsys):
        assert main(["--indent", "wordnet", "--nouns", "2"]) == 0
        assert "\n" in capsys.readouterr().out

    def test_dataset_required(self):
        with pytest.raises(SystemExit):
            main([])
