"""Unit tests for synthetic workload generators."""

from repro.workloads.generators import (
    deep_chain,
    nested_closure_workload,
    random_tree,
    text_document,
    wide_flat,
)
from repro.xmlstream.stats import measure
from repro.xmlstream.validate import is_well_formed


class TestRandomTree:
    def test_well_formed(self):
        assert is_well_formed(random_tree(seed=1, elements=500))

    def test_deterministic_per_seed(self):
        assert list(random_tree(seed=3, elements=100)) == list(
            random_tree(seed=3, elements=100)
        )

    def test_seeds_differ(self):
        assert list(random_tree(seed=1, elements=100)) != list(
            random_tree(seed=2, elements=100)
        )

    def test_element_count_exact(self):
        assert measure(random_tree(seed=5, elements=321)).elements == 321

    def test_depth_bound_respected(self):
        stats = measure(random_tree(seed=5, elements=2000, max_depth=4))
        assert stats.max_depth <= 4

    def test_label_pool(self):
        stats = measure(random_tree(seed=5, elements=500, labels=("x", "y")))
        assert stats.distinct_labels <= 2


class TestDeepChain:
    def test_shape(self):
        stats = measure(deep_chain(depth=50))
        assert stats.max_depth == 50
        assert stats.elements == 50

    def test_leaf_label(self):
        stats = measure(deep_chain(depth=10, leaf_label="z"))
        assert stats.max_depth == 11
        assert stats.elements == 11

    def test_well_formed(self):
        assert is_well_formed(deep_chain(depth=100, leaf_label="z"))


class TestWideFlat:
    def test_shape(self):
        stats = measure(wide_flat(elements=200))
        assert stats.max_depth == 3
        assert stats.elements == 1 + 200 * 2

    def test_no_children(self):
        stats = measure(wide_flat(elements=100, child_label=None))
        assert stats.max_depth == 2


class TestNestedClosureWorkload:
    def test_shape(self):
        stats = measure(nested_closure_workload(repetitions=5, nest_depth=6))
        assert stats.max_depth == 8  # root + 6 a's + b
        assert stats.elements == 1 + 5 * 7

    def test_well_formed(self):
        assert is_well_formed(nested_closure_workload(repetitions=3, nest_depth=4))


class TestTextDocument:
    def test_well_formed_with_text(self):
        events = list(text_document(seed=2, elements=100))
        assert is_well_formed(iter(events))
        assert measure(iter(events)).text_bytes > 0


class TestAdversarialGenerators:
    def test_billion_laughs_is_text(self):
        from repro.workloads import billion_laughs

        text = billion_laughs(depth=4, fanout=3)
        assert text.startswith("<?xml")
        assert text.count("<!ENTITY") == 5  # e0 .. e4

    def test_billion_laughs_blocked_by_default_limits(self):
        import pytest

        from repro.errors import InputLimitError
        from repro.workloads import billion_laughs
        from repro.xmlstream.parser import ParserLimits, parse_string

        with pytest.raises(InputLimitError):
            list(parse_string(billion_laughs(), limits=ParserLimits.default()))

    def test_pathological_nesting_is_lazy_and_well_formed(self):
        from repro.workloads import pathological_nesting

        stream = pathological_nesting(depth=200)
        assert iter(stream) is iter(stream)  # a generator, not a list
        assert is_well_formed(pathological_nesting(depth=200))
        assert measure(pathological_nesting(depth=200)).max_depth == 200

    def test_wide_fanout_counts(self):
        from repro.workloads import wide_fanout

        stats = measure(wide_fanout(children=1_000))
        assert stats.elements == 1_001  # root + children
        assert stats.max_depth == 2

    def test_giant_text_single_run(self):
        from repro.workloads import giant_text
        from repro.xmlstream.events import Text

        total = sum(
            len(e.content)
            for e in giant_text(length=100_000, chunk=1_024)
            if isinstance(e, Text)
        )
        assert total == 100_000

    def test_corpus_is_replayable(self):
        from repro.workloads import adversarial_corpus

        corpus = adversarial_corpus(scale=1)
        assert "billion_laughs" in corpus
        nesting = corpus["pathological_nesting"]
        # factories yield a fresh iterator per call
        assert list(nesting()) == list(nesting())
