"""Unit tests for memory tracing."""

from repro.bench.memory import traced


class TestTraced:
    def test_result_passthrough(self):
        assert traced(lambda: 42).result == 42

    def test_allocation_measured(self):
        run = traced(lambda: [0] * 500_000)
        assert run.peak_bytes > 1_000_000

    def test_small_allocations_smaller_than_big(self):
        small = traced(lambda: [0] * 1_000).peak_bytes
        big = traced(lambda: [0] * 1_000_000).peak_bytes
        assert big > small * 10

    def test_units(self):
        run = traced(lambda: bytearray(2 * 1024 * 1024))
        assert 1.5 < run.peak_mib < 3.0
        assert run.peak_kib == run.peak_bytes / 1024
