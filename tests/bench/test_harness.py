"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import make_processor, run_grid, run_one
from repro.errors import UnsupportedFeatureError
from repro.xmlstream.parser import parse_string

from ..conftest import PAPER_DOC


def workload():
    return parse_string(PAPER_DOC)


ALL_PROCESSORS = ["spex", "dom", "treegrep", "xscan", "buffer-dom"]


class TestMakeProcessor:
    @pytest.mark.parametrize("name", ALL_PROCESSORS)
    def test_processors_agree_on_counts(self, name):
        evaluate = make_processor(name, "a.c")
        assert evaluate(workload()) == 1

    def test_unknown_processor(self):
        with pytest.raises(ValueError):
            make_processor("saxon", "a")

    def test_xscan_rejects_qualifiers(self):
        with pytest.raises(UnsupportedFeatureError):
            make_processor("xscan", "a[b]")


class TestRunOne:
    def test_result_fields(self):
        result = run_one("spex", "1", "a.c", workload)
        assert result.processor == "spex"
        assert result.matches == 1
        assert result.seconds >= 0
        assert result.peak_memory_bytes is None

    def test_memory_measurement(self):
        result = run_one("dom", "1", "_*._", workload, measure_memory=True)
        assert result.peak_memory_bytes is not None
        assert result.peak_memory_bytes > 0


class TestRunGrid:
    def test_full_grid(self):
        results = run_grid(["spex", "dom"], {"1": "a.c", "2": "_*._"}, workload)
        assert len(results) == 4
        counts = {(r.query_id, r.processor): r.matches for r in results}
        assert counts[("1", "spex")] == counts[("1", "dom")] == 1
        assert counts[("2", "spex")] == counts[("2", "dom")] == 5

    def test_unsupported_combinations_skipped(self):
        results = run_grid(["spex", "xscan"], {"q": "a[b]"}, workload)
        assert [r.processor for r in results] == ["spex"]

    def test_unsupported_raises_when_strict(self):
        with pytest.raises(UnsupportedFeatureError):
            run_grid(["xscan"], {"q": "a[b]"}, workload, skip_unsupported=False)
