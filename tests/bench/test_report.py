"""Unit tests for report formatting."""

from repro.bench.harness import RunResult
from repro.bench.report import (
    check_match_agreement,
    format_table,
    grid_table,
    speedup_summary,
)


def results():
    return [
        RunResult("spex", "1", "a", 0.5, 10, 1024),
        RunResult("dom", "1", "a", 1.0, 10, 2048 * 1024),
        RunResult("spex", "2", "b", 2.0, 3, None),
        RunResult("dom", "2", "b", 1.0, 3, None),
    ]


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table("T", ["x", "y"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[2] and "y" in lines[2]
        assert "2.500" in lines[4]

    def test_none_renders_dash(self):
        text = format_table("T", ["x"], [[None]])
        assert "-" in text.splitlines()[-1]


class TestGridTable:
    def test_seconds_pivot(self):
        text = grid_table("G", results(), ["spex", "dom"])
        assert "0.500" in text and "1.000" in text

    def test_matches_pivot(self):
        text = grid_table("G", results(), ["spex", "dom"], value="matches")
        assert "10" in text

    def test_memory_pivot(self):
        text = grid_table("G", results(), ["spex", "dom"], value="peak_memory_mib")
        assert "2.0" in text

    def test_missing_cells_dash(self):
        text = grid_table("G", results(), ["spex", "dom", "xscan"])
        assert text.count("-") > 0


class TestSpeedupSummary:
    def test_direction_reported(self):
        text = speedup_summary(results(), baseline="dom")
        assert "query 1" in text and "2.00x faster" in text
        assert "query 2" in text and "2.00x slower" in text


class TestAgreement:
    def test_agreeing_counts_pass(self):
        assert check_match_agreement(results()) == []

    def test_disagreement_reported(self):
        rows = results() + [RunResult("treegrep", "1", "a", 0.1, 11)]
        problems = check_match_agreement(rows)
        assert len(problems) == 1 and "query 1" in problems[0]
