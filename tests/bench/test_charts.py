"""Unit tests for ASCII chart rendering."""

from repro.bench.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_scaling_to_peak(self):
        chart = bar_chart("T", [("a", 1.0), ("b", 2.0)], width=10)
        lines = chart.splitlines()
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10

    def test_values_printed(self):
        chart = bar_chart("T", [("a", 0.25)], unit="s")
        assert "0.250s" in chart

    def test_zero_values(self):
        chart = bar_chart("T", [("a", 0.0), ("b", 1.0)])
        assert "|" in chart.splitlines()[2]

    def test_empty(self):
        assert "no data" in bar_chart("T", [])

    def test_labels_aligned(self):
        chart = bar_chart("T", [("short", 1.0), ("a-longer-label", 1.0)])
        bars = [line.index("|") for line in chart.splitlines()[2:]]
        assert len(set(bars)) == 1


class TestGroupedBarChart:
    def test_group_by_series_rows(self):
        chart = grouped_bar_chart(
            "G", ["1", "2"], {"x": [1.0, 2.0], "y": [3.0, 4.0]}
        )
        lines = chart.splitlines()
        assert any(line.startswith("1 x") for line in lines)
        assert any(line.startswith("2 y") for line in lines)

    def test_row_count(self):
        chart = grouped_bar_chart("G", ["1", "2", "3"], {"x": [1, 2, 3], "y": [1, 2, 3]})
        assert len(chart.splitlines()) == 2 + 6
