"""Unit tests for the standalone experiment drivers."""

from repro.bench.experiments import EXPERIMENTS, figure14, figure15, memory, scaling


def collect():
    lines: list[str] = []
    return lines, lines.append


class TestDrivers:
    def test_figure14_report_shape(self):
        lines, sink = collect()
        report = figure14(scale=0.05, out=sink)
        assert "MONDIAL" in report and "WordNet" in report
        assert "spex" in report and "dom" in report and "treegrep" in report
        assert lines  # printed through the sink

    def test_figure15_report_shape(self):
        report = figure15(scale=0.02, out=lambda s: None)
        assert "structure/1" in report and "content/4" in report
        assert "peak stack" in report

    def test_memory_report_shape(self):
        report = memory(scale=0.05, out=lambda s: None)
        assert "spex" in report and "buffer-dom" in report

    def test_scaling_report_shape(self):
        report = scaling(scale=0.05, out=lambda s: None)
        assert "depth" in report and "size" in report

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "figure14",
            "figure15",
            "memory",
            "scaling",
            "multiquery",
            "xmark",
        }

    def test_multiquery_report(self):
        from repro.bench.experiments import multiquery

        report = multiquery(scale=0.2, out=lambda s: None)
        assert "shared-prefix" in report

    def test_xmark_report(self):
        from repro.bench.experiments import xmark_experiment

        report = xmark_experiment(scale=0.05, out=lambda s: None)
        assert "spex" in report and "treegrep" in report


class TestCli:
    def test_main_runs_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["scaling", "--scale", "0.05"]) == 0
        assert "peak stack" in capsys.readouterr().out
