"""Regression-gate semantics of :mod:`repro.bench.compare`.

Focus: the per-workload ``gate`` dict — ungated metrics are reported
but can never fail the gate, while baselines without the field keep
every band at full strictness (backward compatibility with entries
committed before the field existed).
"""

import pytest

from repro.bench.compare import compare
from repro.bench.trajectory import SCHEMA_VERSION, WorkloadResult


def run_with(workloads):
    return {"schema": SCHEMA_VERSION, "workloads": workloads}


def entry(
    matches=10,
    events=100,
    events_per_second=1000.0,
    peak_memory_bytes=5000,
    **extra,
):
    obj = {
        "matches": matches,
        "events": events,
        "events_per_second": events_per_second,
        "peak_memory_bytes": peak_memory_bytes,
    }
    obj.update(extra)
    return obj


class TestGateField:
    def test_ungated_throughput_regression_passes(self):
        baseline = run_with(
            {"shards": entry(gate={"events_per_second": False})}
        )
        current = run_with({"shards": entry(events_per_second=10.0)})
        report = compare(baseline, current)
        assert report.ok
        delta = next(
            d for d in report.deltas if d.metric == "events_per_second"
        )
        assert "skip" in delta.note

    def test_gated_metrics_still_fail(self):
        # The same entry's match count stays zero-tolerance.
        baseline = run_with(
            {"shards": entry(gate={"events_per_second": False})}
        )
        current = run_with(
            {"shards": entry(matches=11, events_per_second=10.0)}
        )
        report = compare(baseline, current)
        assert not report.ok
        assert [d.metric for d in report.failures] == ["matches"]

    def test_missing_gate_field_means_full_strictness(self):
        baseline = run_with({"multiquery": entry()})
        current = run_with({"multiquery": entry(events_per_second=10.0)})
        assert not compare(baseline, current).ok

    def test_gate_true_is_not_a_skip(self):
        baseline = run_with(
            {"shards": entry(gate={"events_per_second": True})}
        )
        current = run_with({"shards": entry(events_per_second=10.0)})
        assert not compare(baseline, current).ok

    def test_ungated_memory_growth_passes(self):
        baseline = run_with(
            {"shards": entry(gate={"peak_memory_bytes": False})}
        )
        current = run_with({"shards": entry(peak_memory_bytes=500000)})
        assert compare(baseline, current).ok


class TestCompatibility:
    def test_current_only_workload_is_tolerated(self):
        # A new PR may add a smoke workload the old baseline lacks.
        baseline = run_with({"multiquery": entry()})
        current = run_with({"multiquery": entry(), "shards": entry()})
        assert compare(baseline, current).ok

    def test_missing_current_workload_raises(self):
        baseline = run_with({"multiquery": entry(), "shards": entry()})
        current = run_with({"multiquery": entry()})
        with pytest.raises(ValueError, match="missing workload"):
            compare(baseline, current)

    def test_workload_result_emits_gate_only_when_set(self):
        plain = WorkloadResult(
            workload="w",
            seconds=1.0,
            events=10,
            events_per_second=10.0,
            matches=1,
        )
        assert "gate" not in plain.to_obj()
        gated = WorkloadResult(
            workload="w",
            seconds=1.0,
            events=10,
            events_per_second=10.0,
            matches=1,
            gate={"events_per_second": False},
        )
        assert gated.to_obj()["gate"] == {"events_per_second": False}


class TestLatencyRows:
    """p50/p99 detail percentiles render as informational rows."""

    def test_latency_rows_present_and_never_gated(self):
        baseline = run_with(
            {"service": entry(detail={"p50_ms": 10.0, "p99_ms": 50.0})}
        )
        current = run_with(
            {"service": entry(detail={"p50_ms": 400.0, "p99_ms": 900.0})}
        )
        report = compare(baseline, current)
        rows = {d.metric: d for d in report.deltas}
        assert rows["p50_ms"].ok and rows["p99_ms"].ok
        assert rows["p99_ms"].current == 900.0
        assert "informational" in rows["p50_ms"].note
        assert report.ok

    def test_latency_rows_absent_without_detail(self):
        report = compare(
            run_with({"multiquery": entry()}),
            run_with({"multiquery": entry()}),
        )
        assert not any(d.metric in ("p50_ms", "p99_ms") for d in report.deltas)


def lane(matches=5, events=100, events_per_second=2000.0):
    return {
        "queries": 2,
        "events": events,
        "seconds": 0.05,
        "events_per_second": events_per_second,
        "matches": matches,
    }


class TestLaneSeries:
    """The per-lane multiquery series gates like the blended metrics."""

    def test_identical_lane_series_passes(self):
        run = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(), "hybrid": lane()}})}
        )
        report = compare(run, run)
        assert report.ok
        assert any(d.metric == "lane[dfa].ev/s" for d in report.deltas)

    def test_lane_match_drift_fails_exactly(self):
        baseline = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(matches=5)}})}
        )
        current = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(matches=6)}})}
        )
        report = compare(baseline, current)
        assert [d.metric for d in report.failures] == ["lane[dfa].matches"]

    def test_lane_throughput_shares_the_band(self):
        baseline = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(events_per_second=2000.0)}})}
        )
        within = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(events_per_second=1800.0)}})}
        )
        outside = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(events_per_second=100.0)}})}
        )
        assert compare(baseline, within).ok
        report = compare(baseline, outside)
        assert [d.metric for d in report.failures] == ["lane[dfa].ev/s"]

    def test_missing_lane_in_current_run_fails(self):
        baseline = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(), "hybrid": lane()}})}
        )
        current = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane()}})}
        )
        report = compare(baseline, current)
        assert [d.metric for d in report.failures] == ["lane[hybrid]"]

    def test_new_lane_in_current_run_is_tolerated(self):
        baseline = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane()}})}
        )
        current = run_with(
            {"multiquery": entry(detail={"lanes": {"dfa": lane(), "gated": lane()}})}
        )
        assert compare(baseline, current).ok

    def test_baselines_without_lanes_skip_the_series(self):
        report = compare(
            run_with({"multiquery": entry()}),
            run_with({"multiquery": entry(detail={"lanes": {"dfa": lane()}})}),
        )
        assert report.ok
        assert not any(d.metric.startswith("lane[") for d in report.deltas)
