"""Unit and property tests for rendering rpeq back to text."""

import pytest
from hypothesis import given

from repro.errors import ReproError
from repro.rpeq.ast import Concat, Empty, Label, Qualifier, Star, Union
from repro.rpeq.parser import parse
from repro.rpeq.unparse import unparse

from ..conftest import rpeq_queries


class TestUnparse:
    @pytest.mark.parametrize(
        "query",
        [
            "a",
            "_",
            "a+",
            "_*",
            "a?",
            "a.b.c",
            "a|b",
            "a.(b|c)",
            "_*.a[b].c",
            "a[b][c]",
            "a[b[c]]",
            "(a|b).c?",
            "a[b.c|d]",
        ],
    )
    def test_round_trip_examples(self, query):
        assert parse(unparse(parse(query))) == parse(query)

    def test_minimal_parentheses(self):
        assert unparse(parse("a.(b|c)")) == "a.(b|c)"
        assert unparse(parse("(a.b)|c")) == "a.b|c"

    def test_empty_whole_query(self):
        assert unparse(Empty()) == ""

    def test_embedded_empty_rejected(self):
        with pytest.raises(ReproError):
            unparse(Concat(Label("a"), Empty()))

    def test_qualifier_condition_not_parenthesized(self):
        assert unparse(Qualifier(Label("a"), Union(Label("b"), Label("c")))) == "a[b|c]"


class TestRoundTripProperty:
    @given(rpeq_queries())
    def test_parse_unparse_identity(self, expr):
        assert parse(unparse(expr)) == expr
