"""Unit tests for the XPath front-end."""

import pytest

from repro.errors import QuerySyntaxError, UnsupportedFeatureError
from repro.rpeq.parser import parse
from repro.rpeq.xpath import xpath_to_rpeq


def same(xpath, rpeq):
    assert xpath_to_rpeq(xpath) == parse(rpeq)


class TestTranslation:
    def test_child_steps(self):
        same("/a/b", "a.b")

    def test_descendant_prefix(self):
        same("//a", "_*.a")

    def test_descendant_inside(self):
        same("/a//b", "a._*.b")

    def test_star_is_wildcard(self):
        same("/a/*", "a._")

    def test_predicate(self):
        same("//country[province]/name", "_*.country[province].name")

    def test_nested_predicates(self):
        same("//a[b[c]]", "_*.a[b[c]]")

    def test_predicate_with_descendant(self):
        same("//a[.//b]/c", "_*.a[_*.b].c")

    def test_predicate_union(self):
        same("//a[b|c]", "_*.a[b|c]")

    def test_explicit_axes(self):
        same("/child::a/descendant::b", "a._*.b")

    def test_stacked_predicates(self):
        same("//a[b][c]", "_*.a[b][c]")

    def test_relative_path(self):
        same("a/b", "a.b")

    def test_bare_descendant_all(self):
        same("//*", "_*._")


class TestRejections:
    @pytest.mark.parametrize(
        "xpath",
        [
            "//a/parent::b",            # parent label not statically provable
            "/a//b/ancestor::c",        # ancestor outside the //s form
            "//a/preceding-sibling::b",
            "//a/@id",
            "//a[@id]",
            "//a[text()]",
            "//a[b=1]",
            "//a[position()]",
        ],
    )
    def test_unsupported_constructs(self, xpath):
        with pytest.raises(UnsupportedFeatureError):
            xpath_to_rpeq(xpath)


class TestReverseAxisRewriting:
    """The 'XPath: Looking Forward' rewritings the paper cites."""

    def test_parent_after_named_step(self):
        same("//a/x/parent::a", "_*.a[x]")

    def test_parent_wildcard(self):
        assert xpath_to_rpeq("//x/parent::*") is not None

    def test_parent_keeps_following_steps(self):
        same("//a/x/parent::a/y", "_*.a[x].y")

    def test_parent_with_predicate(self):
        same("//item/name/parent::item[payment]", "_*.item[name][payment]")

    def test_ancestor_canonical_form(self):
        same("//x/ancestor::l", "_*.l[_*.x]")

    def test_ancestor_wildcard(self):
        same("//x/ancestor::*", "_*._[_*.x]")

    def test_parent_semantics(self):
        from repro import SpexEngine

        doc = "<r><a><x/></a><b><x/></b></r>"
        # parents of any x: the a (2) and the b (4)
        assert SpexEngine(xpath_to_rpeq("//x/parent::*")).positions(doc) == [2, 4]

    def test_ancestor_semantics(self):
        from repro import SpexEngine

        doc = "<r><a><x/></a><b/></r>"
        assert SpexEngine(xpath_to_rpeq("//x/ancestor::*")).positions(doc) == [1, 2]

    def test_absolute_path_in_predicate(self):
        with pytest.raises(UnsupportedFeatureError):
            xpath_to_rpeq("//a[/b]")

    @pytest.mark.parametrize("xpath", ["//a[", "//a]", "//"])
    def test_malformed(self, xpath):
        with pytest.raises((QuerySyntaxError, UnsupportedFeatureError)):
            xpath_to_rpeq(xpath)


class TestSemanticAgreement:
    def test_results_match_direct_rpeq(self):
        from repro import SpexEngine

        doc = "<lib><a><b/><c/></a><a><c/></a></lib>"
        via_xpath = SpexEngine(xpath_to_rpeq("//a[b]/c")).positions(doc)
        via_rpeq = SpexEngine("_*.a[b].c").positions(doc)
        assert via_xpath == via_rpeq


class TestBooleanPredicates:
    def test_and_becomes_stacked_qualifiers(self):
        same("//a[b and c]", "_*.a[b][c]")

    def test_or_becomes_union(self):
        same("//a[b or c]", "_*.a[b|c]")

    def test_chained_and(self):
        same("//a[b and c and d]", "_*.a[b][c][d]")

    def test_chained_or(self):
        same("//a[b or c or d]", "_*.a[b|c|d]")

    def test_pipe_and_or_equivalent(self):
        assert xpath_to_rpeq("//a[b | c]") == xpath_to_rpeq("//a[b or c]")

    def test_mixed_and_or_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="mixed"):
            xpath_to_rpeq("//a[b and c or d]")

    def test_and_with_paths(self):
        same("//a[b/c and .//d]", "_*.a[b.c][_*.d]")
