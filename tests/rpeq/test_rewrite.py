"""Unit and property tests for query simplification."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import analyze
from repro.rpeq.parser import parse
from repro.rpeq.rewrite import simplify

from ..conftest import event_streams, rpeq_queries


def simp(query):
    return simplify(parse(query))


class TestRules:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("(a|a)", "a"),
            ("(a|a).b", "a.b"),
            ("a??", "a?"),
            ("a+?", "a*"),
            ("a*?", "a*"),
            ("_*._*", "_*"),
            ("a*.a*", "a*"),
            ("a*.a+", "a+"),
            ("a+.a*", "a+"),
            ("(a|_)", "_"),
            ("(_|a)", "_"),
            ("(a+|_+)", "_+"),
            ("a[b?]", "a"),
            ("a[_*]", "a"),
            ("a[b][b]", "a[b]"),
            ("a[b[c?]]", "a[b]"),
        ],
    )
    def test_rewrites(self, before, after):
        assert simp(before) == parse(after)

    @pytest.mark.parametrize(
        "unchanged",
        ["a", "a.b", "a[b]", "a+.b+", "(a|b)", "a?.b", "_*.a[b].c", "a+.a+"],
    )
    def test_irreducible(self, unchanged):
        assert simp(unchanged) == parse(unchanged)

    def test_different_labels_not_fused(self):
        assert simp("a*.b*") == parse("a*.b*")

    def test_axes_untouched(self):
        assert simp("a.following::b") == parse("a.following::b")

    def test_simplification_shrinks_network(self):
        from repro import SpexEngine

        raw = SpexEngine(parse("(a|a)[b?]._*._*.c??")).network_degree()
        simplified = SpexEngine(simplify(parse("(a|a)[b?]._*._*.c??"))).network_degree()
        assert simplified < raw


class TestSemanticsPreserved:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rpeq_queries(), event_streams())
    def test_simplified_query_equivalent(self, expr, events):
        from repro.baselines import DomEvaluator
        from repro.xmlstream.tree import build_document

        document = build_document(events)
        original = sorted(
            n.position for n in DomEvaluator(expr).evaluate_document(document)
        )
        rewritten = sorted(
            n.position
            for n in DomEvaluator(simplify(expr)).evaluate_document(document)
        )
        assert rewritten == original

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rpeq_queries(), event_streams())
    def test_streaming_engine_agrees_on_simplified_form(self, expr, events):
        from repro import SpexEngine

        original = SpexEngine(expr, collect_events=False).positions(iter(events))
        rewritten = SpexEngine(simplify(expr), collect_events=False).positions(
            iter(events)
        )
        assert rewritten == original

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rpeq_queries())
    def test_never_grows(self, expr):
        assert analyze(simplify(expr)).length <= analyze(expr).length

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rpeq_queries())
    def test_idempotent(self, expr):
        once = simplify(expr)
        assert simplify(once) == once
