"""Unit tests for query analysis."""

from repro.analysis import analyze, labels_used, uses_wildcard
from repro.rpeq.parser import parse


class TestAnalyze:
    def test_simple_chain(self):
        profile = analyze(parse("a.b.c"))
        assert profile.steps == 3
        assert profile.qualifiers == 0
        assert profile.closures == 0
        assert profile.fragment == "rpeq*"

    def test_paper_running_example(self):
        profile = analyze(parse("_*.a[b].c"))
        assert profile.steps == 4
        assert profile.qualifiers == 1
        assert profile.closures == 1
        assert profile.wildcard_closures == 1
        assert profile.fragment == "rpeq*[]"

    def test_qualifier_only_fragment(self):
        assert analyze(parse("a[b].c")).fragment == "rpeq[]"

    def test_unions_and_optionals_counted(self):
        profile = analyze(parse("(a|b).c?"))
        assert profile.unions == 1
        assert profile.optionals == 1

    def test_qualifier_nesting_depth(self):
        assert analyze(parse("a[b]")).max_qualifier_nesting == 1
        assert analyze(parse("a[b[c]]")).max_qualifier_nesting == 2
        assert analyze(parse("a[b][c]")).max_qualifier_nesting == 1
        assert analyze(parse("a.b")).max_qualifier_nesting == 0

    def test_closure_under_qualifier_flag(self):
        assert analyze(parse("a[_*.b]")).has_closure_under_qualifier
        assert not analyze(parse("_*.a[b]")).has_closure_under_qualifier

    def test_length_grows_with_query(self):
        assert analyze(parse("a.b.c")).length > analyze(parse("a.b")).length


class TestHelpers:
    def test_labels_used(self):
        assert labels_used(parse("_*.a[b].c")) == {"a", "b", "c"}

    def test_wildcard_excluded_from_labels(self):
        assert labels_used(parse("_._")) == set()

    def test_uses_wildcard(self):
        assert uses_wildcard(parse("_*.a"))
        assert not uses_wildcard(parse("a.b"))

    def test_shim_module_is_gone(self):
        # repro.rpeq.analysis was a deprecated alias for
        # repro.analysis.metrics; it has been removed.
        import importlib.util

        assert importlib.util.find_spec("repro.rpeq.analysis") is None
