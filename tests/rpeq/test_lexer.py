"""Unit tests for the rpeq tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.rpeq.lexer import tokenize


def kinds(query):
    return [token.kind for token in tokenize(query)]


def texts(query):
    return [token.text for token in tokenize(query) if token.kind != "END"]


class TestTokenize:
    def test_paper_example(self):
        assert kinds("_*.a[b].c") == [
            "NAME", "STAR", "DOT", "NAME", "LBRK", "NAME", "RBRK",
            "DOT", "NAME", "END",
        ]

    def test_names_and_wildcard(self):
        assert texts("_.abc.x1-y_z") == ["_", ".", "abc", ".", "x1-y_z"]

    def test_whitespace_ignored(self):
        assert kinds(" a . b ") == kinds("a.b")

    def test_all_punctuation(self):
        assert kinds("(a|b)+*?") == [
            "LPAR", "NAME", "PIPE", "NAME", "RPAR", "PLUS", "STAR", "QMARK", "END",
        ]

    def test_positions(self):
        tokens = list(tokenize("a.b"))
        assert [t.position for t in tokens] == [0, 1, 2, 3]

    def test_empty_query_yields_end_only(self):
        assert kinds("") == ["END"]

    def test_invalid_character(self):
        with pytest.raises(QuerySyntaxError) as exc:
            list(tokenize("a.#b"))
        assert exc.value.position == 2

    def test_name_cannot_start_with_digit(self):
        with pytest.raises(QuerySyntaxError):
            list(tokenize("1abc"))
