"""Unit tests for the rpeq parser."""

import pytest

from repro.errors import QuerySyntaxError, UnsupportedFeatureError
from repro.rpeq.ast import (
    WILDCARD,
    Concat,
    Empty,
    Label,
    OptionalExpr,
    Plus,
    Qualifier,
    Star,
    Union,
)
from repro.rpeq.parser import parse


class TestAtoms:
    def test_label(self):
        assert parse("a") == Label("a")

    def test_wildcard(self):
        assert parse("_") == Label(WILDCARD)
        assert parse("_").is_wildcard

    def test_empty_query(self):
        assert parse("") == Empty()

    def test_parenthesized(self):
        assert parse("(a)") == Label("a")


class TestPostfix:
    def test_plus(self):
        assert parse("a+") == Plus(Label("a"))

    def test_star(self):
        assert parse("a*") == Star(Label("a"))

    def test_wildcard_closure(self):
        assert parse("_*") == Star(Label(WILDCARD))

    def test_optional(self):
        assert parse("a?") == OptionalExpr(Label("a"))

    def test_optional_of_group(self):
        assert parse("(a.b)?") == OptionalExpr(Concat(Label("a"), Label("b")))

    def test_qualifier(self):
        assert parse("a[b]") == Qualifier(Label("a"), Label("b"))

    def test_stacked_qualifiers(self):
        assert parse("a[b][c]") == Qualifier(Qualifier(Label("a"), Label("b")), Label("c"))

    def test_nested_qualifier(self):
        assert parse("a[b[c]]") == Qualifier(Label("a"), Qualifier(Label("b"), Label("c")))

    def test_qualifier_with_path(self):
        assert parse("a[b.c]") == Qualifier(Label("a"), Concat(Label("b"), Label("c")))

    def test_closure_on_expression_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("(a.b)+")

    def test_star_on_expression_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("(a|b)*")


class TestPrecedence:
    def test_concat_left_associative(self):
        assert parse("a.b.c") == Concat(Concat(Label("a"), Label("b")), Label("c"))

    def test_union_binds_loosest(self):
        assert parse("a.b|c") == Union(Concat(Label("a"), Label("b")), Label("c"))

    def test_parens_override(self):
        assert parse("a.(b|c)") == Concat(Label("a"), Union(Label("b"), Label("c")))

    def test_postfix_binds_tightest(self):
        assert parse("a.b?") == Concat(Label("a"), OptionalExpr(Label("b")))

    def test_qualifier_applies_to_step(self):
        assert parse("a.b[c]") == Concat(Label("a"), Qualifier(Label("b"), Label("c")))

    def test_paper_running_example(self):
        assert parse("_*.a[b].c") == Concat(
            Concat(Star(Label(WILDCARD)), Qualifier(Label("a"), Label("b"))),
            Label("c"),
        )


class TestErrors:
    @pytest.mark.parametrize(
        "bad", ["a.", ".a", "a|", "a[", "a[b", "a)", "(a", "a b", "[b]", "a[]"]
    )
    def test_malformed_queries(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as exc:
            parse("a.(b|)")
        assert exc.value.position == 5


class TestNestingLimits:
    """Pathological nesting fails cleanly, never with RecursionError."""

    def test_deep_parens_rejected(self):
        deep = "(" * 1000 + "a" + ")" * 1000
        with pytest.raises(QuerySyntaxError, match="nesting"):
            parse(deep)

    def test_deep_qualifiers_rejected(self):
        deep = "a" + "[b" * 1000 + "]" * 1000
        with pytest.raises(QuerySyntaxError, match="nesting"):
            parse(deep)

    def test_reasonable_nesting_accepted(self):
        moderate = "(" * 50 + "a" + ")" * 50
        assert parse(moderate) == parse("a")

    def test_long_flat_query_fine(self):
        flat = ".".join(["a"] * 2000)
        parse(flat)  # concatenation is iterative: no depth issue
