"""Unit tests for the random query generator."""

import random

from repro.analysis import analyze
from repro.rpeq.ast import Rpeq
from repro.rpeq.generate import GeneratorConfig, query_family, random_rpeq


class TestRandomRpeq:
    def test_deterministic_per_seed(self):
        assert random_rpeq(random.Random(5)) == random_rpeq(random.Random(5))

    def test_different_seeds_vary(self):
        samples = {random_rpeq(random.Random(seed)) for seed in range(40)}
        assert len(samples) > 10

    def test_produces_rpeq(self):
        assert isinstance(random_rpeq(random.Random(1)), Rpeq)

    def test_qualifier_free_config(self):
        config = GeneratorConfig(allow_qualifiers=False)
        for seed in range(60):
            expr = random_rpeq(random.Random(seed), config)
            assert analyze(expr).qualifiers == 0

    def test_closure_free_config(self):
        config = GeneratorConfig(allow_closures=False)
        for seed in range(60):
            expr = random_rpeq(random.Random(seed), config)
            assert analyze(expr).closures == 0

    def test_label_pool_respected(self):
        from repro.analysis import labels_used

        config = GeneratorConfig(labels=("x", "y"))
        for seed in range(40):
            expr = random_rpeq(random.Random(seed), config)
            assert labels_used(expr) <= {"x", "y"}


class TestQueryFamily:
    def test_length_grows_linearly(self):
        lengths = [analyze(query_family(n, 0)).length for n in (2, 4, 8)]
        deltas = [b - a for a, b in zip(lengths, lengths[1:])]
        assert deltas[1] == 2 * deltas[0]

    def test_qualifier_count(self):
        assert analyze(query_family(6, 3)).qualifiers == 3

    def test_always_parses_back(self):
        from repro.rpeq.parser import parse
        from repro.rpeq.unparse import unparse

        expr = query_family(5, 2)
        assert parse(unparse(expr)) == expr
