"""Unit tests for the lazy-DFA streaming (X-Scan analog) evaluator."""

import pytest

from repro.baselines.xscan import XScanEvaluator
from repro.errors import UnsupportedFeatureError
from repro.rpeq.parser import parse
from repro.xmlstream.parser import parse_string

from ..conftest import PAPER_DOC


def positions(query, doc=PAPER_DOC):
    return XScanEvaluator(parse(query)).evaluate(parse_string(doc))


class TestMatching:
    def test_child_chain(self):
        assert positions("a.c") == [5]

    def test_closures(self):
        assert positions("a+.c+") == [3, 5]

    def test_all_elements(self):
        assert positions("_*._") == [1, 2, 3, 4, 5]

    def test_root_via_epsilon(self):
        assert positions("_*") == [0, 1, 2, 3, 4, 5]

    def test_union_and_optional(self):
        # (a|b) matches the top-level <a>; c? adds its c child (pos 5).
        assert positions("(a|b).c?") == [1, 5]
        assert positions("a.(a|b).c?") == [2, 3, 4]


class TestStreaming:
    def test_results_in_document_order(self):
        order = positions("_+")
        assert order == sorted(order)

    def test_matches_is_lazy(self):
        matcher = XScanEvaluator(parse("_*.c"))
        stream = parse_string(PAPER_DOC)
        iterator = matcher.matches(stream)
        assert next(iterator) == 3  # yielded before the stream is done

    def test_qualifiers_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            XScanEvaluator(parse("a[b]"))


class TestLazyDfa:
    def test_transitions_memoized(self):
        matcher = XScanEvaluator(parse("_*.c"))
        matcher.evaluate(parse_string(PAPER_DOC))
        built_once = matcher.dfa_states_built
        matcher.evaluate(parse_string(PAPER_DOC))
        assert matcher.dfa_states_built == built_once

    def test_only_occurring_labels_materialized(self):
        matcher = XScanEvaluator(parse("a.b.c.d.e.f"))
        matcher.evaluate(parse_string("<a><x/></a>"))
        # Only (initial, 'a') and descendant combinations that occurred.
        assert matcher.dfa_states_built <= 3
