"""Unit tests for the buffer-everything baseline."""

from repro.baselines.naive_stream import NaiveStreamEvaluator
from repro.rpeq.parser import parse
from repro.xmlstream.parser import parse_string

from ..conftest import PAPER_DOC


class TestNaiveStream:
    def test_same_answers_as_dom(self):
        evaluator = NaiveStreamEvaluator(parse("_*.a[b].c"))
        nodes = evaluator.evaluate(parse_string(PAPER_DOC))
        assert [n.position for n in nodes] == [5]

    def test_buffers_whole_stream(self):
        evaluator = NaiveStreamEvaluator(parse("a"))
        evaluator.evaluate(parse_string(PAPER_DOC))
        assert evaluator.buffered_events == 12

    def test_buffer_count_tracks_last_run(self):
        evaluator = NaiveStreamEvaluator(parse("a"))
        evaluator.evaluate(parse_string("<a/>"))
        assert evaluator.buffered_events == 4
