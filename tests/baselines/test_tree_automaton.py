"""Unit tests for the tree-automaton (Fxgrep analog) evaluator."""

from repro.baselines.tree_automaton import TreeAutomatonEvaluator
from repro.rpeq.parser import parse
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import build_document

from ..conftest import PAPER_DOC


def positions(query, doc=PAPER_DOC):
    document = build_document(parse_string(doc))
    evaluator = TreeAutomatonEvaluator(parse(query))
    return [n.position for n in evaluator.evaluate_document(document)]


class TestBasics:
    def test_child_chain(self):
        assert positions("a.c") == [5]

    def test_closure(self):
        assert positions("a+.c+") == [3, 5]

    def test_descendants(self):
        assert positions("_*._") == [1, 2, 3, 4, 5]

    def test_root_matched_by_epsilon_component(self):
        assert positions("_*") == [0, 1, 2, 3, 4, 5]

    def test_union(self):
        assert positions("(a|b)") == [1]


class TestQualifiers:
    def test_paper_running_example(self):
        assert positions("_*.a[b].c") == [5]

    def test_guard_does_not_block_closure_chains(self):
        """Regression: b*[d] must let chains pass through unqualified b's."""
        doc = "<b><b><d/></b></b>"
        # Outer b has no direct d child... wait: outer has b child; inner
        # has d child.  b*[d] selects b-chain nodes with a d child.
        assert positions("b+[d]", doc) == [2]

    def test_intermediate_nodes_need_not_satisfy_guard(self):
        # Chain through a node failing the qualifier must still extend.
        doc = "<b><b><b><d/></b></b></b>"
        assert positions("b+[d]", doc) == [3]

    def test_nested_qualifiers(self):
        assert positions("_*.a[a[c]]") == [1]


class TestPruning:
    def test_empty_state_sets_prune_subtrees(self):
        # Matching is still correct when whole subtrees are skipped.
        doc = "<r><x><y><z/></y></x><a><c/></a></r>"
        assert positions("r.a.c", doc) == [6]

    def test_events_interface(self):
        nodes = TreeAutomatonEvaluator(parse("a.c")).evaluate(parse_string(PAPER_DOC))
        assert [n.position for n in nodes] == [5]
