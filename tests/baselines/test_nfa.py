"""Unit tests for the NFA construction shared by automaton baselines."""

import pytest

from repro.baselines.nfa import compile_nfa
from repro.errors import UnsupportedFeatureError
from repro.rpeq.parser import parse


class TestConstruction:
    def test_label(self):
        nfa = compile_nfa(parse("a"))
        assert nfa.size == 2
        (edges,) = nfa.transitions.values()
        assert edges[0][0].name == "a"

    def test_plus_has_self_loop(self):
        nfa = compile_nfa(parse("a+"))
        loops = [
            (src, tgt)
            for src, edges in nfa.transitions.items()
            for _, tgt in edges
            if src == tgt
        ]
        assert loops

    def test_star_isolated_from_context(self):
        """The ?/* bypass must not expose the + self-loop (Thompson trap).

        Regression test: '(b._.a*)?' must not accept the single-step
        path 'a'.
        """
        from repro.baselines.xscan import XScanEvaluator
        from repro.xmlstream.parser import parse_string

        matcher = XScanEvaluator(parse("(b._.a*)?"))
        assert matcher.evaluate(parse_string("<a/>")) == [0]  # root only

    def test_qualifier_guard_on_edge(self):
        nfa = compile_nfa(parse("a[b]"))
        assert len(nfa.guarded_epsilon) == 1

    def test_qualifiers_rejected_when_disallowed(self):
        with pytest.raises(UnsupportedFeatureError):
            compile_nfa(parse("a[b]"), allow_qualifiers=False)

    def test_size_grows_linearly(self):
        sizes = [compile_nfa(parse(".".join(["a"] * n))).size for n in (2, 4, 8)]
        assert sizes[2] - sizes[1] == 2 * (sizes[1] - sizes[0])
