"""Unit tests for the DOM oracle — the declarative rpeq semantics."""

import pytest

from repro.baselines.dom_eval import DomEvaluator
from repro.rpeq.parser import parse
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import build_document

from ..conftest import PAPER_DOC


def positions(query, doc=PAPER_DOC):
    document = build_document(parse_string(doc))
    return [n.position for n in DomEvaluator(parse(query)).evaluate_document(document)]


class TestSteps:
    def test_child_step(self):
        assert positions("a") == [1]

    def test_child_chain(self):
        assert positions("a.c") == [5]

    def test_wildcard(self):
        assert positions("_") == [1]

    def test_no_match(self):
        assert positions("x") == []


class TestClosures:
    def test_plus_requires_one_step(self):
        assert positions("a+") == [1, 2]

    def test_plus_chain_semantics(self):
        # a+ follows chains of a-labelled steps only.
        assert positions("a+", "<a><b><a/></b></a>") == [1]

    def test_wildcard_plus_is_descendants(self):
        assert positions("_+") == [1, 2, 3, 4, 5]

    def test_star_includes_context(self):
        assert positions("_*") == [0, 1, 2, 3, 4, 5]

    def test_star_then_step(self):
        assert positions("_*.c") == [3, 5]


class TestCombinators:
    def test_union(self):
        assert positions("(b|c)", "<r><b/><c/><d/></r>") == []
        assert positions("r.(b|c)", "<r><b/><c/><d/></r>") == [2, 3]

    def test_union_deduplicates(self):
        assert positions("(a|_)") == [1]

    def test_optional(self):
        assert positions("a?.c") == [5]

    def test_optional_includes_context_path(self):
        # a?.a matches both 'a' (epsilon branch) and 'a.a'.
        assert positions("a?.a") == [1, 2]


class TestQualifiers:
    def test_paper_running_example(self):
        assert positions("_*.a[b].c") == [5]

    def test_qualifier_filters(self):
        assert positions("_*.a[b]") == [1]

    def test_qualifier_with_path_condition(self):
        assert positions("_*.a[a.c]") == [1]

    def test_nested_qualifier(self):
        assert positions("_*.a[a[c]]") == [1]

    def test_stacked_qualifiers(self):
        assert positions("_*.a[b][c]") == [1]

    def test_qualifier_never_satisfied(self):
        assert positions("_*.a[x]") == []

    def test_epsilon_condition_always_true(self):
        assert positions("a[_*]") == [1]


class TestInterfaces:
    def test_evaluate_from_events(self):
        nodes = DomEvaluator(parse("a.c")).evaluate(parse_string(PAPER_DOC))
        assert [n.position for n in nodes] == [5]

    def test_results_sorted_and_unique(self):
        nodes = DomEvaluator(parse("(_+|_*._)")).evaluate(parse_string(PAPER_DOC))
        order = [n.position for n in nodes]
        assert order == sorted(set(order))
