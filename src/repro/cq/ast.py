"""Data model for conjunctive queries over rpeq (paper, Definition 4).

A conjunctive query has the form::

    q(X) :- Y1 r1 Z1, ..., Yn rn Zn        (n >= 1)

where the ``ri`` are regular path expressions, the ``Yi``/``Zi`` are
query variables (``Root`` is pre-bound to the document root), and
``X ⊆ vars`` are the head variables whose bindings the query returns.

The fragment supported here is the one the paper's translation ``T``
(Fig. 16) covers: *tree-shaped* queries — every variable is defined by at
most one atom and every atom's source is ``Root`` or an already-defined
variable.  Node-identity joins (a variable reachable via two distinct
paths) are the paper's explicit future work and raise
:class:`~repro.errors.UnsupportedFeatureError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnsupportedFeatureError
from ..rpeq.ast import Rpeq

#: The pre-bound variable naming the document root.
ROOT = "Root"


@dataclass(frozen=True, slots=True)
class Atom:
    """One body atom ``Y (r) Z``: ``Z`` ranges over ``r``-paths from ``Y``."""

    source: str
    path: Rpeq
    target: str


@dataclass(frozen=True, slots=True)
class ConjunctiveQuery:
    """A parsed conjunctive query.

    Attributes:
        name: predicate name (``q`` in the paper's examples).
        head: head variables, in declaration order.
        body: atoms, in declaration order.
    """

    name: str
    head: tuple[str, ...]
    body: tuple[Atom, ...]

    def variables(self) -> set[str]:
        """All variables occurring in the query (including ``Root``)."""
        names = {ROOT}
        for atom in self.body:
            names.add(atom.source)
            names.add(atom.target)
        return names

    def join_variables(self) -> set[str]:
        """Variables defined by more than one atom (node-identity joins)."""
        seen: set[str] = set()
        joins: set[str] = set()
        for atom in self.body:
            if atom.target in seen:
                joins.add(atom.target)
            seen.add(atom.target)
        return joins

    def validate(self) -> None:
        """Check the shape restrictions of the supported fragment.

        Tree-shaped queries are fully supported.  Node-identity joins —
        the paper's declared future work — are supported in the one form
        the streaming intersection can realize: a variable defined by
        several atoms must be the query's *sole* head variable and must
        have no outgoing atoms (each defining path is evaluated
        independently; bindings are intersected by node identity).

        Raises:
            UnsupportedFeatureError: outside the supported shapes.
        """
        joins = self.join_variables()
        for join in joins:
            if self.head != (join,):
                raise UnsupportedFeatureError(
                    f"join variable {join!r} must be the sole head "
                    f"variable (general node-identity joins are the "
                    f"paper's future work)"
                )
            if any(atom.source == join for atom in self.body):
                raise UnsupportedFeatureError(
                    f"join variable {join!r} must not have outgoing atoms"
                )
        defined = {ROOT}
        for atom in self.body:
            if atom.source not in defined:
                raise UnsupportedFeatureError(
                    f"atom source {atom.source!r} is not defined by an "
                    f"earlier atom (forward references are unsupported)"
                )
            defined.add(atom.target)
        for variable in self.head:
            if variable not in defined:
                raise UnsupportedFeatureError(
                    f"head variable {variable!r} is never defined"
                )

    def reaches_head(self, variable: str) -> bool:
        """The paper's ``reach(Z, X)``: does ``variable`` lie on a path
        leading to a head variable?"""
        if variable in self.head:
            return True
        return any(
            self.reaches_head(atom.target)
            for atom in self.body
            if atom.source == variable
        )
