"""Parser for the conjunctive-query concrete syntax.

Follows the paper's notation::

    q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3

Grammar::

    cq      ::=  NAME '(' vars ')' ':-' atom (',' atom)*
    atom    ::=  NAME '(' rpeq ')' NAME
    vars    ::=  NAME (',' NAME)*

Variable names are ordinary identifiers; ``Root`` is reserved for the
document root.  The rpeq inside an atom is parsed by the rpeq parser, so
parenthesis nesting is handled by bracket counting.
"""

from __future__ import annotations

import re

from ..errors import QuerySyntaxError
from ..rpeq.parser import parse as parse_rpeq
from .ast import Atom, ConjunctiveQuery

_NAME = re.compile(r"\s*([A-Za-z_][\w]*)")


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def name(self) -> str:
        match = _NAME.match(self.text, self.pos)
        if not match:
            raise QuerySyntaxError("expected an identifier", position=self.pos)
        self.pos = match.end()
        return match.group(1)

    def expect(self, token: str) -> None:
        self.skip_space()
        if not self.text.startswith(token, self.pos):
            raise QuerySyntaxError(f"expected {token!r}", position=self.pos)
        self.pos += len(token)

    def peek(self, token: str) -> bool:
        self.skip_space()
        return self.text.startswith(token, self.pos)

    def skip_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def balanced_parens(self) -> str:
        """Consume '(' ... ')' with nesting; return the inner text."""
        self.expect("(")
        depth = 1
        start = self.pos
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    inner = self.text[start : self.pos]
                    self.pos += 1
                    return inner
            self.pos += 1
        raise QuerySyntaxError("unbalanced parentheses", position=start)

    def at_end(self) -> bool:
        self.skip_space()
        return self.pos == len(self.text)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query and validate its tree shape.

    Raises:
        QuerySyntaxError: on malformed syntax.
        UnsupportedFeatureError: for joins / forward references (from
            :meth:`~repro.cq.ast.ConjunctiveQuery.validate`).
    """
    scanner = _Scanner(text)
    name = scanner.name()
    scanner.expect("(")
    head = [scanner.name()]
    while scanner.peek(","):
        scanner.expect(",")
        head.append(scanner.name())
    scanner.expect(")")
    scanner.expect(":-")
    atoms: list[Atom] = []
    while True:
        source = scanner.name()
        path_text = scanner.balanced_parens()
        target = scanner.name()
        atoms.append(Atom(source, parse_rpeq(path_text), target))
        if scanner.peek(","):
            scanner.expect(",")
            continue
        break
    if not scanner.at_end():
        raise QuerySyntaxError(
            f"trailing characters: {scanner.text[scanner.pos:]!r}",
            position=scanner.pos,
        )
    query = ConjunctiveQuery(name, tuple(head), tuple(atoms))
    query.validate()
    return query
