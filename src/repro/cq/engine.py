"""Translation and evaluation of conjunctive queries — Sec. VII, Fig. 16.

The paper's function ``T`` maps a conjunctive query to a SPEX network
with one output transducer per head variable; a body atom whose target
does not lead to a head variable becomes a *qualifier* on its source.

Three details are reconstructed where the paper is terse (it notes "some
issues are left out"):

* a chain of non-head atoms folds into a nested rpeq qualifier
  (``X1(b) X2, X2(c) X3`` with ``X2``/``X3`` non-head becomes the
  condition ``b[c]`` on ``X1``);
* head variables get **projection semantics**: a binding of head variable
  ``Y`` is an answer iff the *entire* body is satisfiable with ``Y``
  fixed, so every sibling subtree of an atom is applied as an existence
  qualifier on the other branches, and a head variable's own sink sits
  behind qualifiers for all of its subtrees;
* atoms are grouped by source variable (conjunction is commutative), so
  textual order never changes the result.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.compiler import _Compiler
from ..core.network import Network
from ..core.output_tx import Match, OutputTransducer
from ..core.path_transducers import InputTransducer
from ..conditions.store import ConditionStore, VariableAllocator
from ..errors import CompilationError
from ..rpeq.ast import Empty, Qualifier, Rpeq
from ..xmlstream.events import Event
from ..xmlstream.parser import iter_events
from .ast import ROOT, Atom, ConjunctiveQuery
from .parser import parse_cq


def _condition_expression(query: ConjunctiveQuery, atom: Atom) -> Rpeq:
    """Fold a non-head atom and its dependent subtree into one rpeq.

    The subtree below ``atom.target`` (necessarily all non-head, since
    reachability is transitive) becomes nested qualifiers on the path.
    """
    expr = atom.path
    for child in query.body:
        if child.source == atom.target:
            expr = Qualifier(expr, _condition_expression(query, child))
    return expr


def compile_cq(
    query: ConjunctiveQuery, collect_events: bool = True
) -> tuple[Network, ConditionStore, dict[str, list[OutputTransducer]]]:
    """Build the multi-sink SPEX network for a conjunctive query.

    Returns:
        The finalized network, its condition store, and the mapping from
        head variable to its output transducers — one per defining atom,
        so a node-identity join variable gets one sink per path and the
        engine intersects their outputs.
    """
    query.validate()
    store = ConditionStore()
    allocator = VariableAllocator()
    source = InputTransducer()
    network = Network(source, sink=None)
    compiler = _Compiler(network, allocator, store)
    sinks: dict[str, list[OutputTransducer]] = {}

    children: dict[str, list[Atom]] = {}
    for atom in query.body:
        children.setdefault(atom.source, []).append(atom)

    def qualify(tape, condition: Rpeq):
        new_tape, _owned = compiler.compile(Qualifier(Empty(), condition), tape)
        return new_tape

    def extend(variable: str, tape) -> None:
        atoms = children.get(variable, ())
        conditions = [_condition_expression(query, atom) for atom in atoms]
        if variable in query.head:
            # Projection semantics: this variable's bindings require the
            # whole remaining body, i.e. every subtree hanging off it.
            sink_tape = tape
            for condition in conditions:
                sink_tape = qualify(sink_tape, condition)
            attached = sinks.setdefault(variable, [])
            sink = OutputTransducer(store, collect_events=collect_events)
            sink.name = f"OU({variable}#{len(attached) + 1})"
            network.add(sink, sink_tape)
            attached.append(sink)
        for index, atom in enumerate(atoms):
            if not query.reaches_head(atom.target):
                # Pure condition subtree: consumed as a qualifier by the
                # sibling branches and the sink above; no continuation.
                continue
            branch_tape = tape
            for other, condition in enumerate(conditions):
                if other != index:
                    branch_tape = qualify(branch_tape, condition)
            out_tape, _owned = compiler.compile(atom.path, branch_tape)
            extend(atom.target, out_tape)

    extend(ROOT, source)
    missing = [variable for variable in query.head if variable not in sinks]
    if missing:
        raise CompilationError(f"head variables never bound: {missing}")
    network.condition_store = store
    network.finalize()
    return network, store, sinks


class CqEngine:
    """Streamed, progressive evaluation of conjunctive queries."""

    def __init__(self, query: str | ConjunctiveQuery, collect_events: bool = True) -> None:
        self.query: ConjunctiveQuery = (
            parse_cq(query) if isinstance(query, str) else query
        )
        self.query.validate()
        self.collect_events = collect_events

    def run(self, source: str | Iterable[Event]) -> Iterator[tuple[str, Match]]:
        """Yield ``(head_variable, match)`` pairs progressively.

        A node-identity join variable has one sink per defining path; a
        binding is an answer once *every* path has delivered the same
        node (intersection by document position), and is yielded the
        moment the last path confirms it.
        """
        network, _store, sinks = compile_cq(
            self.query, collect_events=self.collect_events
        )
        # position -> number of sinks that have delivered it (join vars)
        join_counts: dict[str, dict[int, tuple[int, Match]]] = {
            variable: {} for variable, attached in sinks.items() if len(attached) > 1
        }
        for event in iter_events(source):
            network.process_event(event)
            for variable, attached in sinks.items():
                if len(attached) == 1:
                    sink = attached[0]
                    while sink.results:
                        yield variable, sink.results.popleft()
                    continue
                pending = join_counts[variable]
                for sink in attached:
                    while sink.results:
                        match = sink.results.popleft()
                        count, kept = pending.get(match.position, (0, match))
                        count += 1
                        if count == len(attached):
                            pending.pop(match.position, None)
                            yield variable, kept
                        else:
                            pending[match.position] = (count, kept)

    def evaluate(self, source: str | Iterable[Event]) -> dict[str, list[Match]]:
        """All bindings per head variable, eagerly."""
        results: dict[str, list[Match]] = {variable: [] for variable in self.query.head}
        for variable, match in self.run(source):
            results[variable].append(match)
        return results
