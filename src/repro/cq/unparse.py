"""Rendering conjunctive queries back to the paper's notation.

``parse_cq(unparse_cq(q)) == q`` holds for every parseable query, which
makes CQs round-trippable for logging, caching and test shrinking.
"""

from __future__ import annotations

from ..rpeq.unparse import unparse as unparse_rpeq
from .ast import ConjunctiveQuery


def unparse_cq(query: ConjunctiveQuery) -> str:
    """Concrete syntax for a conjunctive query.

    Raises:
        ReproError: if an atom's path contains a bare epsilon (which has
            no concrete rpeq spelling) — parser-produced queries never do.
    """
    head = ", ".join(query.head)
    body = ", ".join(
        f"{atom.source}({unparse_rpeq(atom.path)}) {atom.target}"
        for atom in query.body
    )
    return f"{query.name}({head}) :- {body}"
