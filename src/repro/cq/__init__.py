"""Conjunctive queries with regular path expressions (paper, Sec. VII)."""

from .ast import ROOT, Atom, ConjunctiveQuery
from .engine import CqEngine, compile_cq
from .parser import parse_cq
from .unparse import unparse_cq

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "CqEngine",
    "ROOT",
    "compile_cq",
    "parse_cq",
    "unparse_cq",
]
