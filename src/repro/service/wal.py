"""Write-ahead match log: the durability half of the streaming service.

The paper's d·σ bound is what makes a *match* log the right durability
unit: the engine's in-flight state is small enough to checkpoint
cheaply (:mod:`repro.core.checkpoint`), but a checkpoint alone cannot
give a reconnecting subscriber the matches it was owed between the last
cut and a crash.  The WAL closes that gap.  It records, append-only:

* every match delivered (or owed) to a **durable session**, stamped
  with its per-subscription monotone sequence number;
* a **document-boundary marker** after each fully ingested document —
  the commit points of the log.  Matches are *committed* once a marker
  for their document is durable; matches after the last marker belong
  to a document the engine never finished and are dropped on recovery
  (the producer replays that document and the engine regenerates them,
  deterministically, with the *same* sequence numbers);
* **session records** (open / subscribe / unsubscribe / ack) so the
  subscription set and each client's delivery floor survive the
  process.

Format: newline-delimited JSON, one record per line, each carrying a
CRC-32 over its canonical encoding.  Recovery tolerates a torn tail —
the file is scanned to the last fully valid record and truncated there,
exactly the rule a crash mid-``write`` requires.  ``fsync`` is batched
by document (``fsync_every_documents``), except session records, which
are rare and synced eagerly so a freshly opened session survives an
immediate crash.

The log stays small by construction: only durable sessions' matches are
logged (their count is bounded by the per-tenant d·σ admission budget
of the serving layer), acknowledged matches are pruned from the replay
index, and :meth:`WriteAheadLog.compact` rewrites the file from the
retained state once it crosses a size threshold.

Commit-ordering invariant (enforced by the server, relied on here):
the WAL's document marker is fsynced **before** the engine checkpoint
covering that document is saved.  A checkpoint may therefore lag the
log (recovery replays the difference) but never lead it — the
configuration under which a crash could lose matches silently.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Any

from ..errors import ReproError


class WalError(ReproError):
    """The write-ahead log is unusable (I/O failure, malformed base)."""


def _canonical(record: dict[str, Any]) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _crc(record: dict[str, Any]) -> int:
    return zlib.crc32(_canonical(record)) & 0xFFFFFFFF


def _encode(record: dict[str, Any]) -> bytes:
    return _canonical({**record, "c": _crc(record)}) + b"\n"


def _decode(line: bytes) -> dict[str, Any] | None:
    """One line → record dict, or ``None`` if torn/corrupt."""
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    stored = record.pop("c", None)
    if stored != _crc(record):
        return None
    return record


@dataclass
class SessionRecovery:
    """One durable session as reconstructed from the log.

    Attributes:
        token: the wire session token.
        tenant: the tenant the session opened under (budget accounting).
        subscriptions: ``query_id -> {"engine_id", "query", "attach_doc"}``
            — the session's live queries, with the document count at
            which each one joined the pass (``attach_doc``; the query is
            active from document ``attach_doc + 1`` on).
        acked: ``query_id -> seq`` — the client's observed floor;
            matches at or below it are never re-delivered.
        opened_doc: document count when the session opened.
        last_doc: document count of the session's last logged activity.
    """

    token: str
    tenant: str = "default"
    subscriptions: dict[str, dict[str, Any]] = field(default_factory=dict)
    acked: dict[str, int] = field(default_factory=dict)
    opened_doc: int = 0
    last_doc: int = 0


@dataclass
class WalRecovery:
    """Everything :meth:`WriteAheadLog.open` reconstructed from disk.

    Attributes:
        committed_documents: count of fully committed documents — the
            resume position of the *stream* (the engine checkpoint may
            trail it; the producer replays the difference).
        committed_events: events read at the last document marker.
        seqs: per-engine-id sequence counters as of the committed cut
            (the next match of engine id ``q`` gets ``seqs[q] + 1``).
        sessions: durable sessions by token.
        matches: per-engine-id replay tail — committed, not-yet-acked
            matches as ``(seq, document_index, match_obj)`` triples.
        truncated_bytes: torn-tail bytes dropped during recovery.
        records: valid records scanned.
    """

    committed_documents: int = 0
    committed_events: int = 0
    seqs: dict[str, int] = field(default_factory=dict)
    sessions: dict[str, SessionRecovery] = field(default_factory=dict)
    matches: dict[str, list[tuple[int, int, dict[str, Any]]]] = field(
        default_factory=dict
    )
    truncated_bytes: int = 0
    records: int = 0


def _apply_session(
    sessions: dict[str, SessionRecovery], record: dict[str, Any]
) -> None:
    """Fold one ``sess`` record into the recovery state (idempotent)."""
    op = record.get("op")
    token = str(record.get("sid", ""))
    doc = int(record.get("doc", 0))
    if not token:
        return
    if op == "open":
        session = sessions.get(token)
        if session is None:
            sessions[token] = SessionRecovery(
                token=token,
                tenant=str(record.get("tenant", "default")),
                opened_doc=doc,
                last_doc=doc,
            )
        return
    session = sessions.get(token)
    if session is None:
        return  # subscribe/ack for a session whose open was compacted away
    session.last_doc = max(session.last_doc, doc)
    if op == "sub":
        qid = str(record.get("qid", ""))
        session.subscriptions[qid] = {
            "engine_id": str(record.get("eid", "")),
            "query": str(record.get("query", "")),
            "attach_doc": int(record.get("attach_doc", doc)),
        }
    elif op == "unsub":
        session.subscriptions.pop(str(record.get("qid", "")), None)
    elif op == "ack":
        qid = str(record.get("qid", ""))
        seq = int(record.get("seq", 0))
        session.acked[qid] = max(session.acked.get(qid, 0), seq)
    elif op == "expire":
        sessions.pop(token, None)


class WriteAheadLog:
    """Append-only match log with document-boundary commit markers.

    Use :meth:`open` (it recovers an existing file's tail); the
    constructor alone never touches disk.
    """

    def __init__(self, path: str, fsync_every_documents: int = 1) -> None:
        if fsync_every_documents < 1:
            raise ValueError("fsync_every_documents must be at least 1")
        self.path = path
        self.fsync_every_documents = fsync_every_documents
        #: committed document count (last durable-or-pending ``d`` marker).
        self.documents = 0
        #: document count covered by the last fsync.
        self.durable_documents = 0
        #: per-engine-id sequence counters (last assigned seq).
        self.seqs: dict[str, int] = {}
        #: per-engine-id replay tail: (seq, document, match_obj), ordered.
        self.matches: dict[str, list[tuple[int, int, dict[str, Any]]]] = {}
        self.size_bytes = 0
        self.appended_records = 0
        self.compactions = 0
        self._handle: Any = None

    # ------------------------------------------------------------------
    # open / recover

    @classmethod
    def open(
        cls, path: str, fsync_every_documents: int = 1
    ) -> tuple["WriteAheadLog", WalRecovery]:
        """Open (creating if absent) and recover the log at ``path``.

        Scans the file to the last fully valid record, truncates any
        torn tail, and returns the log (positioned for appends) together
        with the :class:`WalRecovery` describing the committed state.
        """
        wal = cls(path, fsync_every_documents)
        recovery = WalRecovery()
        raw = b""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise WalError(f"cannot read WAL {path!r}: {exc}") from exc
        valid_bytes, records = cls._scan(raw)
        recovery.truncated_bytes = len(raw) - valid_bytes
        recovery.records = len(records)
        matches: dict[str, list[tuple[int, int, dict[str, Any]]]] = {}
        for record in records:
            kind = record.get("t")
            if kind == "base":
                recovery.committed_documents = int(record.get("doc", 0))
                recovery.committed_events = int(record.get("ev", 0))
                seqs = record.get("seqs")
                if isinstance(seqs, dict):
                    recovery.seqs = {
                        str(eid): int(seq) for eid, seq in seqs.items()
                    }
            elif kind == "m":
                eid = str(record.get("q", ""))
                matches.setdefault(eid, []).append(
                    (
                        int(record.get("s", 0)),
                        int(record.get("d", 0)),
                        dict(record.get("m", {})),
                    )
                )
            elif kind == "d":
                recovery.committed_documents = max(
                    recovery.committed_documents, int(record.get("n", 0))
                )
                recovery.committed_events = int(record.get("ev", 0))
            elif kind == "sess":
                _apply_session(recovery.sessions, record)
        committed = recovery.committed_documents
        # Commit rule: a match is durable iff its document's marker is.
        # Matches of the in-flight document are dropped here — the
        # producer replays that document and the engine regenerates them
        # with identical sequence numbers.
        for eid, triples in matches.items():
            kept = [t for t in triples if t[1] < committed]
            for seq, _doc, _obj in kept:
                recovery.seqs[eid] = max(recovery.seqs.get(eid, 0), seq)
            if kept:
                recovery.matches[eid] = kept
        # Prune the replay tail below each owning session's ack floor;
        # engine ids no durable session subscribes to have no possible
        # replayer and are dropped outright.
        owners: dict[str, int] = {}
        for session in recovery.sessions.values():
            for qid, sub in session.subscriptions.items():
                owners[str(sub["engine_id"])] = session.acked.get(qid, 0)
        recovery.matches = {
            eid: [t for t in triples if t[0] > owners[eid]]
            for eid, triples in recovery.matches.items()
            if eid in owners
        }
        recovery.matches = {
            eid: triples for eid, triples in recovery.matches.items() if triples
        }
        # Truncate the torn tail before reopening for append.
        if recovery.truncated_bytes:
            with open(path, "rb+") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        wal._handle = open(path, "ab")
        wal.size_bytes = valid_bytes
        wal.documents = recovery.committed_documents
        wal.durable_documents = recovery.committed_documents
        wal.seqs = dict(recovery.seqs)
        wal.matches = {eid: list(t) for eid, t in recovery.matches.items()}
        return wal, recovery

    @staticmethod
    def _scan(raw: bytes) -> tuple[int, list[dict[str, Any]]]:
        """Valid prefix length and its records (stops at the first tear)."""
        records: list[dict[str, Any]] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # unterminated final line: torn write
            record = _decode(raw[offset:newline])
            if record is None:
                break  # corrupt record: everything after it is suspect
            records.append(record)
            offset = newline + 1
        return offset, records

    # ------------------------------------------------------------------
    # append side

    def append_match(
        self, engine_id: str, seq: int, document: int, match_obj: dict[str, Any]
    ) -> None:
        """Log one durable match (not yet committed — see marker)."""
        self._append({"t": "m", "q": engine_id, "s": seq, "d": document, "m": match_obj})
        self.seqs[engine_id] = max(self.seqs.get(engine_id, 0), seq)
        self.matches.setdefault(engine_id, []).append((seq, document, match_obj))

    def append_document(self, count: int, events_read: int) -> bool:
        """Log the commit marker for document ``count`` (1-based count).

        Returns ``True`` when this marker was fsynced (the batching
        cadence fired), ``False`` when it merely reached the OS buffer.
        """
        self._append({"t": "d", "n": count, "ev": events_read})
        self.documents = count
        if count - self.durable_documents >= self.fsync_every_documents:
            self.sync()
            return True
        return False

    def append_session(self, record: dict[str, Any], durable: bool = True) -> None:
        """Log one session record (``op``/``sid``/... fields; see module doc).

        Session records default to an eager fsync: they are rare, and a
        session that vanishes because its ``open`` never hit the platter
        would violate the resume contract the token represents.
        """
        self._append({"t": "sess", **record})
        if durable:
            self.sync()

    def acknowledge(self, engine_id: str, seq: int) -> None:
        """Drop replay-tail matches at or below the client's floor."""
        triples = self.matches.get(engine_id)
        if not triples:
            return
        kept = [t for t in triples if t[0] > seq]
        if kept:
            self.matches[engine_id] = kept
        else:
            self.matches.pop(engine_id, None)

    def release(self, engine_id: str) -> None:
        """Forget an engine id's replay tail (unsubscribed / expired)."""
        self.matches.pop(engine_id, None)

    def replay_tail(
        self, engine_id: str, after_seq: int
    ) -> list[tuple[int, int, dict[str, Any]]]:
        """The retained matches of ``engine_id`` with seq > ``after_seq``."""
        return [t for t in self.matches.get(engine_id, ()) if t[0] > after_seq]

    def sync(self) -> None:
        """Flush and fsync everything appended so far."""
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.durable_documents = self.documents

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.sync()
            finally:
                self._handle.close()
                self._handle = None

    def _append(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        data = _encode(record)
        self._handle.write(data)
        self.size_bytes += len(data)
        self.appended_records += 1

    # ------------------------------------------------------------------
    # compaction

    def compact(
        self,
        sessions: dict[str, SessionRecovery],
        committed_events: int,
    ) -> None:
        """Atomically rewrite the log from the retained in-memory state.

        The new file holds: a ``base`` record pinning the committed
        document count and every sequence counter; the current session
        set (re-emitted as ``open``/``sub``/``ack`` records); the
        unacked replay tails; and a final document marker.  Everything
        acked, unsubscribed or superseded is gone.  The rewrite is
        atomic (temp file + fsync + ``os.replace``), so a crash during
        compaction leaves the previous log intact.
        """
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        committed = self.documents
        directory = os.path.dirname(self.path) or "."
        descriptor, temp_path = tempfile.mkstemp(
            prefix=f".wal-{os.getpid()}-", suffix=".tmp", dir=directory
        )
        size = 0
        try:
            with os.fdopen(descriptor, "wb") as handle:
                def emit(record: dict[str, Any]) -> None:
                    nonlocal size
                    data = _encode(record)
                    handle.write(data)
                    size += len(data)

                emit(
                    {
                        "t": "base",
                        "doc": committed,
                        "ev": committed_events,
                        "seqs": dict(sorted(self.seqs.items())),
                    }
                )
                for token in sorted(sessions):
                    session = sessions[token]
                    emit(
                        {
                            "t": "sess",
                            "op": "open",
                            "sid": token,
                            "tenant": session.tenant,
                            "doc": session.opened_doc,
                        }
                    )
                    for qid in sorted(session.subscriptions):
                        sub = session.subscriptions[qid]
                        emit(
                            {
                                "t": "sess",
                                "op": "sub",
                                "sid": token,
                                "qid": qid,
                                "eid": sub["engine_id"],
                                "query": sub["query"],
                                "attach_doc": sub["attach_doc"],
                                "doc": session.last_doc,
                            }
                        )
                    for qid in sorted(session.acked):
                        emit(
                            {
                                "t": "sess",
                                "op": "ack",
                                "sid": token,
                                "qid": qid,
                                "seq": session.acked[qid],
                                "doc": session.last_doc,
                            }
                        )
                for eid in sorted(self.matches):
                    for seq, doc, obj in self.matches[eid]:
                        emit({"t": "m", "q": eid, "s": seq, "d": doc, "m": obj})
                emit({"t": "d", "n": committed, "ev": committed_events})
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            self._handle = None
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            if self._handle is None:
                self._handle = open(self.path, "ab")
            raise
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            dir_fd = -1
        if dir_fd >= 0:
            try:
                os.fsync(dir_fd)
            except OSError:
                pass
            finally:
                os.close(dir_fd)
        self._handle = open(self.path, "ab")
        self.size_bytes = size
        self.durable_documents = committed
        self.compactions += 1
