"""Asyncio streaming service: producers push streams, subscribers match.

:class:`SpexService` binds the wire protocol of
:mod:`repro.service.protocol` to TCP and drives one
:class:`~repro.core.multiquery.ServePump` — the same push-mode state
machine :meth:`MultiQueryEngine.serve
<repro.core.multiquery.MultiQueryEngine.serve>` runs on — so a network
subscriber's match stream is bit-identical to an offline pass by
construction.

Robustness properties, each enforced structurally rather than by luck:

* **Per-connection fault domains.**  Every connection runs in its own
  task; a client that sends garbage, crawls, or vanishes affects only
  its own state.  Producer input is *document-atomic*: events are
  buffered and well-formedness-checked per document before the engine
  sees them, so a producer dying mid-document can never poison the
  strict engine pump (the partial document is dropped, counted, and the
  stream position never moves).
* **End-to-end backpressure.**  Matches flow through a bounded
  per-subscriber output queue; under the default ``block`` overflow
  policy a full queue suspends the engine task, which stops draining
  the bounded input document queue, which suspends producer read loops,
  which stops reading their sockets — the TCP receive window closes and
  the pressure reaches the true source.  ``shed_oldest`` trades loss
  (marked ``degraded``, surfaced as ``SHED001`` notices) for liveness;
  ``disconnect`` cuts the slow subscriber (``SVC006``).
* **Admission at the wire.**  ``subscribe`` runs the d·σ cost
  certifier's admission classification (``ADMIT000``–``ADMIT004``) and
  a per-tenant subscription budget (``SVC009``); rejected queries never
  touch the stream.
* **Clocked timeouts.**  Handshake, idle and write deadlines are
  *decided* against the injectable :class:`~repro.core.clock.Clock`
  (the housekeeping task merely ticks on real time), so fault-injection
  tests drive them with a :class:`~repro.core.clock.FakeClock` and zero
  real waiting.
* **Graceful drain.**  ``SIGTERM`` (via :meth:`SpexService.request_drain`)
  stops accepting connections, lets producers finish in-flight
  documents within a grace window, pumps the remaining input, takes a
  document-boundary checkpoint (resumable via
  :mod:`repro.core.checkpoint`), flushes every subscriber queue, and
  says ``bye`` (``SVC007``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..core.checkpoint import Checkpoint
from ..core.clock import Clock, as_clock
from ..core.multiquery import MultiQueryEngine, ServePump
from ..core.output_tx import Match
from ..core.serving import AdmissionPolicy, ServingPolicy
from ..errors import ReproError, StreamError
from ..limits import ResourceLimits
from ..xmlstream.events import EndDocument, Event, StartDocument
from ..xmlstream.offsets import StreamCursor
from ..xmlstream.validate import checked
from .protocol import (
    MAX_FRAME_BYTES,
    OVERFLOW_BLOCK,
    OVERFLOW_POLICIES,
    OVERFLOW_SHED_OLDEST,
    ROLE_PRODUCER,
    ROLE_SUBSCRIBER,
    ROLES,
    SVC_BAD_DOCUMENT,
    SVC_DRAINING,
    SVC_HANDSHAKE_TIMEOUT,
    SVC_IDLE_TIMEOUT,
    SVC_OVERFLOW,
    SVC_PROTOCOL,
    SVC_TENANT_BUDGET,
    SVC_WRITE_TIMEOUT,
    ProtocolError,
    bye_frame,
    decode_frame,
    encode_frame,
    error_frame,
    events_from_frame,
    heartbeat_frame,
    match_frame,
    notice_frame,
    pong_frame,
    rejected_frame,
    subscribed_frame,
    welcome_frame,
)

#: Sentinels for the engine input queue and subscriber output queues.
_DRAIN = object()
_CLOSE = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`SpexService` enforces.

    Attributes:
        host / port: bind address (port 0 picks an ephemeral port;
            read the actual one from :attr:`SpexService.address`).
        serving: the :class:`~repro.core.serving.ServingPolicy` the
            shared pass runs under (bulkheads, breakers, deadlines,
            shedding — all of it applies to wire subscribers too).
        admission: d·σ admission policy applied to every ``subscribe``
            (``None`` admits everything as ``ADMIT000``).
        limits: per-query :class:`~repro.limits.ResourceLimits`.
        clock: injectable time source for every timeout decision.
        handshake_timeout: seconds a connection may sit without a
            ``hello`` (``SVC003``).
        idle_timeout: seconds a producer (or a subscriber with no
            subscriptions) may sit silent (``SVC004``); ``None``
            disables.
        write_timeout: seconds one subscriber write may stay blocked
            before the connection is cut as a slow consumer
            (``SVC005``).
        heartbeat_interval: seconds between ``heartbeat`` frames to
            subscribers; ``None`` disables.
        subscriber_queue: default bound of a subscriber's output queue.
        overflow: default overflow policy (one of
            :data:`~repro.service.protocol.OVERFLOW_POLICIES`).
        input_queue_documents: bound of the producer→engine document
            queue — the backpressure coupling point.
        drain_grace: seconds producers get to finish in-flight
            documents during drain before being aborted.
        checkpoint_path: where drain writes its document-boundary
            checkpoint (``None`` skips checkpointing).
        max_frame_bytes: per-line wire ceiling (``SVC001`` beyond).
        max_subscriptions_per_tenant: tenant budget (``SVC009``);
            ``None`` is unlimited.
        tick: housekeeping cadence in *real* seconds (deadline decisions
            themselves read :attr:`clock`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    serving: ServingPolicy = field(default_factory=ServingPolicy)
    admission: AdmissionPolicy | None = None
    limits: ResourceLimits | None = None
    clock: Clock | None = None
    handshake_timeout: float = 5.0
    idle_timeout: float | None = 60.0
    write_timeout: float = 10.0
    heartbeat_interval: float | None = 5.0
    subscriber_queue: int = 256
    overflow: str = OVERFLOW_BLOCK
    input_queue_documents: int = 8
    drain_grace: float = 5.0
    checkpoint_path: str | None = None
    max_frame_bytes: int = MAX_FRAME_BYTES
    max_subscriptions_per_tenant: int | None = None
    tick: float = 0.02

    def __post_init__(self) -> None:
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.overflow!r}"
            )
        for name in (
            "handshake_timeout",
            "write_timeout",
            "drain_grace",
            "tick",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("idle_timeout", "heartbeat_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        for name in ("subscriber_queue", "input_queue_documents"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")


@dataclass
class ServiceStats:
    """Operational counters, separate from the engine's ServingReport."""

    connections: int = 0
    producers: int = 0
    subscribers: int = 0
    documents_ingested: int = 0
    documents_rejected: int = 0
    partial_documents: int = 0
    frames_shed: int = 0
    forced_disconnects: int = 0
    heartbeats_sent: int = 0
    checkpoints_written: int = 0


class _Connection:
    """Per-socket state; every field is touched only from the event loop."""

    def __init__(
        self,
        conn_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        clock: Clock,
    ) -> None:
        self.id = conn_id
        self.reader = reader
        self.writer = writer
        self.role: str | None = None
        self.tenant = "default"
        self.opened_at = clock.monotonic()
        self.last_activity = self.opened_at
        self.closed = False
        self.drain_requested = False
        # producer state: the in-flight (not yet complete) document
        self.partial: list[Event] = []
        # subscriber state
        self.overflow = OVERFLOW_BLOCK
        self.queue: asyncio.Queue | None = None
        self.queries: dict[str, str] = {}  # client query_id -> engine id
        self.notified: dict[str, str] = {}  # engine id -> last notice code
        self.shed_frames = 0
        self.writing_since: float | None = None
        self.writer_task: asyncio.Task | None = None

    def send_now(self, frame: dict) -> None:
        """Queue one line on the transport (never blocks, line-atomic)."""
        if not self.closed and not self.writer.is_closing():
            self.writer.write(encode_frame(frame))

    def abort(self) -> None:
        """Hard-cut the transport (breaks a stuck write immediately)."""
        self.closed = True
        transport = self.writer.transport
        if transport is not None:
            transport.abort()


class SpexService:
    """One engine, one listener, many producer/subscriber connections."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.clock = as_clock(self.config.clock)
        self.stats = ServiceStats()
        self.engine = MultiQueryEngine(
            {},
            limits=self.config.limits,
            admission=self.config.admission,
        )
        self.pump: ServePump | None = None
        self.address: tuple[str, int] | None = None
        self.checkpoint: Checkpoint | None = None
        self._server: asyncio.Server | None = None
        self._input: asyncio.Queue | None = None
        self._connections: set[_Connection] = set()
        self._routes: dict[str, tuple[_Connection, str]] = {}
        self._tenant_counts: dict[str, int] = {}
        self._next_id = 0
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._engine_task: asyncio.Task | None = None
        self._housekeeper: asyncio.Task | None = None
        self._engine_done: asyncio.Event | None = None
        self._done: asyncio.Event | None = None
        self._last_heartbeat = 0.0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind, start the engine pump, and begin accepting connections."""
        config = self.config
        self.pump = self.engine.start_pump(
            policy=config.serving, clock=self.clock, cursor=StreamCursor()
        )
        self._input = asyncio.Queue(maxsize=config.input_queue_documents)
        self._engine_done = asyncio.Event()
        self._done = asyncio.Event()
        self._last_heartbeat = self.clock.monotonic()
        self._server = await asyncio.start_server(
            self._on_connection,
            config.host,
            config.port,
            limit=config.max_frame_bytes + 2,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._engine_task = asyncio.create_task(self._engine_loop())
        self._housekeeper = asyncio.create_task(self._housekeeping_loop())
        return self.address

    async def serve_until_done(self) -> None:
        """Block until a drain completes (install signal handlers first)."""
        assert self._done is not None, "start() first"
        await self._done.wait()

    def request_drain(self) -> None:
        """Begin graceful shutdown; idempotent, safe from signal handlers."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Drain and wait for completion."""
        assert self._done is not None, "start() first"
        self.request_drain()
        await self._done.wait()

    @property
    def degraded(self) -> bool:
        """Whether any query's delivery was degraded this pass."""
        serving = self.engine.serving
        if serving is None:
            return False
        return any(outcome.degraded for outcome in serving.outcomes.values())

    # ------------------------------------------------------------------
    # engine task: the single consumer of the document queue

    async def _engine_loop(self) -> None:
        assert self._input is not None and self.pump is not None
        try:
            while True:
                document = await self._input.get()
                if document is _DRAIN:
                    break
                for event in document:
                    for engine_id, match in self.pump.feed(event):
                        await self._deliver(engine_id, match)
                self._notify_detachments()
                # cooperative yield: one giant document must not starve
                # accept/handshake processing forever
                await asyncio.sleep(0)
        finally:
            assert self._engine_done is not None
            self._engine_done.set()

    async def _deliver(self, engine_id: str, match: Match) -> None:
        route = self._routes.get(engine_id)
        if route is None:
            return
        conn, client_id = route
        assert self.pump is not None and conn.queue is not None
        frame = match_frame(
            client_id, match, self.pump.serving.documents_seen - 1
        )
        if conn.overflow == OVERFLOW_BLOCK:
            await conn.queue.put(frame)
            return
        if conn.overflow == OVERFLOW_SHED_OLDEST:
            while conn.queue.full():
                dropped = conn.queue.get_nowait()
                if dropped is _CLOSE or (
                    isinstance(dropped, dict) and dropped.get("type") == "bye"
                ):
                    # never shed the connection's own shutdown frames
                    conn.queue.put_nowait(dropped)
                    return
                conn.shed_frames += 1
                self.stats.frames_shed += 1
                if isinstance(dropped, dict) and dropped.get("type") == "match":
                    victim = conn.queries.get(dropped.get("query_id", ""))
                    if victim is not None:
                        self.pump.serving.outcome(victim).degraded = True
            conn.queue.put_nowait(frame)
            return
        # OVERFLOW_DISCONNECT
        if conn.queue.full():
            self._force_close_subscriber(
                conn,
                SVC_OVERFLOW,
                f"output queue of {conn.queue.maxsize} frame(s) overflowed",
            )
            return
        conn.queue.put_nowait(frame)

    def _notify_detachments(self) -> None:
        """Surface quarantine/deadline/shed outcomes as wire notices."""
        assert self.pump is not None
        serving = self.pump.serving
        for engine_id, route in list(self._routes.items()):
            outcome = serving.outcomes.get(engine_id)
            if outcome is None:
                continue
            conn, client_id = route
            if outcome.status in ("quarantined", "deadline", "shed"):
                code = outcome.code or outcome.status.upper()
                if conn.notified.get(engine_id) != code:
                    conn.notified[engine_id] = code
                    self._enqueue_control(
                        conn,
                        notice_frame(code, outcome.reason or "", client_id),
                    )
            elif outcome.status == "ok" and engine_id in conn.notified:
                conn.notified.pop(engine_id, None)
                self._enqueue_control(
                    conn,
                    notice_frame("READMITTED", "query rejoined the pass", client_id),
                )

    def _enqueue_control(self, conn: _Connection, frame: dict) -> None:
        """Best-effort control frame: dropped (not blocking) when full."""
        if conn.closed or conn.queue is None:
            return
        try:
            conn.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.stats.frames_shed += 1

    # ------------------------------------------------------------------
    # connection handling

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self._next_id, reader, writer, self.clock)
        self._next_id += 1
        self._connections.add(conn)
        self.stats.connections += 1
        try:
            if self._draining:
                conn.send_now(bye_frame(SVC_DRAINING, "server is draining"))
                return
            await self._handshake_and_run(conn)
        except ProtocolError as exc:
            conn.send_now(error_frame(exc.code, str(exc)))
            conn.send_now(bye_frame(exc.code, "protocol violation; closing"))
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            ValueError,  # StreamReader raises it for over-limit lines
        ):
            pass
        finally:
            self._cleanup_connection(conn)

    async def _handshake_and_run(self, conn: _Connection) -> None:
        line = await conn.reader.readline()
        if not line:
            return
        frame = decode_frame(line, self.config.max_frame_bytes)
        if frame.get("type") != "hello":
            raise ProtocolError(
                f"expected 'hello', got {frame.get('type')!r}"
            )
        role = frame.get("role")
        if role not in ROLES:
            raise ProtocolError(f"unknown role {role!r} (expected one of {ROLES})")
        conn.role = role
        conn.tenant = str(frame.get("tenant", "default"))
        conn.last_activity = self.clock.monotonic()
        if role == ROLE_PRODUCER:
            self.stats.producers += 1
            conn.send_now(welcome_frame(role))
            await self._producer_loop(conn)
            return
        self.stats.subscribers += 1
        overflow = frame.get("overflow", self.config.overflow)
        if overflow not in OVERFLOW_POLICIES:
            raise ProtocolError(f"unknown overflow policy {overflow!r}")
        conn.overflow = overflow
        queue_size = int(frame.get("queue_size", self.config.subscriber_queue))
        if queue_size < 1:
            raise ProtocolError("queue_size must be at least 1")
        conn.queue = asyncio.Queue(maxsize=queue_size)
        conn.writer_task = asyncio.create_task(self._writer_loop(conn))
        self._enqueue_control(conn, welcome_frame(role))
        await self._subscriber_loop(conn)

    # -------------------------------- producers

    async def _producer_loop(self, conn: _Connection) -> None:
        assert self._input is not None
        while True:
            if conn.drain_requested:
                # Drain contract: everything the producer already sent
                # (buffered on the socket or in the reader) still counts
                # as committed — consume until a read would block, then
                # say goodbye.  Cancelling readline is safe: partial
                # lines stay in the StreamReader buffer.
                try:
                    line = await asyncio.wait_for(
                        conn.reader.readline(), self.config.tick
                    )
                except TimeoutError:
                    if conn.partial:
                        continue  # mid-document: the grace window governs
                    conn.send_now(bye_frame(SVC_DRAINING, "drained; thank you"))
                    return
            else:
                line = await conn.reader.readline()
            if not line:
                return
            conn.last_activity = self.clock.monotonic()
            frame = decode_frame(line, self.config.max_frame_bytes)
            kind = frame["type"]
            if kind == "ping":
                conn.send_now(pong_frame())
                continue
            if kind != "events":
                conn.send_now(
                    error_frame(
                        SVC_PROTOCOL,
                        f"producers send 'events' frames, got {kind!r}",
                    )
                )
                continue
            try:
                events = events_from_frame(frame)
            except ProtocolError as exc:
                conn.send_now(error_frame(exc.code, str(exc)))
                continue
            await self._ingest(conn, events)

    async def _ingest(self, conn: _Connection, events: list[Event]) -> None:
        """Document-atomic ingestion.

        Only *complete, well-formed* documents ever reach the engine
        queue — a producer can disconnect, stall or babble mid-document
        and the shared pass never sees a single event of it.
        """
        assert self._input is not None
        for event in events:
            if isinstance(event, StartDocument):
                if conn.partial:
                    self.stats.documents_rejected += 1
                    conn.partial = []
                    conn.send_now(
                        error_frame(
                            SVC_BAD_DOCUMENT,
                            "new <$> before </$>: partial document dropped",
                        )
                    )
                conn.partial.append(event)
                continue
            if not conn.partial:
                self.stats.documents_rejected += 1
                conn.send_now(
                    error_frame(
                        SVC_BAD_DOCUMENT,
                        f"event {event} outside a <$> envelope: dropped",
                    )
                )
                continue
            conn.partial.append(event)
            if isinstance(event, EndDocument):
                document = conn.partial
                conn.partial = []
                try:
                    list(checked(iter(document)))
                except StreamError as exc:
                    self.stats.documents_rejected += 1
                    conn.send_now(
                        error_frame(SVC_BAD_DOCUMENT, f"document dropped: {exc}")
                    )
                    continue
                # bounded queue: this await is the backpressure point
                await self._input.put(document)
                self.stats.documents_ingested += 1

    # -------------------------------- subscribers

    async def _subscriber_loop(self, conn: _Connection) -> None:
        while True:
            line = await conn.reader.readline()
            if not line or conn.closed:
                return
            conn.last_activity = self.clock.monotonic()
            frame = decode_frame(line, self.config.max_frame_bytes)
            kind = frame["type"]
            if kind == "ping":
                self._enqueue_control(conn, pong_frame())
            elif kind == "subscribe":
                await self._subscribe(conn, frame)
            elif kind == "unsubscribe":
                await self._unsubscribe(conn, frame)
            else:
                self._enqueue_control(
                    conn,
                    error_frame(
                        SVC_PROTOCOL,
                        f"subscribers send 'subscribe'/'unsubscribe', "
                        f"got {kind!r}",
                    ),
                )

    async def _subscribe(self, conn: _Connection, frame: dict) -> None:
        assert self.pump is not None and conn.queue is not None
        client_id = str(frame.get("query_id", ""))
        query = frame.get("query")
        if not client_id or not isinstance(query, str):
            self._enqueue_control(
                conn,
                error_frame(
                    SVC_PROTOCOL, "subscribe needs 'query_id' and 'query'"
                ),
            )
            return
        if client_id in conn.queries:
            self._enqueue_control(
                conn,
                error_frame(
                    SVC_PROTOCOL, f"query_id {client_id!r} already subscribed"
                ),
            )
            return
        if self._draining:
            await conn.queue.put(
                rejected_frame(client_id, SVC_DRAINING, "server is draining")
            )
            return
        budget = self.config.max_subscriptions_per_tenant
        if budget is not None and self._tenant_counts.get(conn.tenant, 0) >= budget:
            await conn.queue.put(
                rejected_frame(
                    client_id,
                    SVC_TENANT_BUDGET,
                    f"tenant {conn.tenant!r} at its budget of {budget} "
                    f"subscription(s)",
                )
            )
            return
        engine_id = f"c{conn.id}.{client_id}"
        try:
            self.engine.add_query(engine_id, query)
        except ReproError as exc:
            await conn.queue.put(
                rejected_frame(client_id, SVC_PROTOCOL, f"query rejected: {exc}")
            )
            return
        decision = self.engine.admissions.get(engine_id)
        if not self.pump.attach(engine_id):
            assert decision is not None  # attach only fails on rejection
            self.engine.remove_query(engine_id)
            await conn.queue.put(
                rejected_frame(client_id, decision.code, decision.reason)
            )
            return
        conn.queries[client_id] = engine_id
        self._routes[engine_id] = (conn, client_id)
        self._tenant_counts[conn.tenant] = (
            self._tenant_counts.get(conn.tenant, 0) + 1
        )
        status = "degraded" if decision is not None and decision.degraded else "admit"
        await conn.queue.put(
            subscribed_frame(
                client_id,
                status,
                decision.code if decision is not None else "ADMIT000",
                decision.reason if decision is not None else None,
            )
        )

    async def _unsubscribe(self, conn: _Connection, frame: dict) -> None:
        assert self.pump is not None and conn.queue is not None
        client_id = str(frame.get("query_id", ""))
        engine_id = conn.queries.pop(client_id, None)
        if engine_id is None:
            self._enqueue_control(
                conn,
                error_frame(SVC_PROTOCOL, f"not subscribed: {client_id!r}"),
            )
            return
        self._release_query(conn, engine_id, degraded=False)
        for match in self.pump.close(engine_id):
            await conn.queue.put(
                match_frame(
                    client_id, match, self.pump.serving.documents_seen - 1
                )
            )
        self.engine.remove_query(engine_id)
        await conn.queue.put(
            notice_frame("CLOSED", "unsubscribed", client_id)
        )

    def _release_query(
        self, conn: _Connection, engine_id: str, degraded: bool
    ) -> None:
        """Shared bookkeeping for any path that detaches a subscription."""
        self._routes.pop(engine_id, None)
        conn.notified.pop(engine_id, None)
        count = self._tenant_counts.get(conn.tenant, 0)
        if count <= 1:
            self._tenant_counts.pop(conn.tenant, None)
        else:
            self._tenant_counts[conn.tenant] = count - 1
        if degraded and self.engine.serving is not None:
            self.engine.serving.outcome(engine_id).degraded = True

    def _force_close_subscriber(
        self, conn: _Connection, code: str, reason: str
    ) -> None:
        """Cut a slow/overflowed subscriber; its queries close degraded."""
        if conn.closed:
            return
        conn.closed = True
        self.stats.forced_disconnects += 1
        assert self.pump is not None
        for client_id, engine_id in list(conn.queries.items()):
            self._release_query(conn, engine_id, degraded=True)
            self.pump.close(
                engine_id, status="closed", code=code, reason=reason,
                degraded=True,
            )
            try:
                self.engine.remove_query(engine_id)
            except ReproError:
                pass
        conn.queries.clear()
        # the bye goes straight onto the transport (the queue may hold a
        # single slot, and the writer may be wedged in a slow drain); the
        # cleared queue always has room for the close sentinel
        if not conn.writer.is_closing():
            conn.writer.write(encode_frame(bye_frame(code, reason)))
        if conn.queue is not None:
            while not conn.queue.empty():
                conn.queue.get_nowait()
            conn.queue.put_nowait(_CLOSE)

    async def _writer_loop(self, conn: _Connection) -> None:
        """Single writer per subscriber: ordered, clocked, abortable."""
        assert conn.queue is not None
        try:
            while True:
                frame = await conn.queue.get()
                if frame is _CLOSE:
                    break
                conn.writing_since = self.clock.monotonic()
                conn.writer.write(encode_frame(frame))
                await conn.writer.drain()
                conn.writing_since = None
                if conn.shed_frames and conn.queue.empty():
                    conn.writer.write(
                        encode_frame(
                            notice_frame(
                                "SHED001",
                                f"{conn.shed_frames} frame(s) shed "
                                f"(slow consumer, overflow=shed_oldest)",
                            )
                        )
                    )
                    await conn.writer.drain()
                    conn.shed_frames = 0
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            conn.writing_since = None
            # Closing the transport here is what unblocks the reader
            # loop (EOF) after a force-close or drain bye — and on a
            # write error it ends the connection's fault domain cleanly.
            if not conn.writer.is_closing():
                conn.writer.close()

    # ------------------------------------------------------------------
    # housekeeping: clock-decided timeouts and heartbeats

    async def _housekeeping_loop(self) -> None:
        config = self.config
        while True:
            await asyncio.sleep(config.tick)
            now = self.clock.monotonic()
            for conn in list(self._connections):
                if conn.closed:
                    continue
                if (
                    conn.role is None
                    and now - conn.opened_at > config.handshake_timeout
                ):
                    conn.send_now(
                        bye_frame(
                            SVC_HANDSHAKE_TIMEOUT,
                            f"no hello within {config.handshake_timeout}s",
                        )
                    )
                    conn.closed = True
                    conn.writer.close()
                    continue
                if (
                    config.idle_timeout is not None
                    and now - conn.last_activity > config.idle_timeout
                    and (conn.role == ROLE_PRODUCER or not conn.queries)
                    and conn.role is not None
                ):
                    conn.send_now(
                        bye_frame(
                            SVC_IDLE_TIMEOUT,
                            f"idle for more than {config.idle_timeout}s",
                        )
                    )
                    conn.closed = True
                    conn.writer.close()
                    continue
                if (
                    conn.writing_since is not None
                    and now - conn.writing_since > config.write_timeout
                ):
                    self._force_close_subscriber(
                        conn,
                        SVC_WRITE_TIMEOUT,
                        f"write blocked for more than {config.write_timeout}s",
                    )
                    conn.abort()
            if (
                config.heartbeat_interval is not None
                and now - self._last_heartbeat >= config.heartbeat_interval
            ):
                self._last_heartbeat = now
                documents = (
                    self.pump.serving.documents_seen
                    if self.pump is not None
                    else 0
                )
                for conn in self._connections:
                    if conn.role == ROLE_SUBSCRIBER and not conn.closed:
                        self._enqueue_control(conn, heartbeat_frame(documents))
                        self.stats.heartbeats_sent += 1

    # ------------------------------------------------------------------
    # drain

    async def _drain(self) -> None:
        assert (
            self._server is not None
            and self._input is not None
            and self._engine_done is not None
            and self._done is not None
        )
        config = self.config
        self._server.close()
        await self._server.wait_closed()
        # Producers between documents are released immediately; producers
        # mid-document get the grace window to finish their document.
        producers = [
            conn
            for conn in self._connections
            if conn.role == ROLE_PRODUCER and not conn.closed
        ]
        for conn in producers:
            conn.drain_requested = True
        deadline = self.clock.monotonic() + config.drain_grace
        while any(conn in self._connections for conn in producers):
            if self.clock.monotonic() > deadline:
                for conn in producers:
                    if conn in self._connections:
                        conn.abort()
                break
            await asyncio.sleep(config.tick)
        await self._input.put(_DRAIN)
        await self._engine_done.wait()
        # Document-boundary checkpoint: the pump only ever stops between
        # documents here (only whole documents enter the queue), so the
        # cut is exact and resumable.
        if self.pump is not None and self.pump.at_document_boundary:
            try:
                self.checkpoint = self.engine.checkpoint()
                if config.checkpoint_path is not None:
                    self.checkpoint.save(config.checkpoint_path)
                    self.stats.checkpoints_written += 1
            except ReproError:
                self.checkpoint = None
        # Flush and close every subscriber: committed matches first,
        # then bye — a drained subscriber misses nothing it was owed.
        flushers = []
        for conn in list(self._connections):
            if conn.role == ROLE_SUBSCRIBER and not conn.closed:
                goodbye = [
                    bye_frame(SVC_DRAINING, "server drained cleanly"),
                    _CLOSE,
                ]
                for frame in goodbye:
                    try:
                        await asyncio.wait_for(
                            conn.queue.put(frame), config.drain_grace
                        )
                    except TimeoutError:
                        # writer wedged on a dead client: cut it
                        conn.abort()
                        break
                if conn.writer_task is not None:
                    flushers.append(conn.writer_task)
        if flushers:
            await asyncio.wait(flushers, timeout=config.drain_grace)
        if self._housekeeper is not None:
            self._housekeeper.cancel()
        for conn in list(self._connections):
            if not conn.closed:
                conn.closed = True
                conn.writer.close()
        self._done.set()

    # ------------------------------------------------------------------

    def _cleanup_connection(self, conn: _Connection) -> None:
        if conn.role == ROLE_PRODUCER and conn.partial:
            # died mid-document: the document never reached the engine
            self.stats.partial_documents += 1
            conn.partial = []
        if conn.role == ROLE_SUBSCRIBER and conn.queries:
            # a departed subscriber is a clean close, not a failure
            assert self.pump is not None
            for engine_id in list(conn.queries.values()):
                self._release_query(conn, engine_id, degraded=False)
                self.pump.close(
                    engine_id,
                    status="closed",
                    code=None,
                    reason="subscriber disconnected",
                )
                try:
                    self.engine.remove_query(engine_id)
                except ReproError:
                    pass
            conn.queries.clear()
        if conn.queue is not None:
            # Free any engine task blocked on a put to this dead queue
            # (its route is gone, so later matches already skip it).
            while not conn.queue.empty():
                conn.queue.get_nowait()
            try:
                conn.queue.put_nowait(_CLOSE)
            except asyncio.QueueFull:  # pragma: no cover - queue just cleared
                pass
            if conn.writer_task is not None and conn.writer_task.done() is False:
                # a wedged writer (dead peer) must not outlive the conn
                if conn.closed:
                    conn.writer_task.cancel()
        conn.closed = True
        self._connections.discard(conn)
        if not conn.writer.is_closing():
            conn.writer.close()


async def run_service(
    config: ServiceConfig,
    install_signal_handlers: bool = True,
    ready: "asyncio.Event | None" = None,
) -> SpexService:
    """Start a service, serve until drained, return it for inspection.

    With ``install_signal_handlers`` the process's ``SIGTERM``/``SIGINT``
    trigger :meth:`SpexService.request_drain` — the graceful path the
    CLI and the chaos harness exercise.  ``ready`` (if given) is set
    once the listener is bound, for in-process test orchestration.
    """
    service = SpexService(config)
    await service.start()
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, service.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    if ready is not None:
        ready.set()
    await service.serve_until_done()
    return service
