"""Asyncio streaming service: producers push streams, subscribers match.

:class:`SpexService` binds the wire protocol of
:mod:`repro.service.protocol` to TCP and drives one
:class:`~repro.core.multiquery.ServePump` — the same push-mode state
machine :meth:`MultiQueryEngine.serve
<repro.core.multiquery.MultiQueryEngine.serve>` runs on — so a network
subscriber's match stream is bit-identical to an offline pass by
construction.

Robustness properties, each enforced structurally rather than by luck:

* **Per-connection fault domains.**  Every connection runs in its own
  task; a client that sends garbage, crawls, or vanishes affects only
  its own state.  Producer input is *document-atomic*: events are
  buffered and well-formedness-checked per document before the engine
  sees them, so a producer dying mid-document can never poison the
  strict engine pump (the partial document is dropped, counted, and the
  stream position never moves).
* **End-to-end backpressure.**  Matches flow through a bounded
  per-subscriber output queue; under the default ``block`` overflow
  policy a full queue suspends the engine task, which stops draining
  the bounded input document queue, which suspends producer read loops,
  which stops reading their sockets — the TCP receive window closes and
  the pressure reaches the true source.  ``shed_oldest`` trades loss
  (marked ``degraded``, surfaced as ``SHED001`` notices) for liveness;
  ``disconnect`` cuts the slow subscriber (``SVC006``).
* **Admission at the wire.**  ``subscribe`` runs the d·σ cost
  certifier's admission classification (``ADMIT000``–``ADMIT004``) and
  a per-tenant subscription budget (``SVC009``); rejected queries never
  touch the stream.
* **Clocked timeouts.**  Handshake, idle and write deadlines are
  *decided* against the injectable :class:`~repro.core.clock.Clock`
  (the housekeeping task merely ticks on real time), so fault-injection
  tests drive them with a :class:`~repro.core.clock.FakeClock` and zero
  real waiting.
* **Graceful drain.**  ``SIGTERM``/``SIGINT`` (via
  :meth:`SpexService.request_drain`) stop accepting connections, let
  producers finish in-flight documents within a grace window, pump the
  remaining input, take a document-boundary checkpoint (resumable via
  :mod:`repro.core.checkpoint`), flush every subscriber queue, and say
  ``bye`` (``SVC007``).
* **Durable sessions.**  With a write-ahead log configured
  (:attr:`ServiceConfig.wal_path`), subscribers may open *durable
  sessions*: every match carries a monotone per-subscription sequence
  number and is logged (:mod:`repro.service.wal`) before delivery, the
  engine is checkpointed in the background at document boundaries
  without stopping ingestion, and ``resume=True`` reconstructs the
  whole serving pass — pump, subscriptions, admission verdicts and
  quarantine latches — *as a service*, directly into a listening
  server.  A reconnecting client presents its session token and
  observed sequence floors (``resume`` frame); the server replays the
  retained log tail above the floor and suppresses regenerated
  duplicates below it, so every subscriber observes every match exactly
  once, bit-identical to an offline :meth:`MultiQueryEngine.serve
  <repro.core.multiquery.MultiQueryEngine.serve>` pass, across any
  number of crashes.
"""

from __future__ import annotations

import asyncio
import os
import secrets
from dataclasses import dataclass, field
from typing import Any

from ..core.checkpoint import Checkpoint
from ..core.clock import Clock, as_clock
from ..core.multiquery import MultiQueryEngine, ServePump
from ..core.output_tx import Match
from ..core.serving import AdmissionPolicy, ServingPolicy
from ..errors import CheckpointError, ReproError, StreamError
from ..limits import ResourceLimits
from ..xmlstream.events import EndDocument, Event, StartDocument
from ..xmlstream.offsets import StreamCursor
from ..xmlstream.validate import checked
from .protocol import (
    MAX_FRAME_BYTES,
    OVERFLOW_BLOCK,
    OVERFLOW_POLICIES,
    OVERFLOW_SHED_OLDEST,
    ROLE_PRODUCER,
    ROLE_SUBSCRIBER,
    ROLES,
    SVC_BAD_DOCUMENT,
    SVC_DRAINING,
    SVC_HANDSHAKE_TIMEOUT,
    SVC_IDLE_TIMEOUT,
    SVC_OVERFLOW,
    SVC_PROTOCOL,
    SVC_SESSION_EXPIRED,
    SVC_SESSION_UNKNOWN,
    SVC_TENANT_BUDGET,
    SVC_WRITE_TIMEOUT,
    ProtocolError,
    bye_frame,
    decode_frame,
    encode_frame,
    error_frame,
    events_from_frame,
    heartbeat_frame,
    ingested_frame,
    match_frame,
    match_from_obj,
    match_to_obj,
    notice_frame,
    pong_frame,
    rejected_frame,
    resumed_frame,
    subscribed_frame,
    welcome_frame,
)
from .wal import SessionRecovery, WalError, WalRecovery, WriteAheadLog


#: Sentinels for the engine input queue and subscriber output queues.
_DRAIN = object()
_CLOSE = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`SpexService` enforces.

    Attributes:
        host / port: bind address (port 0 picks an ephemeral port;
            read the actual one from :attr:`SpexService.address`).
        serving: the :class:`~repro.core.serving.ServingPolicy` the
            shared pass runs under (bulkheads, breakers, deadlines,
            shedding — all of it applies to wire subscribers too).
        admission: d·σ admission policy applied to every ``subscribe``
            (``None`` admits everything as ``ADMIT000``).
        limits: per-query :class:`~repro.limits.ResourceLimits`.
        clock: injectable time source for every timeout decision.
        handshake_timeout: seconds a connection may sit without a
            ``hello`` (``SVC003``).
        idle_timeout: seconds a producer (or a subscriber with no
            subscriptions) may sit silent (``SVC004``); ``None``
            disables.
        write_timeout: seconds one subscriber write may stay blocked
            before the connection is cut as a slow consumer
            (``SVC005``).
        heartbeat_interval: seconds between ``heartbeat`` frames to
            subscribers; ``None`` disables.
        subscriber_queue: default bound of a subscriber's output queue.
        overflow: default overflow policy (one of
            :data:`~repro.service.protocol.OVERFLOW_POLICIES`).
        input_queue_documents: bound of the producer→engine document
            queue — the backpressure coupling point.
        drain_grace: seconds producers get to finish in-flight
            documents during drain before being aborted.
        checkpoint_path: where drain (and the background cadence) write
            the document-boundary checkpoint (``None`` skips it).
        checkpoint_every_documents: background-checkpoint cadence — a
            snapshot is taken (in memory, synchronously — bounded by
            the paper's d·σ state bound) and written in a worker thread
            every N committed documents, *without* stopping ingestion;
            ``None`` keeps the drain-only behaviour.
        checkpoint_keep: checkpoint generations to retain (rotation);
            :meth:`Checkpoint.load <repro.core.checkpoint.Checkpoint.load>`
            falls back to the newest verifying one.
        wal_path: the write-ahead match log (:mod:`repro.service.wal`);
            required for durable sessions, ``None`` disables them.
        wal_fsync_documents: fsync batching cadence of the log (1 syncs
            every document marker).
        wal_max_bytes: compaction threshold — once the log exceeds it
            (checked at the checkpoint cadence), it is atomically
            rewritten from the retained unacked tail.
        session_retention_documents: a disconnected durable session
            older than this many committed documents is expired at the
            next checkpoint cadence (``SVC011`` on a later resume).
        resume: reconstruct state from ``checkpoint_path`` + ``wal_path``
            at :meth:`SpexService.start` — the service-native resume
            path (no offline engine round-trip).
        max_frame_bytes: per-line wire ceiling (``SVC001`` beyond).
        max_subscriptions_per_tenant: tenant budget (``SVC009``);
            ``None`` is unlimited.
        tick: housekeeping cadence in *real* seconds (deadline decisions
            themselves read :attr:`clock`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    serving: ServingPolicy = field(default_factory=ServingPolicy)
    admission: AdmissionPolicy | None = None
    limits: ResourceLimits | None = None
    clock: Clock | None = None
    handshake_timeout: float = 5.0
    idle_timeout: float | None = 60.0
    write_timeout: float = 10.0
    heartbeat_interval: float | None = 5.0
    subscriber_queue: int = 256
    overflow: str = OVERFLOW_BLOCK
    input_queue_documents: int = 8
    drain_grace: float = 5.0
    checkpoint_path: str | None = None
    checkpoint_every_documents: int | None = None
    checkpoint_keep: int = 1
    wal_path: str | None = None
    wal_fsync_documents: int = 1
    wal_max_bytes: int = 4_194_304
    session_retention_documents: int = 1024
    resume: bool = False
    max_frame_bytes: int = MAX_FRAME_BYTES
    max_subscriptions_per_tenant: int | None = None
    tick: float = 0.02

    def __post_init__(self) -> None:
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.overflow!r}"
            )
        for name in (
            "handshake_timeout",
            "write_timeout",
            "drain_grace",
            "tick",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("idle_timeout", "heartbeat_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        for name in (
            "subscriber_queue",
            "input_queue_documents",
            "checkpoint_keep",
            "wal_fsync_documents",
            "session_retention_documents",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        if (
            self.checkpoint_every_documents is not None
            and self.checkpoint_every_documents < 1
        ):
            raise ValueError(
                "checkpoint_every_documents must be at least 1 when set"
            )
        if self.wal_max_bytes < 1:
            raise ValueError("wal_max_bytes must be positive")


@dataclass
class ServiceStats:
    """Operational counters, separate from the engine's ServingReport."""

    connections: int = 0
    producers: int = 0
    subscribers: int = 0
    documents_ingested: int = 0
    documents_rejected: int = 0
    partial_documents: int = 0
    frames_shed: int = 0
    forced_disconnects: int = 0
    heartbeats_sent: int = 0
    checkpoints_written: int = 0
    sessions_opened: int = 0
    sessions_resumed: int = 0
    sessions_expired: int = 0
    matches_logged: int = 0
    matches_replayed: int = 0
    documents_rebuilt: int = 0
    wal_compactions: int = 0


class _Session:
    """One durable subscriber session; outlives its connections.

    The session is the durability unit of the wire protocol: its
    subscriptions keep running (and their matches keep accruing in the
    write-ahead log) while no connection is attached, and a client
    presenting the token reattaches with a ``resume`` frame carrying
    its observed per-query sequence floors.
    """

    def __init__(self, token: str, tenant: str, opened_doc: int) -> None:
        self.token = token
        self.tenant = tenant
        #: client query id -> {"engine_id", "query", "attach_doc"}
        self.subscriptions: dict[str, dict[str, Any]] = {}
        #: client query id -> highest sequence number the client observed
        #: (live delivery at or below it is suppressed; the WAL tail
        #: above it is what a resume replays).
        self.floors: dict[str, int] = {}
        self.conn: _Connection | None = None
        self.opened_doc = opened_doc
        self.last_doc = opened_doc

    def recovery_form(self) -> SessionRecovery:
        """The session as the WAL compactor re-emits it."""
        return SessionRecovery(
            token=self.token,
            tenant=self.tenant,
            subscriptions={
                qid: dict(sub) for qid, sub in self.subscriptions.items()
            },
            acked=dict(self.floors),
            opened_doc=self.opened_doc,
            last_doc=self.last_doc,
        )


class _Connection:
    """Per-socket state; every field is touched only from the event loop."""

    def __init__(
        self,
        conn_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        clock: Clock,
    ) -> None:
        self.id = conn_id
        self.reader = reader
        self.writer = writer
        self.role: str | None = None
        self.tenant = "default"
        self.opened_at = clock.monotonic()
        self.last_activity = self.opened_at
        self.closed = False
        self.drain_requested = False
        # producer state: the in-flight (not yet complete) document
        self.partial: list[Event] = []
        # subscriber state
        self.overflow = OVERFLOW_BLOCK
        self.queue: asyncio.Queue | None = None
        self.queries: dict[str, str] = {}  # client query_id -> engine id
        self.notified: dict[str, str] = {}  # engine id -> last notice code
        self.shed_frames = 0
        self.writing_since: float | None = None
        self.writer_task: asyncio.Task | None = None
        # durable-session state
        self.session: "_Session | None" = None
        #: replay in progress: live matches divert to ``resume_buffer``
        #: so the WAL tail stays strictly before them in the queue.
        self.resuming = False
        self.resume_buffer: list[dict] = []

    def send_now(self, frame: dict) -> None:
        """Queue one line on the transport (never blocks, line-atomic)."""
        if not self.closed and not self.writer.is_closing():
            self.writer.write(encode_frame(frame))

    def abort(self) -> None:
        """Hard-cut the transport (breaks a stuck write immediately)."""
        self.closed = True
        transport = self.writer.transport
        if transport is not None:
            transport.abort()


class SpexService:
    """One engine, one listener, many producer/subscriber connections."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.clock = as_clock(self.config.clock)
        self.stats = ServiceStats()
        self.engine = MultiQueryEngine(
            {},
            limits=self.config.limits,
            admission=self.config.admission,
        )
        self.pump: ServePump | None = None
        self.address: tuple[str, int] | None = None
        self.checkpoint: Checkpoint | None = None
        self.wal: WriteAheadLog | None = None
        self.resumed = False
        self._server: asyncio.Server | None = None
        self._input: asyncio.Queue | None = None
        self._connections: set[_Connection] = set()
        self._routes: dict[str, tuple[_Connection, str]] = {}
        self._tenant_counts: dict[str, int] = {}
        self._next_id = 0
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._engine_task: asyncio.Task | None = None
        self._housekeeper: asyncio.Task | None = None
        self._engine_done: asyncio.Event | None = None
        self._done: asyncio.Event | None = None
        self._last_heartbeat = 0.0
        # durable-session machinery
        self._sessions: dict[str, _Session] = {}
        self._engine_sessions: dict[str, tuple[_Session, str]] = {}
        self._seqs: dict[str, int] = {}
        #: complete documents committed (1-based count; WAL marker unit).
        self._committed_documents = 0
        #: documents accepted onto the input queue (>= committed).
        self._accepted_documents = 0
        #: replayed documents at or below this count rebuild engine state
        #: silently: their matches are already in the WAL, so delivery
        #: and logging are suppressed for the engine ids that existed at
        #: the crash (fresh subscriptions still see them live).
        self._rebuild_until = 0
        self._rebuild_eids: set[str] = set()
        #: (attach_doc, engine_id, query, qid, session) — recovered
        #: subscriptions younger than the checkpoint, re-attached when
        #: the rebuild replay reaches their original join point.
        self._deferred_attach: list[tuple[int, str, str, str, _Session]] = []
        self._expired_tokens: set[str] = set()
        self._checkpoint_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind, start the engine pump, and begin accepting connections.

        With :attr:`ServiceConfig.resume` the pump, subscriptions,
        admission verdicts, quarantine latches and WAL replay tail are
        reconstructed from ``checkpoint_path`` + ``wal_path`` *before*
        the listener binds — the service-native resume path.
        """
        config = self.config
        recovery = None
        if config.wal_path is not None:
            if not config.resume and os.path.exists(config.wal_path):
                os.unlink(config.wal_path)  # stale log from an old run
            self.wal, recovery = WriteAheadLog.open(
                config.wal_path, config.wal_fsync_documents
            )
        snapshot = self._load_resume_checkpoint() if config.resume else None
        if snapshot is not None:
            self.engine = MultiQueryEngine.from_checkpoint(
                snapshot,
                limits=config.limits,
                admission=config.admission,
            )
            self.pump = self.engine.resume_pump(
                snapshot, policy=config.serving, clock=self.clock
            )
            self.checkpoint = snapshot
            self.resumed = True
        else:
            self.pump = self.engine.start_pump(
                policy=config.serving, clock=self.clock, cursor=StreamCursor()
            )
        if config.resume and recovery is not None:
            self._install_recovery(recovery)
        self._input = asyncio.Queue(maxsize=config.input_queue_documents)
        self._engine_done = asyncio.Event()
        self._done = asyncio.Event()
        self._last_heartbeat = self.clock.monotonic()
        self._server = await asyncio.start_server(
            self._on_connection,
            config.host,
            config.port,
            limit=config.max_frame_bytes + 2,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._engine_task = asyncio.create_task(self._engine_loop())
        self._housekeeper = asyncio.create_task(self._housekeeping_loop())
        return self.address

    async def serve_until_done(self) -> None:
        """Block until a drain completes (install signal handlers first)."""
        assert self._done is not None, "start() first"
        await self._done.wait()

    def request_drain(self) -> None:
        """Begin graceful shutdown; idempotent, safe from signal handlers."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Drain and wait for completion."""
        assert self._done is not None, "start() first"
        self.request_drain()
        await self._done.wait()

    @property
    def committed_documents(self) -> int:
        """Fully ingested documents this run has committed (1-based)."""
        return self._committed_documents

    @property
    def session_count(self) -> int:
        """Live durable sessions (attached or awaiting a resume)."""
        return len(self._sessions)

    @property
    def degraded(self) -> bool:
        """Whether any query's delivery was degraded this pass."""
        serving = self.engine.serving
        if serving is None:
            return False
        return any(outcome.degraded for outcome in serving.outcomes.values())

    # ------------------------------------------------------------------
    # service-native resume

    def _load_resume_checkpoint(self) -> Checkpoint | None:
        """The newest verifying checkpoint generation, or ``None``.

        A missing file is a fresh start (first boot under a supervisor
        that always passes ``--resume``); a corrupt file falls back
        through the rotated generations inside :meth:`Checkpoint.load
        <repro.core.checkpoint.Checkpoint.load>` and only a fully
        unreadable set comes back ``None`` — the WAL still rebuilds the
        stream from document one in that case.
        """
        path = self.config.checkpoint_path
        if path is None:
            return None
        try:
            return Checkpoint.load(path)
        except CheckpointError:
            return None

    def _install_recovery(self, recovery: "WalRecovery") -> None:
        """Rebuild sessions, routes-to-be and counters from the WAL.

        The engine (restored from the checkpoint) may trail the log by
        up to one checkpoint interval; the difference is bridged by the
        producer replay contract — ``welcome`` tells producers to
        re-send from the engine's position, and documents at or below
        the committed count rebuild state with delivery suppressed.
        """
        assert self.pump is not None and self.wal is not None
        engine_documents = self.pump.serving.documents_seen
        self._committed_documents = max(
            recovery.committed_documents, engine_documents
        )
        self._accepted_documents = engine_documents
        self._rebuild_until = self._committed_documents
        self._seqs = dict(recovery.seqs)
        self.wal.documents = self._committed_documents
        deferred: list[tuple[int, str, str, str, _Session]] = []
        for token in sorted(recovery.sessions):
            record = recovery.sessions[token]
            session = _Session(token, record.tenant, record.opened_doc)
            session.last_doc = record.last_doc
            session.floors = dict(record.acked)
            session.subscriptions = {
                qid: dict(sub) for qid, sub in record.subscriptions.items()
            }
            self._sessions[token] = session
            for qid, sub in session.subscriptions.items():
                engine_id = str(sub["engine_id"])
                self._engine_sessions[engine_id] = (session, qid)
                self._rebuild_eids.add(engine_id)
                self._tenant_counts[session.tenant] = (
                    self._tenant_counts.get(session.tenant, 0) + 1
                )
                if engine_id not in self.engine.queries:
                    # Subscribed after the checkpoint cut: re-register at
                    # its original join point during the rebuild replay.
                    attach_doc = max(int(sub["attach_doc"]), engine_documents)
                    deferred.append(
                        (attach_doc, engine_id, str(sub["query"]), qid, session)
                    )
        self._deferred_attach = sorted(deferred, key=lambda item: item[0])
        # Checkpointed queries no durable session claims belonged to
        # non-durable subscribers of the dead process: close them out
        # (their subscribers are gone and cannot resume).
        for engine_id in list(self.engine.queries):
            if engine_id not in self._engine_sessions:
                self.pump.close(
                    engine_id,
                    status="closed",
                    code=None,
                    reason="non-durable subscriber lost in crash",
                )
                try:
                    self.engine.remove_query(engine_id)
                except ReproError:  # pragma: no cover - defensive
                    pass

    def _attach_deferred(self) -> None:
        """Re-attach recovered subscriptions whose join point arrived.

        A subscription recorded at document count ``k`` joined the pass
        at document ``k + 1``; during the rebuild replay it must join at
        exactly that boundary again — gauged by the *pump's* position,
        which climbs back through the replayed documents — or its
        regenerated matches (and every later sequence number) would
        diverge from the log.
        """
        assert self.pump is not None
        while (
            self._deferred_attach
            and self._deferred_attach[0][0] <= self.pump.serving.documents_seen
        ):
            _, engine_id, query, qid, session = self._deferred_attach.pop(0)
            try:
                self.engine.add_query(engine_id, query)
            except ReproError:
                session.subscriptions.pop(qid, None)
                self._engine_sessions.pop(engine_id, None)
                continue
            if not self.pump.attach(engine_id):
                # Deterministic admission re-rejects only what it
                # rejected before; a recovered subscription was admitted.
                self.engine.remove_query(engine_id)
                session.subscriptions.pop(qid, None)
                self._engine_sessions.pop(engine_id, None)

    # ------------------------------------------------------------------
    # engine task: the single consumer of the document queue

    async def _engine_loop(self) -> None:
        assert self._input is not None and self.pump is not None
        try:
            while True:
                item = await self._input.get()
                if item is _DRAIN:
                    break
                producer, document = item
                self._attach_deferred()
                for event in document:
                    for engine_id, match in self.pump.feed(event):
                        await self._deliver(engine_id, match)
                await self._commit_document(producer)
                self._notify_detachments()
                # cooperative yield: one giant document must not starve
                # accept/handshake processing forever
                await asyncio.sleep(0)
        finally:
            assert self._engine_done is not None
            self._engine_done.set()

    async def _commit_document(self, producer: "_Connection | None") -> None:
        """Document-boundary commit: marker, fsync cadence, checkpoint.

        Ordering is the durability invariant: the WAL marker (and its
        covering fsync, when the batching cadence fires) always precedes
        the background checkpoint save, so the checkpoint can trail the
        log but never lead it.  The producer's ``ingested`` ack goes out
        last — an acked document is one the log already holds.
        """
        assert self.pump is not None
        # The pump's own position is the commit count: during a rebuild
        # replay it climbs back toward the already-committed count (which
        # therefore must not advance), and past it they move together.
        count = self.pump.serving.documents_seen
        rebuilding = count <= self._rebuild_until
        self._committed_documents = max(self._committed_documents, count)
        if rebuilding:
            self.stats.documents_rebuilt += 1
        elif self.wal is not None:
            cursor = self.pump.cursor if self.pump is not None else None
            events_read = cursor.events_read if cursor is not None else 0
            self.wal.append_document(count, events_read)
            self._maybe_background_checkpoint(count)
        if (
            producer is not None
            and not producer.closed
            and self.wal is not None
        ):
            producer.send_now(
                ingested_frame(count, self.wal.durable_documents)
            )

    def _maybe_background_checkpoint(self, count: int) -> None:
        """Live checkpoint at the cadence, without stopping ingestion.

        The snapshot itself is taken synchronously (it is an in-memory
        dict capture, bounded by d·σ); only the fsync-heavy file write
        moves to a worker thread.  One save in flight at a time — if the
        previous write is still running, this boundary is skipped and
        the next cadence hit retries.
        """
        config = self.config
        if (
            config.checkpoint_every_documents is None
            or config.checkpoint_path is None
            or count % config.checkpoint_every_documents != 0
        ):
            return
        if self._checkpoint_task is not None and not self._checkpoint_task.done():
            return
        if self.wal is not None:
            self.wal.sync()  # the WAL must never trail the checkpoint
            self._expire_stale_sessions(count)
            if self.wal.size_bytes > config.wal_max_bytes:
                cursor = self.pump.cursor if self.pump is not None else None
                self.wal.compact(
                    {
                        token: session.recovery_form()
                        for token, session in self._sessions.items()
                    },
                    cursor.events_read if cursor is not None else 0,
                )
                self.stats.wal_compactions += 1
        try:
            snapshot = self.engine.checkpoint()
        except ReproError:  # pragma: no cover - no cursor-tracked pass
            return
        self.checkpoint = snapshot
        self._checkpoint_task = asyncio.get_running_loop().create_task(
            self._save_checkpoint(snapshot)
        )

    async def _save_checkpoint(self, snapshot: Checkpoint) -> None:
        try:
            await asyncio.to_thread(
                snapshot.save,
                self.config.checkpoint_path,
                self.config.checkpoint_keep,
            )
            self.stats.checkpoints_written += 1
        except (ReproError, OSError):  # pragma: no cover - disk trouble
            pass

    def _expire_stale_sessions(self, count: int) -> None:
        """Expire disconnected sessions past the retention window."""
        retention = self.config.session_retention_documents
        for token in list(self._sessions):
            session = self._sessions[token]
            if session.conn is not None:
                continue
            if count - session.last_doc <= retention:
                continue
            self._sessions.pop(token)
            self._expired_tokens.add(token)
            self.stats.sessions_expired += 1
            if self.wal is not None:
                self.wal.append_session(
                    {"op": "expire", "sid": token, "doc": count},
                    durable=False,
                )
            for qid, sub in list(session.subscriptions.items()):
                engine_id = str(sub["engine_id"])
                self._engine_sessions.pop(engine_id, None)
                self._rebuild_eids.discard(engine_id)
                count_t = self._tenant_counts.get(session.tenant, 0)
                if count_t <= 1:
                    self._tenant_counts.pop(session.tenant, None)
                else:
                    self._tenant_counts[session.tenant] = count_t - 1
                if self.wal is not None:
                    self.wal.release(engine_id)
                if self.pump is not None:
                    self.pump.close(
                        engine_id,
                        status="closed",
                        code=None,
                        reason="durable session expired",
                    )
                try:
                    self.engine.remove_query(engine_id)
                except ReproError:
                    pass
            session.subscriptions.clear()

    async def _deliver(self, engine_id: str, match: Match) -> None:
        assert self.pump is not None
        document = self.pump.serving.documents_seen - 1
        owner = self._engine_sessions.get(engine_id)
        seq: int | None = None
        if owner is not None:
            owner_session, owner_qid = owner
            if (
                self.pump.serving.documents_seen <= self._rebuild_until
                and engine_id in self._rebuild_eids
            ):
                # Rebuild replay: this match is already in the WAL with
                # this exact sequence number; the resume replay delivers
                # it, so regenerating it must stay silent.
                return
            seq = self._seqs.get(engine_id, 0) + 1
            self._seqs[engine_id] = seq
            if self.wal is not None:
                self.wal.append_match(
                    engine_id, seq, document, match_to_obj(match)
                )
                self.stats.matches_logged += 1
            if seq <= owner_session.floors.get(owner_qid, 0):
                # The client observed this match before the crash; the
                # regenerated copy must not be delivered twice.
                return
        route = self._routes.get(engine_id)
        if route is None:
            return
        conn, client_id = route
        assert conn.queue is not None
        frame = match_frame(client_id, match, document, seq=seq)
        if conn.resuming:
            # WAL-tail replay in progress: live frames park here and
            # follow the replayed tail in order.
            conn.resume_buffer.append(frame)
            return
        if conn.overflow == OVERFLOW_BLOCK:
            await conn.queue.put(frame)
            return
        if conn.overflow == OVERFLOW_SHED_OLDEST:
            while conn.queue.full():
                dropped = conn.queue.get_nowait()
                if dropped is _CLOSE or (
                    isinstance(dropped, dict) and dropped.get("type") == "bye"
                ):
                    # never shed the connection's own shutdown frames
                    conn.queue.put_nowait(dropped)
                    return
                conn.shed_frames += 1
                self.stats.frames_shed += 1
                if isinstance(dropped, dict) and dropped.get("type") == "match":
                    victim = conn.queries.get(dropped.get("query_id", ""))
                    if victim is not None:
                        self.pump.serving.outcome(victim).degraded = True
            conn.queue.put_nowait(frame)
            return
        # OVERFLOW_DISCONNECT
        if conn.queue.full():
            self._force_close_subscriber(
                conn,
                SVC_OVERFLOW,
                f"output queue of {conn.queue.maxsize} frame(s) overflowed",
            )
            return
        conn.queue.put_nowait(frame)

    def _notify_detachments(self) -> None:
        """Surface quarantine/deadline/shed outcomes as wire notices."""
        assert self.pump is not None
        serving = self.pump.serving
        for engine_id, route in list(self._routes.items()):
            outcome = serving.outcomes.get(engine_id)
            if outcome is None:
                continue
            conn, client_id = route
            if outcome.status in ("quarantined", "deadline", "shed"):
                code = outcome.code or outcome.status.upper()
                if conn.notified.get(engine_id) != code:
                    conn.notified[engine_id] = code
                    self._enqueue_control(
                        conn,
                        notice_frame(code, outcome.reason or "", client_id),
                    )
            elif outcome.status == "ok" and engine_id in conn.notified:
                conn.notified.pop(engine_id, None)
                self._enqueue_control(
                    conn,
                    notice_frame("READMITTED", "query rejoined the pass", client_id),
                )

    def _enqueue_control(self, conn: _Connection, frame: dict) -> None:
        """Best-effort control frame: dropped (not blocking) when full."""
        if conn.closed or conn.queue is None:
            return
        try:
            conn.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.stats.frames_shed += 1

    # ------------------------------------------------------------------
    # connection handling

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self._next_id, reader, writer, self.clock)
        self._next_id += 1
        self._connections.add(conn)
        self.stats.connections += 1
        try:
            if self._draining:
                conn.send_now(bye_frame(SVC_DRAINING, "server is draining"))
                return
            await self._handshake_and_run(conn)
        except ProtocolError as exc:
            conn.send_now(error_frame(exc.code, str(exc)))
            conn.send_now(bye_frame(exc.code, "protocol violation; closing"))
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            ValueError,  # StreamReader raises it for over-limit lines
        ):
            pass
        finally:
            self._cleanup_connection(conn)

    async def _handshake_and_run(self, conn: _Connection) -> None:
        line = await conn.reader.readline()
        if not line:
            return
        frame = decode_frame(line, self.config.max_frame_bytes)
        if frame.get("type") != "hello":
            raise ProtocolError(
                f"expected 'hello', got {frame.get('type')!r}"
            )
        role = frame.get("role")
        if role not in ROLES:
            raise ProtocolError(f"unknown role {role!r} (expected one of {ROLES})")
        conn.role = role
        conn.tenant = str(frame.get("tenant", "default"))
        conn.last_activity = self.clock.monotonic()
        if role == ROLE_PRODUCER:
            self.stats.producers += 1
            if self.wal is not None:
                # Replay contract: the producer re-sends everything after
                # the service's accepted position — during a resume that
                # is the checkpoint cut, so the rebuild replay regrows
                # the engine to the committed count deterministically.
                conn.send_now(
                    welcome_frame(
                        role,
                        documents=self._committed_documents,
                        replay_from=self._accepted_documents + 1,
                    )
                )
            else:
                conn.send_now(welcome_frame(role))
            await self._producer_loop(conn)
            return
        self.stats.subscribers += 1
        overflow = frame.get("overflow", self.config.overflow)
        if overflow not in OVERFLOW_POLICIES:
            raise ProtocolError(f"unknown overflow policy {overflow!r}")
        conn.overflow = overflow
        queue_size = int(frame.get("queue_size", self.config.subscriber_queue))
        if queue_size < 1:
            raise ProtocolError("queue_size must be at least 1")
        durable = bool(frame.get("durable", False))
        token = frame.get("session")
        if (durable or token is not None) and self.wal is None:
            raise ProtocolError(
                "durable sessions need a write-ahead log "
                "(server started without --wal-file)"
            )
        session: _Session | None = None
        if token is not None:
            session = self._sessions.get(str(token))
            if session is None:
                if str(token) in self._expired_tokens:
                    code, why = (
                        SVC_SESSION_EXPIRED,
                        f"session {token!r} expired past the retention "
                        f"window of "
                        f"{self.config.session_retention_documents} "
                        f"document(s)",
                    )
                else:
                    code, why = (
                        SVC_SESSION_UNKNOWN,
                        f"unknown session {token!r}",
                    )
                # The writer task does not exist yet, so the refusal
                # goes straight onto the transport — a client-chosen
                # queue size (even 1) cannot shed or wedge the flush.
                conn.send_now(error_frame(code, why))
                conn.send_now(bye_frame(code, "cannot resume"))
                try:
                    await conn.writer.drain()
                except ConnectionError:
                    pass
                return
            if session.conn is not None and not session.conn.closed:
                raise ProtocolError(
                    f"session {token!r} is attached on another connection"
                )
        conn.queue = asyncio.Queue(maxsize=queue_size)
        conn.writer_task = asyncio.create_task(self._writer_loop(conn))
        if session is not None:
            self._adopt_session(conn, session)
            self._enqueue_control(
                conn, welcome_frame(role, session=session.token)
            )
        elif durable:
            session = self._open_session(conn)
            self._enqueue_control(
                conn, welcome_frame(role, session=session.token)
            )
        else:
            self._enqueue_control(conn, welcome_frame(role))
        await self._subscriber_loop(conn)

    def _open_session(self, conn: _Connection) -> _Session:
        """Mint a durable session for a fresh ``durable`` hello.

        Tokens are unguessable (``secrets``) rather than sequential:
        the token is the *only* credential a resume presents, so a
        guessable one would let any client adopt another tenant's
        session — and a counter-derived one could be re-minted after a
        crash if the counter's high-water mark predated the surviving
        WAL records, silently handing an old client's matches to a new
        one.  Random tokens rule out both recycling and hijacking.
        """
        assert self.wal is not None
        token = f"sess-{secrets.token_urlsafe(12)}"
        while token in self._sessions or token in self._expired_tokens:
            token = f"sess-{secrets.token_urlsafe(12)}"  # pragma: no cover
        session = _Session(token, conn.tenant, self._committed_documents)
        session.conn = conn
        conn.session = session
        self._sessions[token] = session
        self.wal.append_session(
            {
                "op": "open",
                "sid": token,
                "tenant": conn.tenant,
                "doc": session.opened_doc,
            }
        )
        self.stats.sessions_opened += 1
        return session

    def _adopt_session(self, conn: _Connection, session: "_Session") -> None:
        """Bind a reconnecting connection to its recovered session.

        Routes and ``conn.queries`` are installed immediately so live
        matches start flowing (through the floor filter); the client's
        ``resume`` frame then replays the WAL tail and lifts the floors.
        """
        session.conn = conn
        conn.session = session
        conn.tenant = session.tenant
        for qid, sub in session.subscriptions.items():
            engine_id = str(sub["engine_id"])
            conn.queries[qid] = engine_id
            self._routes[engine_id] = (conn, qid)

    # -------------------------------- producers

    async def _producer_loop(self, conn: _Connection) -> None:
        assert self._input is not None
        while True:
            if conn.drain_requested:
                # Drain contract: everything the producer already sent
                # (buffered on the socket or in the reader) still counts
                # as committed — consume until a read would block, then
                # say goodbye.  Cancelling readline is safe: partial
                # lines stay in the StreamReader buffer.
                try:
                    line = await asyncio.wait_for(
                        conn.reader.readline(), self.config.tick
                    )
                except TimeoutError:
                    if conn.partial:
                        continue  # mid-document: the grace window governs
                    conn.send_now(bye_frame(SVC_DRAINING, "drained; thank you"))
                    return
            else:
                line = await conn.reader.readline()
            if not line:
                return
            conn.last_activity = self.clock.monotonic()
            frame = decode_frame(line, self.config.max_frame_bytes)
            kind = frame["type"]
            if kind == "ping":
                conn.send_now(pong_frame())
                continue
            if kind != "events":
                conn.send_now(
                    error_frame(
                        SVC_PROTOCOL,
                        f"producers send 'events' frames, got {kind!r}",
                    )
                )
                continue
            try:
                events = events_from_frame(frame)
            except ProtocolError as exc:
                conn.send_now(error_frame(exc.code, str(exc)))
                continue
            await self._ingest(conn, events)

    async def _ingest(self, conn: _Connection, events: list[Event]) -> None:
        """Document-atomic ingestion.

        Only *complete, well-formed* documents ever reach the engine
        queue — a producer can disconnect, stall or babble mid-document
        and the shared pass never sees a single event of it.
        """
        assert self._input is not None
        for event in events:
            if isinstance(event, StartDocument):
                if conn.partial:
                    self.stats.documents_rejected += 1
                    conn.partial = []
                    conn.send_now(
                        error_frame(
                            SVC_BAD_DOCUMENT,
                            "new <$> before </$>: partial document dropped",
                        )
                    )
                conn.partial.append(event)
                continue
            if not conn.partial:
                self.stats.documents_rejected += 1
                conn.send_now(
                    error_frame(
                        SVC_BAD_DOCUMENT,
                        f"event {event} outside a <$> envelope: dropped",
                    )
                )
                continue
            conn.partial.append(event)
            if isinstance(event, EndDocument):
                document = conn.partial
                conn.partial = []
                try:
                    list(checked(iter(document)))
                except StreamError as exc:
                    self.stats.documents_rejected += 1
                    conn.send_now(
                        error_frame(SVC_BAD_DOCUMENT, f"document dropped: {exc}")
                    )
                    continue
                # bounded queue: this await is the backpressure point
                await self._input.put((conn, document))
                self._accepted_documents += 1
                self.stats.documents_ingested += 1

    # -------------------------------- subscribers

    async def _subscriber_loop(self, conn: _Connection) -> None:
        while True:
            line = await conn.reader.readline()
            if not line or conn.closed:
                return
            conn.last_activity = self.clock.monotonic()
            frame = decode_frame(line, self.config.max_frame_bytes)
            kind = frame["type"]
            if kind == "ping":
                self._enqueue_control(conn, pong_frame())
            elif kind == "subscribe":
                await self._subscribe(conn, frame)
            elif kind == "unsubscribe":
                await self._unsubscribe(conn, frame)
            elif kind == "resume":
                await self._resume_session(conn, frame)
            elif kind == "ack":
                self._handle_ack(conn, frame)
            else:
                self._enqueue_control(
                    conn,
                    error_frame(
                        SVC_PROTOCOL,
                        f"subscribers send 'subscribe'/'unsubscribe', "
                        f"got {kind!r}",
                    ),
                )

    async def _resume_session(self, conn: _Connection, frame: dict) -> None:
        """Replay the retained WAL tail above the client's floors.

        Ordering contract: every replayed match precedes every live
        match on the wire.  Routes are already installed (adoption), so
        live matches produced *during* this replay divert to
        ``conn.resume_buffer`` and are flushed right after the tail,
        before the ``resumed`` frame clears the diversion.
        """
        session = conn.session
        if session is None or self.wal is None:
            self._enqueue_control(
                conn,
                error_frame(SVC_PROTOCOL, "resume needs a durable session"),
            )
            return
        acked = frame.get("acked")
        if not isinstance(acked, dict):
            acked = {}
        conn.resuming = True
        try:
            for qid in sorted(session.subscriptions):
                sub = session.subscriptions[qid]
                engine_id = str(sub["engine_id"])
                # Clamp to the highest assigned sequence: a floor above
                # the counter would suppress every future delivery.
                claimed = min(
                    int(acked.get(qid, 0)), self._seqs.get(engine_id, 0)
                )
                floor = max(session.floors.get(qid, 0), claimed)
                session.floors[qid] = floor
                self.wal.acknowledge(engine_id, floor)
                for seq, document, match_obj in self.wal.replay_tail(
                    engine_id, floor
                ):
                    replayed = match_frame(
                        qid, match_from_obj(match_obj), document, seq=seq
                    )
                    await conn.queue.put(replayed)  # type: ignore[union-attr]
                    self.stats.matches_replayed += 1
            # Drain-and-recheck: a blocking put below may let the engine
            # task append more live matches to the buffer, so loop until
            # a check finds it empty — then clear ``resuming`` with no
            # await in between, or a match delivered during the final
            # put would land in an orphaned buffer and be lost forever
            # (a cumulative ack would even prune it from the WAL).
            while conn.resume_buffer:
                await conn.queue.put(  # type: ignore[union-attr]
                    conn.resume_buffer.pop(0)
                )
            conn.resuming = False
            await conn.queue.put(  # type: ignore[union-attr]
                resumed_frame(
                    {
                        qid: self._seqs.get(
                            str(session.subscriptions[qid]["engine_id"]), 0
                        )
                        for qid in sorted(session.subscriptions)
                    },
                    self._committed_documents,
                )
            )
        finally:
            conn.resuming = False
        session.last_doc = self._committed_documents
        self.stats.sessions_resumed += 1

    def _handle_ack(self, conn: _Connection, frame: dict) -> None:
        """Lift a floor: the log tail at or below it can be pruned."""
        session = conn.session
        if session is None or self.wal is None:
            return
        qid = str(frame.get("query_id", ""))
        sub = session.subscriptions.get(qid)
        if sub is None:
            return
        try:
            seq = int(frame.get("seq", 0))
        except (TypeError, ValueError):
            return
        engine_id = str(sub["engine_id"])
        # Clamp to the highest assigned sequence: an ack past the
        # counter would raise the floor above every future match,
        # silently blackholing the subscription (and pruning the WAL).
        seq = min(seq, self._seqs.get(engine_id, 0))
        if seq <= session.floors.get(qid, 0):
            return
        session.floors[qid] = seq
        self.wal.acknowledge(engine_id, seq)
        # Ack records trim the tail a *future* recovery replays; losing
        # the latest one merely re-replays a few acked matches, which
        # the client's own floor filter drops — no eager fsync needed.
        self.wal.append_session(
            {"op": "ack", "sid": session.token, "qid": qid, "seq": seq},
            durable=False,
        )

    async def _subscribe(self, conn: _Connection, frame: dict) -> None:
        assert self.pump is not None and conn.queue is not None
        client_id = str(frame.get("query_id", ""))
        query = frame.get("query")
        if not client_id or not isinstance(query, str):
            self._enqueue_control(
                conn,
                error_frame(
                    SVC_PROTOCOL, "subscribe needs 'query_id' and 'query'"
                ),
            )
            return
        if client_id in conn.queries:
            self._enqueue_control(
                conn,
                error_frame(
                    SVC_PROTOCOL, f"query_id {client_id!r} already subscribed"
                ),
            )
            return
        if self._draining:
            await conn.queue.put(
                rejected_frame(client_id, SVC_DRAINING, "server is draining")
            )
            return
        budget = self.config.max_subscriptions_per_tenant
        if budget is not None and self._tenant_counts.get(conn.tenant, 0) >= budget:
            await conn.queue.put(
                rejected_frame(
                    client_id,
                    SVC_TENANT_BUDGET,
                    f"tenant {conn.tenant!r} at its budget of {budget} "
                    f"subscription(s)",
                )
            )
            return
        session = conn.session
        if session is not None:
            # Session-scoped id: stable across reconnects, so the WAL
            # tail and sequence counter survive the connection.
            engine_id = f"{session.token}.{client_id}"
        else:
            engine_id = f"c{conn.id}.{client_id}"
        try:
            self.engine.add_query(engine_id, query)
        except ReproError as exc:
            await conn.queue.put(
                rejected_frame(client_id, SVC_PROTOCOL, f"query rejected: {exc}")
            )
            return
        decision = self.engine.admissions.get(engine_id)
        if not self.pump.attach(engine_id):
            assert decision is not None  # attach only fails on rejection
            self.engine.remove_query(engine_id)
            await conn.queue.put(
                rejected_frame(client_id, decision.code, decision.reason)
            )
            return
        conn.queries[client_id] = engine_id
        self._routes[engine_id] = (conn, client_id)
        self._tenant_counts[conn.tenant] = (
            self._tenant_counts.get(conn.tenant, 0) + 1
        )
        if session is not None:
            assert self.wal is not None
            # attach() joins at the next <$>, i.e. document
            # ``documents_seen + 1`` whether called at a boundary or
            # mid-document — record the position so a rebuild replay
            # re-attaches at exactly the same join point.
            attach_doc = self.pump.serving.documents_seen
            session.subscriptions[client_id] = {
                "engine_id": engine_id,
                "query": query,
                "attach_doc": attach_doc,
            }
            self._engine_sessions[engine_id] = (session, client_id)
            self.wal.append_session(
                {
                    "op": "sub",
                    "sid": session.token,
                    "qid": client_id,
                    "eid": engine_id,
                    "query": query,
                    "doc": attach_doc,
                }
            )
        status = "degraded" if decision is not None and decision.degraded else "admit"
        await conn.queue.put(
            subscribed_frame(
                client_id,
                status,
                decision.code if decision is not None else "ADMIT000",
                decision.reason if decision is not None else None,
            )
        )

    async def _unsubscribe(self, conn: _Connection, frame: dict) -> None:
        assert self.pump is not None and conn.queue is not None
        client_id = str(frame.get("query_id", ""))
        engine_id = conn.queries.pop(client_id, None)
        if engine_id is None:
            self._enqueue_control(
                conn,
                error_frame(SVC_PROTOCOL, f"not subscribed: {client_id!r}"),
            )
            return
        self._release_query(conn, engine_id, degraded=False)
        session = conn.session
        durable = session is not None and client_id in session.subscriptions
        for match in self.pump.close(engine_id):
            seq: int | None = None
            if durable:
                seq = self._seqs.get(engine_id, 0) + 1
                self._seqs[engine_id] = seq
            await conn.queue.put(
                match_frame(
                    client_id,
                    match,
                    self.pump.serving.documents_seen - 1,
                    seq=seq,
                )
            )
        self.engine.remove_query(engine_id)
        if durable and session is not None:
            # The subscription ends with the session's blessing: its log
            # tail and recovery entry go away (an unsubscribed query is
            # never replayed), though its sequence counter stays so a
            # re-subscribe under the same id continues monotonically.
            session.subscriptions.pop(client_id, None)
            session.floors.pop(client_id, None)
            self._engine_sessions.pop(engine_id, None)
            self._rebuild_eids.discard(engine_id)
            if self.wal is not None:
                self.wal.release(engine_id)
                self.wal.append_session(
                    {"op": "unsub", "sid": session.token, "qid": client_id}
                )
        await conn.queue.put(
            notice_frame("CLOSED", "unsubscribed", client_id)
        )

    def _release_query(
        self, conn: _Connection, engine_id: str, degraded: bool
    ) -> None:
        """Shared bookkeeping for any path that detaches a subscription."""
        self._routes.pop(engine_id, None)
        conn.notified.pop(engine_id, None)
        count = self._tenant_counts.get(conn.tenant, 0)
        if count <= 1:
            self._tenant_counts.pop(conn.tenant, None)
        else:
            self._tenant_counts[conn.tenant] = count - 1
        if degraded and self.engine.serving is not None:
            self.engine.serving.outcome(engine_id).degraded = True

    def _detach_session_conn(self, conn: _Connection) -> None:
        """Unbind a durable session from a dying connection.

        The session — queries, tenant budget, sequence counters, WAL
        tail — stays alive: matches keep accruing durably and a later
        ``resume`` with the token replays them.  Nothing is degraded;
        by the exactly-once contract the client loses no matches.
        """
        session = conn.session
        assert session is not None
        for engine_id in conn.queries.values():
            route = self._routes.get(engine_id)
            if route is not None and route[0] is conn:
                self._routes.pop(engine_id, None)
        conn.queries.clear()
        conn.notified.clear()
        conn.resume_buffer = []
        session.conn = None
        session.last_doc = max(session.last_doc, self._committed_documents)
        conn.session = None

    def _force_close_subscriber(
        self, conn: _Connection, code: str, reason: str
    ) -> None:
        """Cut a slow/overflowed subscriber; its queries close degraded.

        A durable session's queries are *not* closed — the connection is
        the faulty part, the session survives for a resume.
        """
        if conn.closed:
            return
        conn.closed = True
        self.stats.forced_disconnects += 1
        assert self.pump is not None
        if conn.session is not None:
            self._detach_session_conn(conn)
        else:
            for client_id, engine_id in list(conn.queries.items()):
                self._release_query(conn, engine_id, degraded=True)
                self.pump.close(
                    engine_id, status="closed", code=code, reason=reason,
                    degraded=True,
                )
                try:
                    self.engine.remove_query(engine_id)
                except ReproError:
                    pass
            conn.queries.clear()
        # the bye goes straight onto the transport (the queue may hold a
        # single slot, and the writer may be wedged in a slow drain); the
        # cleared queue always has room for the close sentinel
        if not conn.writer.is_closing():
            conn.writer.write(encode_frame(bye_frame(code, reason)))
        if conn.queue is not None:
            while not conn.queue.empty():
                conn.queue.get_nowait()
            conn.queue.put_nowait(_CLOSE)

    async def _writer_loop(self, conn: _Connection) -> None:
        """Single writer per subscriber: ordered, clocked, abortable."""
        assert conn.queue is not None
        try:
            while True:
                frame = await conn.queue.get()
                if frame is _CLOSE:
                    break
                conn.writing_since = self.clock.monotonic()
                conn.writer.write(encode_frame(frame))
                await conn.writer.drain()
                conn.writing_since = None
                if conn.shed_frames and conn.queue.empty():
                    conn.writer.write(
                        encode_frame(
                            notice_frame(
                                "SHED001",
                                f"{conn.shed_frames} frame(s) shed "
                                f"(slow consumer, overflow=shed_oldest)",
                            )
                        )
                    )
                    await conn.writer.drain()
                    conn.shed_frames = 0
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            conn.writing_since = None
            # Closing the transport here is what unblocks the reader
            # loop (EOF) after a force-close or drain bye — and on a
            # write error it ends the connection's fault domain cleanly.
            if not conn.writer.is_closing():
                conn.writer.close()

    # ------------------------------------------------------------------
    # housekeeping: clock-decided timeouts and heartbeats

    async def _housekeeping_loop(self) -> None:
        config = self.config
        while True:
            await asyncio.sleep(config.tick)
            now = self.clock.monotonic()
            for conn in list(self._connections):
                if conn.closed:
                    continue
                if (
                    conn.role is None
                    and now - conn.opened_at > config.handshake_timeout
                ):
                    conn.send_now(
                        bye_frame(
                            SVC_HANDSHAKE_TIMEOUT,
                            f"no hello within {config.handshake_timeout}s",
                        )
                    )
                    conn.closed = True
                    conn.writer.close()
                    continue
                if (
                    config.idle_timeout is not None
                    and now - conn.last_activity > config.idle_timeout
                    and (conn.role == ROLE_PRODUCER or not conn.queries)
                    and conn.role is not None
                ):
                    conn.send_now(
                        bye_frame(
                            SVC_IDLE_TIMEOUT,
                            f"idle for more than {config.idle_timeout}s",
                        )
                    )
                    conn.closed = True
                    conn.writer.close()
                    continue
                if (
                    conn.writing_since is not None
                    and now - conn.writing_since > config.write_timeout
                ):
                    self._force_close_subscriber(
                        conn,
                        SVC_WRITE_TIMEOUT,
                        f"write blocked for more than {config.write_timeout}s",
                    )
                    conn.abort()
            if (
                config.heartbeat_interval is not None
                and now - self._last_heartbeat >= config.heartbeat_interval
            ):
                self._last_heartbeat = now
                documents = (
                    self.pump.serving.documents_seen
                    if self.pump is not None
                    else 0
                )
                for conn in self._connections:
                    if conn.role == ROLE_SUBSCRIBER and not conn.closed:
                        self._enqueue_control(conn, heartbeat_frame(documents))
                        self.stats.heartbeats_sent += 1

    # ------------------------------------------------------------------
    # drain

    async def _drain(self) -> None:
        assert (
            self._server is not None
            and self._input is not None
            and self._engine_done is not None
            and self._done is not None
        )
        config = self.config
        self._server.close()
        await self._server.wait_closed()
        # Producers between documents are released immediately; producers
        # mid-document get the grace window to finish their document.
        producers = [
            conn
            for conn in self._connections
            if conn.role == ROLE_PRODUCER and not conn.closed
        ]
        for conn in producers:
            conn.drain_requested = True
        deadline = self.clock.monotonic() + config.drain_grace
        while any(conn in self._connections for conn in producers):
            if self.clock.monotonic() > deadline:
                for conn in producers:
                    if conn in self._connections:
                        conn.abort()
                break
            await asyncio.sleep(config.tick)
        await self._input.put(_DRAIN)
        await self._engine_done.wait()
        if self._checkpoint_task is not None:
            # let an in-flight background save finish before the final
            # one (two concurrent rotations on one path would race)
            await asyncio.wait([self._checkpoint_task])
        if self.wal is not None:
            self.wal.sync()  # checkpoint never leads the log
        # Document-boundary checkpoint: the pump only ever stops between
        # documents here (only whole documents enter the queue), so the
        # cut is exact and resumable.
        if self.pump is not None and self.pump.at_document_boundary:
            try:
                self.checkpoint = self.engine.checkpoint()
                if config.checkpoint_path is not None:
                    self.checkpoint.save(
                        config.checkpoint_path, keep=config.checkpoint_keep
                    )
                    self.stats.checkpoints_written += 1
            except ReproError:
                self.checkpoint = None
        # Flush and close every subscriber: committed matches first,
        # then bye — a drained subscriber misses nothing it was owed.
        flushers = []
        for conn in list(self._connections):
            if conn.role == ROLE_SUBSCRIBER and not conn.closed:
                goodbye = [
                    bye_frame(SVC_DRAINING, "server drained cleanly"),
                    _CLOSE,
                ]
                for frame in goodbye:
                    try:
                        await asyncio.wait_for(
                            conn.queue.put(frame), config.drain_grace
                        )
                    except TimeoutError:
                        # writer wedged on a dead client: cut it
                        conn.abort()
                        break
                if conn.writer_task is not None:
                    flushers.append(conn.writer_task)
        if flushers:
            await asyncio.wait(flushers, timeout=config.drain_grace)
        if self._housekeeper is not None:
            self._housekeeper.cancel()
        for conn in list(self._connections):
            if not conn.closed:
                conn.closed = True
                conn.writer.close()
        if self.wal is not None:
            try:
                self.wal.close()
            except WalError:  # pragma: no cover - already closed
                pass
        self._done.set()

    # ------------------------------------------------------------------

    def _cleanup_connection(self, conn: _Connection) -> None:
        if conn.role == ROLE_PRODUCER and conn.partial:
            # died mid-document: the document never reached the engine
            self.stats.partial_documents += 1
            conn.partial = []
        if conn.role == ROLE_SUBSCRIBER and conn.session is not None:
            # a durable session outlives its connection: queries keep
            # running, matches keep accruing in the WAL
            self._detach_session_conn(conn)
        elif conn.role == ROLE_SUBSCRIBER and conn.queries:
            # a departed subscriber is a clean close, not a failure
            assert self.pump is not None
            for engine_id in list(conn.queries.values()):
                self._release_query(conn, engine_id, degraded=False)
                self.pump.close(
                    engine_id,
                    status="closed",
                    code=None,
                    reason="subscriber disconnected",
                )
                try:
                    self.engine.remove_query(engine_id)
                except ReproError:
                    pass
            conn.queries.clear()
        if conn.queue is not None:
            # Free any engine task blocked on a put to this dead queue
            # (its route is gone, so later matches already skip it).
            while not conn.queue.empty():
                conn.queue.get_nowait()
            try:
                conn.queue.put_nowait(_CLOSE)
            except asyncio.QueueFull:  # pragma: no cover - queue just cleared
                pass
            if conn.writer_task is not None and conn.writer_task.done() is False:
                # a wedged writer (dead peer) must not outlive the conn
                if conn.closed:
                    conn.writer_task.cancel()
        conn.closed = True
        self._connections.discard(conn)
        if not conn.writer.is_closing():
            conn.writer.close()


async def run_service(
    config: ServiceConfig,
    install_signal_handlers: bool = True,
    ready: "asyncio.Event | None" = None,
) -> SpexService:
    """Start a service, serve until drained, return it for inspection.

    With ``install_signal_handlers`` the process's ``SIGTERM``/``SIGINT``
    trigger :meth:`SpexService.request_drain` — the graceful path the
    CLI and the chaos harness exercise.  ``ready`` (if given) is set
    once the listener is bound, for in-process test orchestration.
    """
    service = SpexService(config)
    await service.start()
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, service.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    if ready is not None:
        ready.set()
    await service.serve_until_done()
    return service
