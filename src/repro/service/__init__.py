"""Async streaming service frontend (``spex serve --listen``).

The network face of the SDI scenario: producers push XML event streams
in over long-lived TCP connections, subscribers register rpeq queries
and receive match frames — with the serving layer's bulkheads,
breakers, admission control and deadlines applied per wire query, plus
the transport-level robustness only a server needs (backpressure,
overflow policies, clocked timeouts, heartbeats, graceful drain).

Layering:

* :mod:`repro.service.protocol` — transport-agnostic NDJSON frame codec
  and code vocabulary;
* :mod:`repro.service.server` — the asyncio TCP service around one
  :class:`~repro.core.multiquery.ServePump`;
* :mod:`repro.service.client` — thin asyncio producer/subscriber
  clients;
* :mod:`repro.service.loadgen` — load harness measuring p50/p99 match
  latency and sustained ev/s, with seeded chaos modes;
* :mod:`repro.service.wal` — write-ahead match log backing durable
  sessions and exactly-once-observed resume;
* :mod:`repro.service.supervisor` — process supervisor restarting a
  crashed server with ``--resume`` under seeded backoff.
"""

from .client import ProducerClient, ServiceConnection, SubscriberClient
from .loadgen import LoadConfig, LoadReport, SubscriberResult, percentile, run_load
from .protocol import (
    MAX_FRAME_BYTES,
    OVERFLOW_BLOCK,
    OVERFLOW_DISCONNECT,
    OVERFLOW_POLICIES,
    OVERFLOW_SHED_OLDEST,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .server import ServiceConfig, ServiceStats, SpexService, run_service
from .supervisor import (
    ServiceSupervisor,
    ServiceSupervisorConfig,
    ServiceSupervisorError,
)
from .wal import SessionRecovery, WalError, WalRecovery, WriteAheadLog

__all__ = [
    "MAX_FRAME_BYTES",
    "OVERFLOW_BLOCK",
    "OVERFLOW_DISCONNECT",
    "OVERFLOW_POLICIES",
    "OVERFLOW_SHED_OLDEST",
    "PROTOCOL_VERSION",
    "LoadConfig",
    "LoadReport",
    "ProducerClient",
    "ProtocolError",
    "ServiceConfig",
    "ServiceConnection",
    "ServiceStats",
    "ServiceSupervisor",
    "ServiceSupervisorConfig",
    "ServiceSupervisorError",
    "SessionRecovery",
    "SpexService",
    "SubscriberClient",
    "SubscriberResult",
    "WalError",
    "WalRecovery",
    "WriteAheadLog",
    "decode_frame",
    "encode_frame",
    "percentile",
    "run_load",
    "run_service",
]
