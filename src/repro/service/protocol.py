"""Wire protocol of the streaming service frontend.

The service speaks *newline-delimited JSON frames* — one JSON object per
line — over any byte transport.  This module is deliberately
transport-agnostic: it knows how to encode, decode and validate frames,
but never touches a socket, so an HTTP/WebSocket adapter can reuse it
unchanged.  The asyncio TCP binding lives in
:mod:`repro.service.server`.

Two client roles exist, declared in the ``hello`` handshake frame:

* **producers** push XML event streams in (``events`` frames carrying
  batches in the checkpoint event codec of
  :func:`repro.xmlstream.events.event_to_obj`);
* **subscribers** register rpeq queries (``subscribe``) and receive
  ``match`` frames over a long-lived connection.

Server→client outcome frames reuse the serving layer's code vocabulary
(``ADMIT000``–``ADMIT004`` admission decisions, ``SHED001`` load
shedding, ``DEADLINE_*`` expiries) so a wire client sees exactly the
codes an embedded :meth:`MultiQueryEngine.serve
<repro.core.multiquery.MultiQueryEngine.serve>` caller would; genuinely
transport-level conditions get their own ``SVC``-prefixed codes below.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from ..core.output_tx import Match
from ..errors import ReproError
from ..xmlstream.events import Event, event_from_obj, event_to_obj

#: Protocol revision sent in the ``welcome`` frame.  Revision 2 adds
#: durable sessions: session tokens, per-subscription match sequence
#: numbers, ``resume``/``ack`` client frames and ``ingested`` producer
#: acknowledgements.  Revision-1 clients interoperate unchanged — every
#: addition is an optional field or a frame only durable sessions see.
PROTOCOL_VERSION = 2

#: Hard ceiling on one encoded frame (defense against a client feeding
#: an unbounded line; producers must batch below this).
MAX_FRAME_BYTES = 1_048_576

# ----------------------------------------------------------------------
# transport-level condition codes (the serving layer's ADMIT/SHED/
# DEADLINE codes pass through verbatim; these cover what only the wire
# can get wrong)

SVC_MALFORMED_FRAME = "SVC001"  #: undecodable / oversized / non-object line
SVC_PROTOCOL = "SVC002"  #: frame invalid for the connection's role or state
SVC_HANDSHAKE_TIMEOUT = "SVC003"  #: no ``hello`` within the handshake window
SVC_IDLE_TIMEOUT = "SVC004"  #: no traffic within the idle window
SVC_WRITE_TIMEOUT = "SVC005"  #: subscriber would not accept writes in time
SVC_OVERFLOW = "SVC006"  #: output queue overflowed under the disconnect policy
SVC_DRAINING = "SVC007"  #: server is draining (SIGTERM); no new work accepted
SVC_BAD_DOCUMENT = "SVC008"  #: producer document failed well-formedness
SVC_TENANT_BUDGET = "SVC009"  #: tenant exceeded its subscription budget
SVC_SESSION_UNKNOWN = "SVC010"  #: resume token matches no live session
SVC_SESSION_EXPIRED = "SVC011"  #: session aged past the retention window

#: Per-subscriber output-queue overflow policies.
OVERFLOW_BLOCK = "block"  #: block the producer side (end-to-end backpressure)
OVERFLOW_SHED_OLDEST = "shed_oldest"  #: drop oldest matches, notify SHED001
OVERFLOW_DISCONNECT = "disconnect"  #: force-close the slow subscriber
OVERFLOW_POLICIES = (OVERFLOW_BLOCK, OVERFLOW_SHED_OLDEST, OVERFLOW_DISCONNECT)

#: Client roles.
ROLE_PRODUCER = "producer"
ROLE_SUBSCRIBER = "subscriber"
ROLES = (ROLE_PRODUCER, ROLE_SUBSCRIBER)


class ProtocolError(ReproError):
    """A frame violated the wire protocol.

    ``code`` is one of the ``SVC*`` constants; the server answers with
    an ``error`` frame carrying the same code and, for fatal
    violations, closes the connection.
    """

    def __init__(self, message: str, code: str = SVC_PROTOCOL) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


# ----------------------------------------------------------------------
# encode / decode


def encode_frame(frame: Mapping) -> bytes:
    """One frame → one compact JSON line (the only wire representation)."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes, max_bytes: int = MAX_FRAME_BYTES) -> dict:
    """One received line → frame dict, enforcing size and shape.

    Raises:
        ProtocolError: the line is oversized, not valid JSON, not a JSON
            object, or missing the ``type`` key (code ``SVC001``).
    """
    if len(line) > max_bytes:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds limit {max_bytes}",
            code=SVC_MALFORMED_FRAME,
        )
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            f"undecodable frame: {exc}", code=SVC_MALFORMED_FRAME
        ) from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError(
            "frame must be a JSON object with a string 'type'",
            code=SVC_MALFORMED_FRAME,
        )
    return frame


# ----------------------------------------------------------------------
# client → server frames


def hello_frame(
    role: str,
    tenant: str = "default",
    overflow: str | None = None,
    queue_size: int | None = None,
    durable: bool = False,
    session: str | None = None,
) -> dict:
    """Handshake: declare the connection's role and tenant.

    Subscribers may also pick their output-queue ``overflow`` policy and
    ``queue_size`` here (per connection — all of a subscriber's queries
    share one ordered output queue).  ``durable=True`` asks for a
    durable session: the server issues a session token in the
    ``welcome``, stamps every match with a monotone per-subscription
    ``seq``, and keeps the session's subscriptions running across
    disconnects.  ``session`` presents a previously issued token to
    reattach to that session (follow the welcome with a ``resume``
    frame carrying the observed sequence floors).
    """
    if role not in ROLES:
        raise ProtocolError(f"unknown role {role!r} (expected one of {ROLES})")
    if overflow is not None and overflow not in OVERFLOW_POLICIES:
        raise ProtocolError(
            f"unknown overflow policy {overflow!r} "
            f"(expected one of {OVERFLOW_POLICIES})"
        )
    frame = {
        "type": "hello",
        "role": role,
        "tenant": tenant,
        "version": PROTOCOL_VERSION,
    }
    if overflow is not None:
        frame["overflow"] = overflow
    if queue_size is not None:
        frame["queue_size"] = queue_size
    if durable or session is not None:
        frame["durable"] = True
    if session is not None:
        frame["session"] = session
    return frame


def subscribe_frame(query_id: str, query: str) -> dict:
    """Register one rpeq query on a subscriber connection."""
    return {"type": "subscribe", "query_id": query_id, "query": query}


def unsubscribe_frame(query_id: str) -> dict:
    """Withdraw one query (a clean, non-degraded departure)."""
    return {"type": "unsubscribe", "query_id": query_id}


def events_frame(events: Iterable[Event]) -> dict:
    """Producer batch: events in the checkpoint codec."""
    return {"type": "events", "events": [event_to_obj(event) for event in events]}


def events_from_frame(frame: Mapping) -> list[Event]:
    """Decode a producer batch, mapping codec failures to ``SVC001``."""
    payload = frame.get("events")
    if not isinstance(payload, list):
        raise ProtocolError(
            "'events' frame must carry a list", code=SVC_MALFORMED_FRAME
        )
    try:
        return [event_from_obj(obj) for obj in payload]
    except (ValueError, TypeError, IndexError, KeyError) as exc:
        raise ProtocolError(
            f"undecodable event in batch: {exc}", code=SVC_MALFORMED_FRAME
        ) from exc


def ping_frame() -> dict:
    return {"type": "ping"}


def resume_frame(acked: Mapping[str, int]) -> dict:
    """Reattach a durable session's delivery after a reconnect.

    ``acked`` maps each of the session's query ids to the highest
    sequence number the client *observed* (not necessarily acked on the
    wire before the disconnect).  The server replays every retained
    match above that floor, answers with ``resumed``, and only then
    resumes live delivery — so each match is observed exactly once.
    """
    return {"type": "resume", "acked": {str(k): int(v) for k, v in acked.items()}}


def ack_frame(query_id: str, seq: int) -> dict:
    """Advance one subscription's durable delivery floor.

    Acks let the server prune the write-ahead log's replay tail; they
    are cumulative (acking ``seq`` covers everything at or below it)
    and purely advisory for flow — delivery never waits on them.
    """
    return {"type": "ack", "query_id": query_id, "seq": seq}


# ----------------------------------------------------------------------
# server → client frames


def welcome_frame(
    role: str,
    session: str | None = None,
    documents: int | None = None,
    replay_from: int | None = None,
) -> dict:
    """Handshake acknowledgement.

    Durable subscribers receive their ``session`` token here.  Producers
    on a resumed server receive ``documents`` (the committed document
    count) and ``replay_from`` — the 1-based count of the first document
    the engine needs re-sent (its state trails the log by up to one
    checkpoint interval; re-sent documents the log already committed are
    rebuilt silently, never re-delivered).
    """
    frame = {"type": "welcome", "role": role, "version": PROTOCOL_VERSION}
    if session is not None:
        frame["session"] = session
    if documents is not None:
        frame["documents"] = documents
    if replay_from is not None:
        frame["replay_from"] = replay_from
    return frame


def resumed_frame(queries: Mapping[str, int], documents: int) -> dict:
    """Answer to ``resume``: replay is complete, live delivery follows.

    ``queries`` maps each restored query id to the last sequence number
    on or below which the client now holds everything (its resume floor
    plus the replayed tail); ``documents`` is the committed document
    count at the reattach point.
    """
    return {
        "type": "resumed",
        "queries": {str(k): int(v) for k, v in queries.items()},
        "documents": documents,
    }


def ingested_frame(documents: int, durable_documents: int) -> dict:
    """Producer acknowledgement: ``documents`` committed so far, of
    which ``durable_documents`` are fsync-covered in the write-ahead
    log (the fsync batching cadence makes these differ transiently)."""
    return {
        "type": "ingested",
        "documents": documents,
        "durable": durable_documents,
    }


def subscribed_frame(
    query_id: str, status: str, code: str | None, reason: str | None
) -> dict:
    """Admission verdict for one ``subscribe`` (status admit/degraded)."""
    return {
        "type": "subscribed",
        "query_id": query_id,
        "status": status,
        "code": code,
        "reason": reason,
    }


def rejected_frame(query_id: str, code: str, reason: str) -> dict:
    """Admission (or tenant-budget) rejection of one ``subscribe``."""
    return {"type": "rejected", "query_id": query_id, "code": code, "reason": reason}


def match_to_obj(match: Match) -> dict:
    """Wire form of one :class:`~repro.core.output_tx.Match`."""
    obj: dict = {"position": match.position, "label": match.label}
    if match.events is not None:
        obj["events"] = [event_to_obj(event) for event in match.events]
    return obj


def match_from_obj(obj: Mapping) -> Match:
    """Inverse of :func:`match_to_obj`."""
    events = obj.get("events")
    return Match(
        position=int(obj["position"]),
        label=str(obj["label"]),
        events=tuple(event_from_obj(item) for item in events)
        if events is not None
        else None,
    )


def match_frame(
    query_id: str, match: Match, document: int, seq: int | None = None
) -> dict:
    """One delivered match; ``document`` is the global document index
    (0-based), which load harnesses use for client-side latency.

    On durable sessions every match additionally carries ``seq`` — the
    subscription's monotone, gap-free sequence number, the unit of the
    ack/resume contract."""
    frame = {
        "type": "match",
        "query_id": query_id,
        "document": document,
        "match": match_to_obj(match),
    }
    if seq is not None:
        frame["seq"] = seq
    return frame


def notice_frame(code: str, reason: str, query_id: str | None = None) -> dict:
    """Non-fatal condition (shed matches, deadline detach, quarantine)."""
    frame = {"type": "notice", "code": code, "reason": reason}
    if query_id is not None:
        frame["query_id"] = query_id
    return frame


def heartbeat_frame(documents: int) -> dict:
    """Liveness beacon; ``documents`` is the engine's document count."""
    return {"type": "heartbeat", "documents": documents}


def pong_frame() -> dict:
    return {"type": "pong"}


def error_frame(code: str, reason: str) -> dict:
    """Protocol-level complaint (the connection may stay open)."""
    return {"type": "error", "code": code, "reason": reason}


def bye_frame(code: str, reason: str) -> dict:
    """Server-initiated close; always the last frame on the connection."""
    return {"type": "bye", "code": code, "reason": reason}
