"""Load harness for the streaming service: SLO numbers and chaos fuel.

:func:`run_load` spins up N concurrent subscriber connections and one
bursty producer against a service (an in-process one by default), pushes
a seeded multi-document stream through, and reports client-side p50/p99
match latency plus sustained event throughput — the numbers the
``service`` bench workload records as a gated series.

Latency is measured entirely client-side: the producer stamps
``time.monotonic()`` as it writes each document and every ``match``
frame carries the engine's global document index, so
``receive_time - send_time[document]`` needs no server clock echo and
includes every queue the match crossed (socket in, engine, subscriber
queue, socket out).

Chaos modes (all seeded, all reproducible):

* ``slow_subscribers`` — clients that sleep between frame reads,
  exercising the overflow policy and, under ``block``, the end-to-end
  backpressure chain;
* ``disconnect_subscribers`` — clients that cut the TCP connection
  mid-stream without unsubscribing;
* ``abusive_producer`` — a second producer connection speaking
  guaranteed-malformed documents and protocol junk, all of which the
  server must reject *without* shifting the document indices the honest
  producer's stream establishes (document-atomic ingestion is exactly
  what makes this hold);
* ``crash_reconnect_subscribers`` — durable-session clients that cut
  their TCP connection at a seeded point mid-stream, reconnect with
  their session token, and ``resume`` from their observed sequence
  floors.  Each reports its *recovery time* (reconnect start → terminal
  ``resumed`` frame), the informational series the ``service`` bench
  workload records; requires a server started with a write-ahead log.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..workloads.generators import random_tree, sdi_subscriptions
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)
from .client import ProducerClient, SubscriberClient
from .server import ServiceConfig, SpexService

#: Label vocabulary shared by the document generator and the
#: subscription family, so a seeded load actually produces matches.
LOAD_LABELS = ("country", "province", "city", "name", "population", "religions")


@dataclass(frozen=True)
class LoadConfig:
    """One load scenario (all randomness derives from ``seed``)."""

    subscribers: int = 32
    queries_per_subscriber: int = 1
    documents: int = 40
    doc_elements: int = 24
    burst: int = 4
    inter_burst_pause: float = 0.0
    seed: int = 7
    tenant: str = "load"
    overflow: str | None = None
    queue_size: int | None = None
    slow_subscribers: int = 0
    slow_delay: float = 0.002
    disconnect_subscribers: int = 0
    disconnect_after_matches: int = 3
    abusive_producer: bool = False
    abusive_documents: int = 5
    crash_reconnect_subscribers: int = 0
    crash_after_matches: int = 4

    def __post_init__(self) -> None:
        if self.subscribers < 1 or self.documents < 1:
            raise ValueError("subscribers and documents must be positive")
        misbehaving = (
            self.slow_subscribers
            + self.disconnect_subscribers
            + self.crash_reconnect_subscribers
        )
        if misbehaving > self.subscribers:
            raise ValueError("more misbehaving subscribers than subscribers")
        if self.crash_after_matches < 1:
            raise ValueError("crash_after_matches must be positive")


@dataclass
class SubscriberResult:
    """What one subscriber connection observed."""

    index: int
    queries: dict[str, str] = field(default_factory=dict)
    #: delivered matches in arrival order: (query_id, document, position, label)
    matches: list[tuple[str, int, int, str]] = field(default_factory=list)
    #: client-side seconds from document send to match receipt
    latencies: list[float] = field(default_factory=list)
    heartbeats: int = 0
    notices: list[dict] = field(default_factory=list)
    rejected: list[dict] = field(default_factory=list)
    disconnected: bool = False
    bye_code: str | None = None
    #: durable-session crash/reconnect cycles this subscriber performed
    reconnects: int = 0
    #: seconds from reconnect start to the terminal ``resumed`` frame
    recovery_times: list[float] = field(default_factory=list)
    #: match sequence numbers in arrival order (durable sessions only)
    seqs: list[int] = field(default_factory=list)


@dataclass
class LoadReport:
    """Aggregate outcome of one :func:`run_load` run."""

    subscribers: list[SubscriberResult]
    documents_sent: int
    events_sent: int
    duration: float
    abusive_rejections: int = 0
    drained_cleanly: bool = False

    @property
    def latencies(self) -> list[float]:
        out: list[float] = []
        for sub in self.subscribers:
            out.extend(sub.latencies)
        return out

    @property
    def total_matches(self) -> int:
        return sum(len(sub.matches) for sub in self.subscribers)

    @property
    def p50_latency(self) -> float:
        return percentile(self.latencies, 50.0)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies, 99.0)

    @property
    def events_per_second(self) -> float:
        return self.events_sent / self.duration if self.duration > 0 else 0.0

    @property
    def recovery_times(self) -> list[float]:
        out: list[float] = []
        for sub in self.subscribers:
            out.extend(sub.recovery_times)
        return out

    @property
    def reconnects(self) -> int:
        return sum(sub.reconnects for sub in self.subscribers)

    @property
    def p50_recovery(self) -> float:
        return percentile(self.recovery_times, 50.0)

    @property
    def max_recovery(self) -> float:
        times = self.recovery_times
        return max(times) if times else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not q >= 0.0 or not q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


def load_subscriptions(config: LoadConfig) -> list[list[tuple[str, str]]]:
    """Per-subscriber ``(query_id, query)`` lists, deterministic in seed."""
    total = config.subscribers * config.queries_per_subscriber
    corpus = list(sdi_subscriptions(total, seed=config.seed).items())
    per = config.queries_per_subscriber
    return [corpus[i * per : (i + 1) * per] for i in range(config.subscribers)]


def load_documents(config: LoadConfig) -> list[list[Event]]:
    """The seeded multi-document stream the producer pushes."""
    return [
        list(
            random_tree(
                seed=config.seed * 1_000_003 + index,
                elements=config.doc_elements,
                labels=LOAD_LABELS,
            )
        )
        for index in range(config.documents)
    ]


def _malformed_documents(seed: int, count: int) -> list[list[Event]]:
    """Documents that can never pass well-formedness (abusive producer).

    Built from templates that are malformed *by construction* — unlike
    :meth:`FaultInjector.corrupt`, which sometimes leaves a valid
    stream, these must all be rejected so the honest stream's document
    indices stay untouched.
    """
    import random

    rng = random.Random(seed)
    out: list[list[Event]] = []
    for _ in range(count):
        a, b = rng.choice(LOAD_LABELS), rng.choice(LOAD_LABELS)
        template = rng.randrange(3)
        if template == 0:  # mismatched end tag
            doc = [
                StartDocument(),
                StartElement(a),
                EndElement(a + "x"),
                EndDocument(),
            ]
        elif template == 1:  # unclosed element at </$>
            doc = [StartDocument(), StartElement(a), StartElement(b), EndDocument()]
        else:  # stray end tag
            doc = [StartDocument(), EndElement(b), EndDocument()]
        out.append(doc)
    return out


async def _subscriber_task(
    host: str,
    port: int,
    index: int,
    subscriptions: list[tuple[str, str]],
    config: LoadConfig,
    send_times: dict[int, float],
    ready: asyncio.Barrier,
) -> SubscriberResult:
    result = SubscriberResult(index=index, queries=dict(subscriptions))
    slow = index < config.slow_subscribers
    # disconnectors are taken from the tail so slow/disconnect don't overlap
    disconnect = index >= config.subscribers - config.disconnect_subscribers
    client = await SubscriberClient.connect(
        host,
        port,
        tenant=config.tenant,
        overflow=config.overflow,
        queue_size=config.queue_size,
    )
    for query_id, query in subscriptions:
        verdict = await client.subscribe(query_id, query)
        if verdict.get("type") == "rejected":
            result.rejected.append(verdict)
    await ready.wait()
    try:
        async for frame in client.frames():
            kind = frame.get("type")
            if kind == "match":
                document = int(frame["document"])
                match = frame["match"]
                result.matches.append(
                    (
                        str(frame["query_id"]),
                        document,
                        int(match["position"]),
                        str(match["label"]),
                    )
                )
                sent = send_times.get(document)
                if sent is not None:
                    result.latencies.append(time.monotonic() - sent)
                if (
                    disconnect
                    and len(result.matches) >= config.disconnect_after_matches
                ):
                    result.disconnected = True
                    await client.close()
                    return result
            elif kind == "heartbeat":
                result.heartbeats += 1
            elif kind == "notice":
                result.notices.append(frame)
            elif kind == "bye":
                result.bye_code = frame.get("code")
            if slow:
                await asyncio.sleep(config.slow_delay)
    except (ConnectionError, asyncio.IncompleteReadError):
        result.disconnected = True
    finally:
        await client.close()
    return result


async def _consume_frames(
    client: SubscriberClient,
    result: SubscriberResult,
    send_times: dict[int, float],
    floors: dict[str, int],
    stop_after: int | None = None,
) -> str:
    """Drive one frame loop; returns ``"crash"``/``"bye"``/``"eof"``."""
    async for frame in client.frames():
        kind = frame.get("type")
        if kind == "match":
            document = int(frame["document"])
            match = frame["match"]
            query_id = str(frame["query_id"])
            result.matches.append(
                (
                    query_id,
                    document,
                    int(match["position"]),
                    str(match["label"]),
                )
            )
            seq = frame.get("seq")
            if seq is not None:
                result.seqs.append(int(seq))
                floors[query_id] = max(floors.get(query_id, 0), int(seq))
            sent = send_times.get(document)
            if sent is not None:
                result.latencies.append(time.monotonic() - sent)
            if stop_after is not None and len(result.matches) >= stop_after:
                return "crash"
        elif kind == "heartbeat":
            result.heartbeats += 1
        elif kind == "notice":
            result.notices.append(frame)
        elif kind == "bye":
            result.bye_code = frame.get("code")
            return "bye"
    return "eof"


async def _crash_reconnect_task(
    host: str,
    port: int,
    index: int,
    subscriptions: list[tuple[str, str]],
    config: LoadConfig,
    send_times: dict[int, float],
    ready: asyncio.Barrier,
    settled: asyncio.Event,
) -> SubscriberResult:
    """A durable-session subscriber that crashes and resumes, seeded.

    The connection is cut (no unsubscribe, no goodbye) after a seeded
    number of matches; the client then reconnects with its session
    token, sends ``resume`` with its observed floors, and keeps
    consuming.  ``recovery_times`` records reconnect→``resumed``
    wall-clock — the recovery-time series the bench reports.
    ``settled`` is set once the crash/resume cycle is over (or was
    never going to happen) so the harness knows it may drain.
    """
    import random

    result = SubscriberResult(index=index, queries=dict(subscriptions))
    rng = random.Random(config.seed * 7919 + index)
    crash_after = 1 + rng.randrange(config.crash_after_matches)
    client = await SubscriberClient.connect(
        host,
        port,
        tenant=config.tenant,
        overflow=config.overflow,
        queue_size=config.queue_size,
        durable=True,
    )
    token = client.session
    floors: dict[str, int] = {}
    for query_id, query in subscriptions:
        verdict = await client.subscribe(query_id, query)
        if verdict.get("type") == "rejected":
            result.rejected.append(verdict)
    await ready.wait()
    try:
        outcome = await _consume_frames(
            client, result, send_times, floors, stop_after=crash_after
        )
        if outcome == "crash" and token is not None:
            await client.close()
            await asyncio.sleep(rng.uniform(0.005, 0.02))
            restarted = time.monotonic()
            # The server may not have seen our abrupt close yet, in
            # which case the session still looks attached and the
            # resume hello is refused — retry as a real client would.
            for attempt in range(25):
                try:
                    client = await SubscriberClient.connect(
                        host,
                        port,
                        tenant=config.tenant,
                        overflow=config.overflow,
                        queue_size=config.queue_size,
                        session=token,
                    )
                    break
                except ConnectionError:
                    await asyncio.sleep(0.01 * (attempt + 1))
            else:
                result.disconnected = True
                return result
            await client.resume(floors)
            result.recovery_times.append(time.monotonic() - restarted)
            result.reconnects += 1
            settled.set()  # before the tail consume: it ends at drain
            await _consume_frames(client, result, send_times, floors)
    except (ConnectionError, asyncio.IncompleteReadError):
        result.disconnected = True
    finally:
        settled.set()
        await client.close()
    return result


async def _producer_task(
    host: str,
    port: int,
    config: LoadConfig,
    documents: list[list[Event]],
    send_times: dict[int, float],
    ready: asyncio.Barrier,
) -> int:
    await ready.wait()
    producer = await ProducerClient.connect(host, port, tenant=config.tenant)
    events_sent = 0
    try:
        for index, document in enumerate(documents):
            send_times[index] = time.monotonic()
            await producer.send_events(document)
            events_sent += len(document)
            if config.inter_burst_pause and (index + 1) % config.burst == 0:
                await asyncio.sleep(config.inter_burst_pause)
    finally:
        await producer.close()
    return events_sent


async def _abusive_producer_task(
    host: str, port: int, config: LoadConfig, ready: asyncio.Barrier
) -> int:
    """Feed garbage; count the server's SVC008 rejections."""
    await ready.wait()
    producer = await ProducerClient.connect(host, port, tenant="abuse")
    rejections = 0
    try:
        # protocol junk first: an unknown frame type must only earn an error
        await producer.send_raw({"type": "mystery", "payload": "?"})
        for document in _malformed_documents(
            config.seed + 1, config.abusive_documents
        ):
            await producer.send_events(document)
        # count error frames without blocking forever
        while True:
            try:
                frame = await asyncio.wait_for(producer.conn.recv(), 0.25)
            except (TimeoutError, ConnectionError):
                break
            if frame is None:
                break
            if frame.get("type") == "error":
                rejections += 1
    finally:
        await producer.close()
    return rejections


async def run_load_async(
    config: LoadConfig,
    service_config: ServiceConfig | None = None,
    host: str | None = None,
    port: int | None = None,
    settle: float = 10.0,
) -> tuple[LoadReport, SpexService | None]:
    """Run one load scenario; returns the report and the in-process
    service (``None`` when ``host``/``port`` pointed at an external one).

    With no explicit ``host``/``port`` an in-process
    :class:`~repro.service.server.SpexService` is started, drained after
    the producer finishes (flushing all committed matches), and returned
    for white-box assertions (serving report, stats, checkpoint).
    """
    service: SpexService | None = None
    if host is None or port is None:
        service = SpexService(service_config)
        bound_host, bound_port = await service.start()
    else:
        bound_host, bound_port = host, port
    documents = load_documents(config)
    subscriptions = load_subscriptions(config)
    send_times: dict[int, float] = {}
    parties = 1 + config.subscribers + (1 if config.abusive_producer else 0)
    ready = asyncio.Barrier(parties)
    started = time.monotonic()
    crash_lo = config.slow_subscribers
    crash_hi = crash_lo + config.crash_reconnect_subscribers
    crash_settled: list[asyncio.Event] = []
    tasks: list[asyncio.Task] = []
    for index in range(config.subscribers):
        if crash_lo <= index < crash_hi:
            settled = asyncio.Event()
            crash_settled.append(settled)
            coro = _crash_reconnect_task(
                bound_host,
                bound_port,
                index,
                subscriptions[index],
                config,
                send_times,
                ready,
                settled,
            )
        else:
            coro = _subscriber_task(
                bound_host,
                bound_port,
                index,
                subscriptions[index],
                config,
                send_times,
                ready,
            )
        tasks.append(asyncio.create_task(coro))
    producer = asyncio.create_task(
        _producer_task(
            bound_host, bound_port, config, documents, send_times, ready
        )
    )
    abusive = (
        asyncio.create_task(
            _abusive_producer_task(bound_host, bound_port, config, ready)
        )
        if config.abusive_producer
        else None
    )
    events_sent = await producer
    abusive_rejections = await abusive if abusive is not None else 0
    if crash_settled:
        # hold the drain until every chaos client is through its
        # crash/resume cycle — the listener must still be up for the
        # reconnects (a sparse query that never crashes falls through
        # on the timeout instead of stalling the run)
        try:
            await asyncio.wait_for(
                asyncio.gather(*(event.wait() for event in crash_settled)),
                timeout=settle,
            )
        except asyncio.TimeoutError:
            pass
    drained = False
    if service is not None:
        # graceful drain flushes every committed match, then byes the
        # subscribers — which is what ends their frame loops
        await service.stop()
        results = await asyncio.gather(*tasks)
        drained = True
    else:
        # external server: nobody drains for us, so bound the wait and
        # cancel stragglers (their partial results are lost, which an
        # external-mode caller accepts by construction)
        done, pending = await asyncio.wait(tasks, timeout=settle)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        results = [task.result() for task in tasks if task in done]
    duration = time.monotonic() - started
    report = LoadReport(
        subscribers=list(results),
        documents_sent=len(documents),
        events_sent=events_sent,
        duration=duration,
        abusive_rejections=abusive_rejections,
        drained_cleanly=drained,
    )
    return report, service


def run_load(
    config: LoadConfig | None = None,
    service_config: ServiceConfig | None = None,
    host: str | None = None,
    port: int | None = None,
) -> tuple[LoadReport, SpexService | None]:
    """Synchronous front door for benches and tests."""
    return asyncio.run(
        run_load_async(
            config if config is not None else LoadConfig(),
            service_config,
            host,
            port,
        )
    )
