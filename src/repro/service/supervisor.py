"""Process supervision for the streaming service: crash → resume, unattended.

:class:`ServiceSupervisor` wraps ``spex serve --listen`` in a child
process and keeps it alive: when the server dies — SIGKILL, OOM, a bug —
the supervisor relaunches it with ``--resume`` under the same seeded
:class:`~repro.core.supervisor.ExponentialBackoff` schedule the
in-process supervisor and the shard coordinator use, so restart storms
are damped and schedules are reproducible.  Combined with the
write-ahead log (:mod:`repro.service.wal`) and the service-native resume
path of :class:`~repro.service.server.SpexService`, the observable
contract is: a SIGKILL at *any* event offset, followed by the
supervised restart and the clients' session resumes, yields exactly the
match streams of one uninterrupted pass.

The fault domains nest strictly::

    supervisor process          (this module: restart policy only)
      └── server process        (spex serve --listen: sessions, pump)
            └── write-ahead log (the only state a crash may not erase)

The supervisor holds no stream state at all — everything it needs to
restore a server is on disk, which is what makes the SIGKILL test
honest: nothing survives in memory between generations.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

from ..core.supervisor import ExponentialBackoff
from ..errors import ReproError

#: The stdout line the server prints once its listener is bound.
_BANNER = "-- listening on "


class ServiceSupervisorError(ReproError):
    """The supervised server could not be started (or never banners)."""


@dataclass
class ServiceSupervisorConfig:
    """Restart policy for a supervised ``spex serve --listen`` process.

    Attributes:
        checkpoint_path / wal_path: the durable state the server writes
            and every restart resumes from.
        host / port: bind address handed to ``--listen`` (port 0 binds
            an ephemeral port on *every* generation; read the current
            one from :attr:`ServiceSupervisor.address`).
        max_restarts: give up after this many restarts (the crash is
            systemic, not transient).
        backoff: seeded restart-delay schedule.
        startup_timeout: seconds a generation gets to print its
            ``-- listening on`` banner before the watchdog declares the
            start stalled, kills it, and counts a restart.
        extra_args: appended to the server command line (e.g.
            ``["--checkpoint-every-docs", "4"]``).
        seed: seeds :attr:`backoff` when one is not given.
    """

    checkpoint_path: str
    wal_path: str
    host: str = "127.0.0.1"
    port: int = 0
    max_restarts: int = 5
    backoff: ExponentialBackoff | None = None
    startup_timeout: float = 30.0
    extra_args: list[str] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.startup_timeout <= 0:
            raise ValueError("startup_timeout must be positive")
        if self.backoff is None:
            self.backoff = ExponentialBackoff(
                initial=0.05, maximum=2.0, seed=self.seed
            )


class ServiceSupervisor:
    """Keep one ``spex serve --listen`` alive across crashes.

    Usage::

        sup = ServiceSupervisor(ServiceSupervisorConfig(
            checkpoint_path="state.ckpt", wal_path="state.wal",
        ))
        host, port = sup.start()     # first generation (fresh, no --resume)
        ...                          # clients connect, producer streams
        sup.kill()                   # chaos: SIGKILL the server
        host, port = sup.wait_for_server()   # restarted with --resume
        ...
        sup.stop()                   # graceful SIGTERM drain, then join

    The monitor thread notices exits on its own — :meth:`kill` is just
    the test hook; a real crash takes the same path.
    """

    def __init__(self, config: ServiceSupervisorConfig) -> None:
        self.config = config
        self.restarts = 0
        self.generations = 0
        self.address: tuple[str, int] | None = None
        self._process: subprocess.Popen[str] | None = None
        self._spawned_at = 0.0
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._ready = threading.Event()
        self._failed: str | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> tuple[str, int]:
        """Launch the first generation and block until it listens."""
        if self._process is not None:
            raise ServiceSupervisorError("supervisor already started")
        self._spawn(resume=False)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="spex-service-supervisor", daemon=True
        )
        self._monitor.start()
        return self.wait_for_server()

    def wait_for_server(self, timeout: float | None = None) -> tuple[str, int]:
        """Block until the current generation is accepting connections."""
        budget = (
            timeout
            if timeout is not None
            else self.config.startup_timeout * (self.config.max_restarts + 1)
        )
        if not self._ready.wait(budget):
            raise ServiceSupervisorError(
                f"server not listening within {budget:.1f}s"
            )
        with self._lock:
            if self._failed is not None:
                raise ServiceSupervisorError(self._failed)
            assert self.address is not None
            return self.address

    def kill(self) -> None:
        """SIGKILL the current server generation (the chaos hook)."""
        with self._lock:
            process = self._process
            self._ready.clear()
        if process is not None and process.poll() is None:
            process.kill()

    def stop(self) -> int:
        """Gracefully drain the server (SIGTERM) and stop supervising.

        Returns the final generation's exit code (0 = clean drain).
        """
        self._stopping.set()
        with self._lock:
            process = self._process
        returncode = 0
        if process is not None:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
            try:
                returncode = process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - wedged
                process.kill()
                returncode = process.wait()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
        return returncode

    @property
    def alive(self) -> bool:
        process = self._process
        return process is not None and process.poll() is None

    # ------------------------------------------------------------------
    # internals

    def _command(self, resume: bool) -> list[str]:
        config = self.config
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--listen",
            f"{config.host}:{config.port}",
            "--checkpoint-file",
            config.checkpoint_path,
            "--wal-file",
            config.wal_path,
        ]
        if resume:
            command.append("--resume")
        command.extend(config.extra_args)
        return command

    def _spawn(self, resume: bool) -> None:
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        with self._lock:
            self._process = subprocess.Popen(
                self._command(resume),
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=env,
            )
            self._spawned_at = time.monotonic()
            self.generations += 1
        banner_thread = threading.Thread(
            target=self._await_banner, args=(self._process,), daemon=True
        )
        banner_thread.start()

    def _await_banner(self, process: "subprocess.Popen[str]") -> None:
        """Parse ``-- listening on HOST:PORT`` off the child's stdout."""
        stdout = process.stdout
        if stdout is None:  # pragma: no cover - PIPE always set
            return
        deadline = time.monotonic() + self.config.startup_timeout
        for line in stdout:
            if line.startswith(_BANNER):
                host, _, port_text = line[len(_BANNER):].strip().rpartition(":")
                try:
                    port = int(port_text)
                except ValueError:  # pragma: no cover - malformed banner
                    break
                with self._lock:
                    if self._process is process:
                        self.address = (host, port)
                        self._ready.set()
                # keep draining stdout so the child never blocks on a
                # full pipe; we are off the hot path here
                for _ in stdout:
                    pass
                return
            if time.monotonic() > deadline:
                break
        # EOF (or stall) without a banner: the monitor loop sees the
        # exit; a stalled-but-alive child is killed so it does.
        if process.poll() is None and time.monotonic() > deadline:
            process.kill()

    def _monitor_loop(self) -> None:
        """Watch the child; relaunch with ``--resume`` until told to stop."""
        assert self.config.backoff is not None
        while not self._stopping.is_set():
            with self._lock:
                process = self._process
                spawned_at = self._spawned_at
            if process is None:  # pragma: no cover - start() precedes
                return
            returncode = process.poll()
            if returncode is None:
                # Stall watchdog: a generation that never banners within
                # its startup budget is killed here and counted as a
                # crash on the next poll.  The banner thread cannot do
                # this alone — it blocks on the stdout read, so its own
                # deadline check only runs when a line actually arrives,
                # never for a child that hangs silently before printing.
                if (
                    not self._ready.is_set()
                    and time.monotonic() - spawned_at
                    > self.config.startup_timeout
                ):
                    process.kill()
                self._stopping.wait(0.05)
                continue
            if self._stopping.is_set():
                return
            self._ready.clear()
            if self.restarts >= self.config.max_restarts:
                with self._lock:
                    self._failed = (
                        f"server exited with {returncode} and the restart "
                        f"budget of {self.config.max_restarts} is spent"
                    )
                    self._ready.set()  # release any wait_for_server
                return
            self.restarts += 1
            delay = self.config.backoff.delay(self.restarts)
            if self._stopping.wait(delay):
                return
            self._spawn(resume=True)
