"""Minimal asyncio clients for the service wire protocol.

These are deliberately thin — a connection, a handful of frame
helpers, and an async frame iterator — so the load harness
(:mod:`repro.service.loadgen`), the chaos tests and the example client
all drive the server through the same code path a third-party client
would implement from the protocol docs.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable, Sequence

from typing import Mapping

from ..xmlstream.events import Event
from .protocol import (
    MAX_FRAME_BYTES,
    ROLE_PRODUCER,
    ROLE_SUBSCRIBER,
    ack_frame,
    decode_frame,
    encode_frame,
    events_frame,
    hello_frame,
    resume_frame,
    subscribe_frame,
    unsubscribe_frame,
)


class ServiceConnection:
    """One NDJSON connection to a :class:`~repro.service.server.SpexService`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        #: durable-session token from the ``welcome`` (``None`` otherwise)
        self.session: str | None = None
        #: the full welcome frame (producers read ``replay_from`` off it)
        self.welcome: dict = {}

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        role: str,
        tenant: str = "default",
        overflow: str | None = None,
        queue_size: int | None = None,
        durable: bool = False,
        session: str | None = None,
    ) -> "ServiceConnection":
        """Connect, send ``hello``, and await the ``welcome``.

        ``durable=True`` asks the server to open a durable session (the
        token lands in :attr:`session`); passing ``session`` reattaches
        an existing one after a disconnect or server restart.
        """
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES + 2
        )
        conn = cls(reader, writer)
        await conn.send(
            hello_frame(
                role,
                tenant,
                overflow=overflow,
                queue_size=queue_size,
                durable=durable,
                session=session,
            )
        )
        welcome = await conn.recv()
        if welcome is None or welcome.get("type") != "welcome":
            raise ConnectionError(f"handshake failed: {welcome!r}")
        conn.welcome = welcome
        token = welcome.get("session")
        conn.session = str(token) if token is not None else None
        return conn

    async def send(self, frame: dict) -> None:
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def recv(self) -> dict | None:
        """Next frame, or ``None`` at EOF."""
        line = await self.reader.readline()
        if not line:
            return None
        return decode_frame(line)

    async def frames(self) -> AsyncIterator[dict]:
        """Iterate frames until EOF or a ``bye`` (inclusive)."""
        while True:
            frame = await self.recv()
            if frame is None:
                return
            yield frame
            if frame.get("type") == "bye":
                return

    async def close(self) -> None:
        if not self.writer.is_closing():
            self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


class ProducerClient:
    """Push event streams into the service, document batches at a time."""

    def __init__(self, conn: ServiceConnection) -> None:
        self.conn = conn

    @classmethod
    async def connect(
        cls, host: str, port: int, tenant: str = "default"
    ) -> "ProducerClient":
        return cls(await ServiceConnection.open(host, port, ROLE_PRODUCER, tenant))

    async def send_events(self, events: Iterable[Event]) -> None:
        await self.conn.send(events_frame(events))

    async def send_raw(self, frame: dict) -> None:
        await self.conn.send(frame)

    async def close(self) -> None:
        await self.conn.close()


class SubscriberClient:
    """Register queries and consume match frames."""

    def __init__(self, conn: ServiceConnection) -> None:
        self.conn = conn

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        tenant: str = "default",
        overflow: str | None = None,
        queue_size: int | None = None,
        durable: bool = False,
        session: str | None = None,
    ) -> "SubscriberClient":
        return cls(
            await ServiceConnection.open(
                host,
                port,
                ROLE_SUBSCRIBER,
                tenant,
                overflow=overflow,
                queue_size=queue_size,
                durable=durable,
                session=session,
            )
        )

    @property
    def session(self) -> str | None:
        """The durable-session token, if the hello asked for one."""
        return self.conn.session

    async def resume(self, acked: Mapping[str, int]) -> dict:
        """Replay the session's retained match tail above ``acked``.

        Returns the terminal ``resumed`` frame; every replayed ``match``
        frame before it is buffered and re-emitted by :meth:`frames`,
        preserving the wire order (replayed tail strictly before live
        matches).
        """
        await self.conn.send(resume_frame(acked))
        self._buffered = getattr(self, "_buffered", [])
        while True:
            frame = await self.conn.recv()
            if frame is None:
                raise ConnectionError("connection closed awaiting 'resumed'")
            if frame.get("type") == "resumed":
                return frame
            self._buffered.append(frame)

    async def ack(self, query_id: str, seq: int) -> None:
        """Tell the server the highest sequence number observed."""
        await self.conn.send(ack_frame(query_id, seq))

    async def subscribe(self, query_id: str, query: str) -> dict:
        """Send a ``subscribe`` and return its verdict frame.

        Any frames that arrive before the verdict (heartbeats, matches
        of earlier subscriptions) are buffered and replayed by
        :meth:`frames` afterwards.
        """
        await self.conn.send(subscribe_frame(query_id, query))
        self._buffered: list[dict] = getattr(self, "_buffered", [])
        while True:
            frame = await self.conn.recv()
            if frame is None:
                raise ConnectionError("connection closed awaiting verdict")
            if frame.get("type") in ("subscribed", "rejected") and (
                frame.get("query_id") == query_id
            ):
                return frame
            self._buffered.append(frame)

    async def subscribe_all(
        self, subscriptions: Sequence[tuple[str, str]]
    ) -> list[dict]:
        return [await self.subscribe(qid, query) for qid, query in subscriptions]

    async def unsubscribe(self, query_id: str) -> None:
        await self.conn.send(unsubscribe_frame(query_id))

    async def frames(self) -> AsyncIterator[dict]:
        """All frames in order, including any buffered during subscribe."""
        for frame in getattr(self, "_buffered", []):
            yield frame
            if frame.get("type") == "bye":
                return
        self._buffered = []
        async for frame in self.conn.frames():
            yield frame

    async def close(self) -> None:
        await self.conn.close()
