"""Exception hierarchy for the SPEX reproduction.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from stream errors from engine errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class QuerySyntaxError(ReproError):
    """An rpeq or conjunctive query could not be parsed.

    Attributes:
        position: character offset in the query text where parsing failed,
            or ``None`` when the failure is not tied to a single position.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class UnsupportedFeatureError(ReproError):
    """A query uses a construct outside the supported fragment.

    Raised, for example, by the XPath translator for axes that the rpeq
    fragment of the paper does not cover (reverse axes are rewritten where
    possible; value comparisons are not supported).
    """


class StreamError(ReproError):
    """An XML event stream is malformed.

    Covers mismatched end tags, events outside the document envelope,
    and premature end of stream.
    """


class InputLimitError(StreamError):
    """An untrusted-input hardening ceiling was exceeded while parsing.

    Subclasses :class:`StreamError` so the recovery policies
    (:mod:`repro.xmlstream.recovery`) treat a hardening trip exactly like
    any other malformed-input failure: fatal under ``strict``,
    quarantined under ``skip``, auto-closed under ``repair``.  The
    ``code`` attribute identifies which guard fired:

    ========  =====================================================
    code      guard
    ========  =====================================================
    INPUT001  entity amplification (billion-laughs expansion size)
    INPUT002  entity nesting depth
    INPUT003  text-node length
    INPUT004  attribute value length / count
    INPUT005  tag or attribute name length
    INPUT006  parse-output amplification backstop
    ========  =====================================================
    """

    def __init__(self, message: str, code: str, observed: int | float | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.observed = observed


class DeadlineExceeded(ReproError):
    """A per-document or per-stream wall-clock deadline expired.

    In the serving layer (:meth:`MultiQueryEngine.serve
    <repro.core.multiquery.MultiQueryEngine.serve>`) deadline expiry is
    a per-query *outcome*, never a global abort: affected queries are
    detached with this error recorded in their
    :class:`~repro.core.serving.QueryOutcome` while the stream pass
    continues (document deadline) or winds down cleanly (stream
    deadline).  The ``scope`` attribute is ``"document"`` or
    ``"stream"``.
    """

    def __init__(self, message: str, scope: str = "stream") -> None:
        super().__init__(message)
        self.scope = scope


class AdmissionError(ReproError):
    """A query was refused admission by the serving budget policy.

    Raised by :meth:`MultiQueryEngine.add_query
    <repro.core.multiquery.MultiQueryEngine.add_query>` with
    ``strict=True``; otherwise rejection is recorded as a per-query
    outcome and the query simply never joins the stream pass.  The
    :class:`~repro.core.serving.AdmissionDecision` is attached as
    ``decision``.
    """

    def __init__(self, message: str, decision: object | None = None) -> None:
        super().__init__(message)
        self.decision = decision


class ResourceLimitError(ReproError):
    """A configured :class:`~repro.limits.ResourceLimits` bound was exceeded.

    Raised by the network (stream depth, per-document event/time budgets,
    formula size σ) and by the output transducer (buffered events, pending
    candidates) when the limits policy is ``"raise"``.  The ``limit`` and
    ``observed`` attributes identify which guard fired and the value that
    tripped it, so callers can log actionable per-document error records.
    """

    def __init__(self, message: str, limit: str | None = None, observed: int | float | None = None) -> None:
        super().__init__(message)
        self.limit = limit
        self.observed = observed


class CheckpointError(ReproError):
    """A checkpoint could not be created, verified, or resumed.

    Raised for integrity failures (checksum mismatch, truncated or
    hand-edited checkpoint files), version skew, and resume-time
    incompatibilities (different query, different compiler settings, a
    source shorter than the checkpointed position).
    """


class EngineError(ReproError):
    """Internal evaluation invariant violated.

    This indicates a bug in the engine (or a hand-built network wired
    incorrectly), never a user input problem.
    """


class CompilationError(ReproError):
    """An rpeq or conjunctive query could not be compiled into a network."""


class StaticAnalysisError(ReproError):
    """The pre-flight static analyzer rejected a query or network.

    Raised by :class:`~repro.core.engine.SpexEngine` (and the CLI) when
    an error-severity diagnostic is found before any stream is consumed
    — e.g. a statically unsatisfiable query under a DTD, a malformed
    transducer network, or a certified worst-case memory bound that
    already exceeds the configured :class:`~repro.limits.ResourceLimits`.
    The full :class:`~repro.analysis.AnalysisReport` is attached as
    ``report``.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report
