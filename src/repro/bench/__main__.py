"""``python -m repro.bench`` — run the paper's experiments standalone."""

from __future__ import annotations

import argparse
import sys

from .experiments import EXPERIMENTS, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0; shapes are scale-invariant)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "all":
        run_all(scale=args.scale)
    else:
        EXPERIMENTS[args.experiment](scale=args.scale)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
