"""The pinned benchmark trajectory — one comparable number set per PR.

The repository's perf history is a sequence of ``BENCH_<n>.json`` files,
one per recorded run, all produced by the same *pinned smoke subset* of
the :mod:`benchmarks` suite: fixed seeds, fixed sizes, fixed queries.
Because the workloads never drift, any change in the emitted numbers is
attributable to the engine — events/sec movements are perf, match-count
movements are bugs.

Four workloads cover the hot paths the paper's experiments exercise:

* ``compile``   — network compilation over the Lemma V.1 query family
  (throughput of :func:`repro.core.compiler.compile_network` itself);
* ``scaling-depth`` — one deep document, the d-bounded stack discipline
  (benchmarks/bench_scaling_depth.py, pinned to one depth);
* ``multiquery`` — the SDI shared pass of benchmarks/bench_multiquery.py
  (the headline events/sec number the CI gate defends);
* ``figure14``  — the paper's Fig. 14 wordnet workload with the
  qualifier query of benchmarks/bench_ablation.py;
* ``shards``    — the crash-isolated multi-process serving layer
  (:mod:`repro.core.shards`) over the multiquery stream, with a
  subscriptions × throughput scaling series in its detail.  Its match
  count is gated (it must stay bit-identical to the single-process
  pass); its throughput is informational (``gate`` field) — multi-
  process wall time on shared runners is dominated by scheduler noise.
* ``service``   — the asyncio network frontend (:mod:`repro.service`)
  under the pinned SLO load: 32 concurrent subscribers over real TCP.
  The delivered match count is gated; throughput and the p50/p99 match
  latency in its detail are informational for the same scheduler-noise
  reason.

The emitted JSON is schema-versioned (:data:`SCHEMA_VERSION`); the
regression gate (:mod:`repro.bench.compare`) refuses to diff files from
different schemas.  Entries may carry a per-workload ``gate`` dict
(``{"events_per_second": false}``) telling the comparator which bands
to skip — absent means everything is gated, so old baselines keep their
full strictness.  See ``docs/performance.md``.
"""

from __future__ import annotations

import datetime
import gc
import json
import platform
import random
import re
import sys
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from ..core.compiler import compile_network
from ..core.engine import SpexEngine
from ..core.multiquery import MultiQueryEngine
from ..rpeq.generate import query_family
from ..workloads import deep_chain, mondial, wordnet
from ..xmlstream.events import Event
from .memory import traced

#: Version of the BENCH_<n>.json schema.  Bump whenever a field changes
#: meaning; the comparator refuses cross-schema diffs.
SCHEMA_VERSION = 1

#: File-name pattern of committed trajectory entries.
BENCH_GLOB = "BENCH_*.json"
_BENCH_RE = re.compile(r"BENCH_(\d+)\.json$")

# ----------------------------------------------------------------------
# pinned smoke workloads (fixed seeds and sizes — never retune without
# refreshing every committed baseline)

#: Lemma V.1 query-family lengths timed by the ``compile`` workload.
COMPILE_LENGTHS = (8, 16, 32, 64)
#: Document depth of the ``scaling-depth`` workload.
SMOKE_DEPTH = 512
#: Subscription count of the ``multiquery`` workload.
SMOKE_SUBSCRIPTIONS = 16
#: ``mondial`` generator arguments of the ``multiquery`` workload.
SMOKE_MONDIAL = {"seed": 7, "countries": 40}
#: ``wordnet`` generator arguments of the ``figure14`` workload.
SMOKE_WORDNET = {"seed": 7, "nouns": 2000}
#: The Fig. 14 qualifier query (benchmarks/bench_ablation.py).
FIGURE14_QUERY = "_*.Noun[wordForm].lexID"
#: Worker-process count of the ``shards`` workload.
SMOKE_SHARDS = 2
#: Pinned subscription count of the measured ``shards`` pass.
SMOKE_SHARD_SUBSCRIPTIONS = 32
#: Subscription counts of the informational shard scaling series.
SHARD_SERIES_SUBSCRIPTIONS = (8, 16, 32)
#: Concurrent subscriber connections of the ``service`` workload.
SMOKE_SERVICE_SUBSCRIBERS = 32
#: Documents / elements-per-document of the ``service`` load.
SMOKE_SERVICE_DOCUMENTS = 16
SMOKE_SERVICE_ELEMENTS = 24
#: Seed of the ``service`` load (subscriptions and documents).
SMOKE_SERVICE_SEED = 7


def smoke_subscriptions(count: int = SMOKE_SUBSCRIPTIONS) -> dict[str, str]:
    """The deterministic SDI subscription family of E9 (seed 99)."""
    from ..workloads import sdi_subscriptions

    return sdi_subscriptions(count, seed=99)


@dataclass(frozen=True)
class WorkloadResult:
    """One smoke workload's measurement.

    Attributes:
        workload: workload id (``compile``, ``scaling-depth``, ...).
        seconds: wall-clock time of the measured section.
        events: stream events processed (0 for the compile workload).
        events_per_second: throughput (0.0 when ``events`` is 0).
        matches: total match count — the bit-identical answer the gate
            protects (for ``compile``: total network degree, which
            likewise must not drift silently).
        peak_memory_bytes: tracemalloc peak of the measured section
            (``None`` when memory tracing was disabled).
        detail: workload-specific extras (per-query match counts, ...).
        gate: per-metric gating flags for the comparator — a metric
            mapped to ``False`` is recorded but not regression-gated
            (e.g. multi-process throughput).  Empty means everything is
            gated, which is also how baselines without the field read.
    """

    workload: str
    seconds: float
    events: int
    events_per_second: float
    matches: int
    peak_memory_bytes: int | None = None
    detail: dict = field(default_factory=dict)
    gate: dict = field(default_factory=dict)

    def to_obj(self) -> dict:
        obj = {
            "seconds": round(self.seconds, 6),
            "events": self.events,
            "events_per_second": round(self.events_per_second, 2),
            "matches": self.matches,
            "peak_memory_bytes": self.peak_memory_bytes,
            "detail": self.detail,
        }
        if self.gate:
            obj["gate"] = self.gate
        return obj


#: timing passes per workload; the fastest is recorded.  The minimum —
#: not the mean — estimates the workload's cost with the least scheduler
#: noise mixed in, which is what a regression gate needs to compare.
TIMING_REPEATS = 3


def _measure(
    fn: Callable[[], int], measure_memory: bool
) -> tuple[float, int, int | None]:
    """Time ``fn`` (returning a match count) with optional memory trace.

    Timing runs :data:`TIMING_REPEATS` passes and keeps the fastest —
    single-pass numbers on shared runners swing ±20% and make the
    regression gate flaky.  Timing and memory are measured in *separate*
    passes: tracemalloc slows allocation-heavy code several-fold, so
    tracing a timed pass would make events/sec a measurement of the
    tracer.  All passes must agree on the returned match count (the
    workloads are seeded and deterministic) — a mismatch fails loudly
    rather than recording an ambiguous number.
    """
    elapsed = float("inf")
    result = 0
    for attempt in range(TIMING_REPEATS):
        # Collect before, not during: garbage left by the previous pass
        # (or the previous workload) must not bill its collection cycle
        # to this pass's wall time.
        gc.collect()
        start = time.perf_counter()
        passed = fn()
        took = time.perf_counter() - start
        if attempt and passed != result:
            raise RuntimeError(
                f"non-deterministic smoke workload: timing passes found "
                f"{result} and {passed} match(es)"
            )
        result = passed
        if took < elapsed:
            elapsed = took
    if not measure_memory:
        return elapsed, result, None
    run = traced(fn)
    if run.result != result:
        raise RuntimeError(
            f"non-deterministic smoke workload: timing pass found "
            f"{result} match(es), memory pass {run.result}"
        )
    return elapsed, result, run.peak_bytes


def _smoke_compile(measure_memory: bool) -> WorkloadResult:
    exprs = [query_family(steps, steps // 2) for steps in COMPILE_LENGTHS]

    def build() -> int:
        degree = 0
        for expr in exprs:
            network, _store = compile_network(expr, collect_events=False)
            degree += network.degree
        return degree

    seconds, degree, peak = _measure(build, measure_memory)
    return WorkloadResult(
        workload="compile",
        seconds=seconds,
        events=0,
        events_per_second=0.0,
        matches=degree,
        peak_memory_bytes=peak,
        detail={"lengths": list(COMPILE_LENGTHS)},
    )


def _run_events(
    name: str,
    events: list[Event],
    count_matches: Callable[[Iterable[Event]], int],
    measure_memory: bool,
    detail: dict | None = None,
) -> WorkloadResult:
    seconds, matches, peak = _measure(
        lambda: count_matches(iter(events)), measure_memory
    )
    return WorkloadResult(
        workload=name,
        seconds=seconds,
        events=len(events),
        events_per_second=len(events) / seconds if seconds > 0 else 0.0,
        matches=matches,
        peak_memory_bytes=peak,
        detail=detail or {},
    )


def _smoke_scaling_depth(measure_memory: bool) -> WorkloadResult:
    events = list(deep_chain(SMOKE_DEPTH, label="a", leaf_label="z"))
    engine = SpexEngine("_*.a[z]", collect_events=False)
    return _run_events(
        "scaling-depth",
        events,
        engine.count,
        measure_memory,
        detail={"depth": SMOKE_DEPTH, "query": "_*.a[z]"},
    )


def _smoke_multiquery(measure_memory: bool) -> WorkloadResult:
    events = list(mondial(**SMOKE_MONDIAL))
    subscriptions = smoke_subscriptions()
    engine = MultiQueryEngine(subscriptions)

    per_query: dict[str, int] = {}

    def evaluate(stream: Iterable[Event]) -> int:
        per_query.clear()
        total = 0
        for query_id, _match in engine.run(stream):
            per_query[query_id] = per_query.get(query_id, 0) + 1
            total += 1
        return total

    result = _run_events(
        "multiquery",
        events,
        evaluate,
        measure_memory,
        detail={"subscriptions": len(subscriptions)},
    )
    result.detail["matches_by_query"] = {
        key: per_query[key] for key in sorted(per_query)
    }
    from ..analysis.planner import lane_counts

    result.detail["plan_lanes"] = lane_counts(engine.plans)
    result.detail["lane_executions"] = {
        query_id: engine.lane_executions[query_id]
        for query_id in sorted(engine.lane_executions)
    }
    # Per-lane throughput series: re-run each lane's query subset on its
    # own engine so the trajectory records how every execution lane
    # moves, not just the blended number.  Lane routing is per query, so
    # the subset engines land on the same lanes as the full pass.
    by_lane: dict[str, list[str]] = {}
    for query_id, lane in engine.lane_executions.items():
        by_lane.setdefault(lane, []).append(query_id)
    lanes: dict[str, dict[str, float]] = {}
    for lane in sorted(by_lane):
        subset = {
            query_id: subscriptions[query_id] for query_id in by_lane[lane]
        }
        lane_engine = MultiQueryEngine(subset)
        lane_seconds, lane_matches, _peak = _measure(
            lambda eng=lane_engine: sum(1 for _ in eng.run(iter(events))),
            False,
        )
        lanes[lane] = {
            "queries": len(subset),
            "events": len(events),
            "seconds": lane_seconds,
            "events_per_second": (
                len(events) / lane_seconds if lane_seconds > 0 else 0.0
            ),
            "matches": lane_matches,
        }
    result.detail["lanes"] = lanes
    return result


def _smoke_figure14(measure_memory: bool) -> WorkloadResult:
    events = list(wordnet(**SMOKE_WORDNET))
    engine = SpexEngine(FIGURE14_QUERY, collect_events=False)
    return _run_events(
        "figure14",
        events,
        engine.count,
        measure_memory,
        detail={"query": FIGURE14_QUERY, "nouns": SMOKE_WORDNET["nouns"]},
    )


def _smoke_shards(measure_memory: bool) -> WorkloadResult:
    from ..core.shards import ShardConfig, ShardCoordinator

    events = list(mondial(**SMOKE_MONDIAL))

    def serve_sharded_count(subscriptions: int) -> tuple[int, float]:
        coordinator = ShardCoordinator(
            smoke_subscriptions(subscriptions),
            config=ShardConfig(shards=SMOKE_SHARDS),
            preflight=False,
        )
        start = time.perf_counter()
        result = coordinator.run(iter(events))
        took = time.perf_counter() - start
        total = sum(len(found) for found in result.matches.values())
        return total, len(events) / took if took > 0 else 0.0

    def evaluate(stream: Iterable[Event]) -> int:
        coordinator = ShardCoordinator(
            smoke_subscriptions(SMOKE_SHARD_SUBSCRIPTIONS),
            config=ShardConfig(shards=SMOKE_SHARDS),
            preflight=False,
        )
        result = coordinator.run(stream)
        return sum(len(found) for found in result.matches.values())

    result = _run_events(
        "shards",
        events,
        evaluate,
        measure_memory,
        detail={
            "shards": SMOKE_SHARDS,
            "subscriptions": SMOKE_SHARD_SUBSCRIPTIONS,
        },
    )
    # Informational scaling series: subscriptions × throughput under the
    # pinned shard count (single pass each; never regression-gated).
    series = []
    for subscriptions in SHARD_SERIES_SUBSCRIPTIONS:
        matches, throughput = serve_sharded_count(subscriptions)
        series.append(
            {
                "subscriptions": subscriptions,
                "matches": matches,
                "events_per_second": round(throughput, 2),
            }
        )
    result.detail["scaling_series"] = series
    # Worker wall time rides process scheduling on shared runners —
    # record throughput, gate only the match count and event totals.
    result.gate["events_per_second"] = False
    result.gate["peak_memory_bytes"] = False
    return result


def _smoke_service(measure_memory: bool) -> WorkloadResult:
    """The asyncio network frontend under the pinned SLO load.

    32 concurrent subscriber connections, one bursty producer, all over
    real TCP via :func:`repro.service.loadgen.run_load`.  The delivered
    match count is gated (every subscriber must receive exactly its
    offline answer — block overflow, graceful drain); wall-clock
    throughput and the client-side p50/p99 match latency ride the
    event loop's scheduling on shared runners, so they are recorded but
    never regression-gated.
    """
    from ..service.loadgen import LoadConfig, load_documents, run_load
    from ..service.server import ServiceConfig

    config = LoadConfig(
        subscribers=SMOKE_SERVICE_SUBSCRIBERS,
        documents=SMOKE_SERVICE_DOCUMENTS,
        doc_elements=SMOKE_SERVICE_ELEMENTS,
        seed=SMOKE_SERVICE_SEED,
    )
    events = sum(len(document) for document in load_documents(config))
    reports = []

    def evaluate() -> int:
        report, service = run_load(
            config, ServiceConfig(tick=0.005, heartbeat_interval=None)
        )
        if not report.drained_cleanly or service is None or service.degraded:
            raise RuntimeError("service smoke load did not drain cleanly")
        reports.append(report)
        return report.total_matches

    seconds, matches, peak = _measure(evaluate, measure_memory)
    best = min(reports, key=lambda report: report.duration)
    result = WorkloadResult(
        workload="service",
        seconds=seconds,
        events=events,
        events_per_second=events / seconds if seconds > 0 else 0.0,
        matches=matches,
        peak_memory_bytes=peak,
        detail={
            "subscribers": SMOKE_SERVICE_SUBSCRIBERS,
            "documents": SMOKE_SERVICE_DOCUMENTS,
            "p50_ms": round(best.p50_latency * 1000.0, 3),
            "p99_ms": round(best.p99_latency * 1000.0, 3),
        },
    )
    # Informational recovery series: one seeded crash_reconnect pass
    # against a WAL-backed service — durable-session clients cut their
    # connections mid-stream and resume.  Runs once outside _measure
    # (the chaos must not perturb the gated match count) and is never
    # regression-gated: reconnect wall-clock rides the scheduler.
    import tempfile

    with tempfile.TemporaryDirectory(prefix="spex-bench-") as state_dir:
        crash_config = LoadConfig(
            subscribers=SMOKE_SERVICE_SUBSCRIBERS,
            documents=SMOKE_SERVICE_DOCUMENTS,
            doc_elements=SMOKE_SERVICE_ELEMENTS,
            seed=SMOKE_SERVICE_SEED,
            crash_reconnect_subscribers=max(
                2, SMOKE_SERVICE_SUBSCRIBERS // 8
            ),
            crash_after_matches=2,
        )
        crash_report, crash_service = run_load(
            crash_config,
            ServiceConfig(
                tick=0.005,
                heartbeat_interval=None,
                wal_path=f"{state_dir}/bench.wal",
                checkpoint_path=f"{state_dir}/bench.ckpt",
                checkpoint_every_documents=4,
            ),
        )
        result.detail["recovery"] = {
            "crash_clients": crash_config.crash_reconnect_subscribers,
            "reconnects": crash_report.reconnects,
            "sessions_resumed": (
                crash_service.stats.sessions_resumed
                if crash_service is not None
                else 0
            ),
            "matches_replayed": (
                crash_service.stats.matches_replayed
                if crash_service is not None
                else 0
            ),
            "p50_recovery_ms": round(crash_report.p50_recovery * 1000.0, 3),
            "max_recovery_ms": round(crash_report.max_recovery * 1000.0, 3),
        }
    # Latency and throughput over a real socket are scheduler-bound on
    # shared runners; only the delivered answer is gated.
    result.gate["events_per_second"] = False
    result.gate["peak_memory_bytes"] = False
    return result


#: The pinned smoke subset, in execution order.
SMOKE_WORKLOADS: dict[str, Callable[[bool], WorkloadResult]] = {
    "compile": _smoke_compile,
    "scaling-depth": _smoke_scaling_depth,
    "multiquery": _smoke_multiquery,
    "figure14": _smoke_figure14,
    "shards": _smoke_shards,
    "service": _smoke_service,
}


def run_smoke(
    measure_memory: bool = True,
    workloads: Iterable[str] | None = None,
) -> dict:
    """Execute the pinned smoke subset; return the schema-versioned obj.

    Args:
        measure_memory: trace peak memory per workload (slower but still
            seconds; ``peak_memory_bytes`` is ``None`` when off).
        workloads: subset of :data:`SMOKE_WORKLOADS` keys to run
            (default: all, in pinned order).
    """
    selected = list(SMOKE_WORKLOADS) if workloads is None else list(workloads)
    unknown = [name for name in selected if name not in SMOKE_WORKLOADS]
    if unknown:
        raise ValueError(f"unknown smoke workload(s): {unknown}")
    results = {
        name: SMOKE_WORKLOADS[name](measure_memory) for name in selected
    }
    return {
        "schema": SCHEMA_VERSION,
        "kind": "spex-bench-trajectory",
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": {name: result.to_obj() for name, result in results.items()},
    }


# ----------------------------------------------------------------------
# trajectory files


def trajectory_entries(directory: str | Path) -> list[Path]:
    """Committed ``BENCH_<n>.json`` files, sorted by index."""
    root = Path(directory)
    entries = []
    for path in root.glob(BENCH_GLOB):
        match = _BENCH_RE.match(path.name)
        if match is not None:
            entries.append((int(match.group(1)), path))
    return [path for _index, path in sorted(entries)]


def latest_baseline(directory: str | Path) -> Path | None:
    """The highest-numbered trajectory entry, or ``None`` when empty."""
    entries = trajectory_entries(directory)
    return entries[-1] if entries else None


def next_entry_path(directory: str | Path) -> Path:
    """Path of the next ``BENCH_<n>.json`` in the trajectory."""
    entries = trajectory_entries(directory)
    if not entries:
        return Path(directory) / "BENCH_0001.json"
    last = int(_BENCH_RE.match(entries[-1].name).group(1))
    return Path(directory) / f"BENCH_{last + 1:04d}.json"


def load_result(path: str | Path) -> dict:
    """Read one emitted result, validating kind and schema."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("kind") != "spex-bench-trajectory":
        raise ValueError(f"{path}: not a spex bench trajectory file")
    return data


def write_result(run: dict, path: str | Path) -> Path:
    """Write one emitted result as stable, diff-friendly JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(run, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.trajectory`` — run the smoke subset."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.trajectory",
        description="Run the pinned benchmark smoke subset.",
    )
    parser.add_argument(
        "--no-memory",
        action="store_true",
        help="skip tracemalloc peak measurement (faster)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(SMOKE_WORKLOADS),
        help="run only the named workload(s)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON to FILE",
    )
    args = parser.parse_args(argv)
    run = run_smoke(
        measure_memory=not args.no_memory, workloads=args.workload
    )
    text = json.dumps(run, indent=2, sort_keys=True)
    print(text)
    if args.output:
        write_result(run, args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
