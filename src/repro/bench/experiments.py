"""Named experiment drivers printing the paper's tables and figures.

Runnable without pytest::

    python -m repro.bench figure14          # Fig. 14 (both datasets)
    python -m repro.bench figure15          # Fig. 15 (DMOZ, SPEX only)
    python -m repro.bench memory            # E8 memory comparison
    python -m repro.bench scaling           # E4/E5 linearity series
    python -m repro.bench all

Each driver returns its report string (also printed), so the functions
double as a library API for notebooks and scripts.  Scales are chosen to
finish in seconds; pass ``scale`` to push them up — the shapes are scale
invariant.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from ..core.engine import SpexEngine
from ..workloads import (
    DMOZ_QUERIES,
    MONDIAL_QUERIES,
    WORDNET_QUERIES,
    dmoz_content,
    dmoz_structure,
    mondial,
    wordnet,
)
from ..workloads.generators import deep_chain, random_tree
from .charts import bar_chart, grouped_bar_chart
from .harness import run_grid
from .memory import traced
from .report import check_match_agreement, format_table, grid_table, speedup_summary


def figure14(scale: float = 1.0, out: Callable[[str], None] = print) -> str:
    """Fig. 14: MONDIAL and WordNet, classes 1-4, three processors."""
    sections: list[str] = []
    datasets = [
        ("MONDIAL", lambda: mondial(seed=7, countries=int(200 * scale)), MONDIAL_QUERIES),
        ("WordNet", lambda: wordnet(seed=7, nouns=int(5000 * scale)), WORDNET_QUERIES),
    ]
    processors = ["spex", "dom", "treegrep"]
    for name, factory, queries in datasets:
        events = list(factory())
        results = run_grid(
            processors,
            {str(k): v for k, v in queries.items()},
            lambda: iter(events),
        )
        problems = check_match_agreement(results)
        if problems:
            raise AssertionError("; ".join(problems))
        sections.append(
            grid_table(
                f"Figure 14 — {name} ({len(events)} messages), seconds",
                results,
                processors,
            )
        )
        by_cell = {(r.query_id, r.processor): r.seconds for r in results}
        query_ids = sorted({r.query_id for r in results})
        sections.append(
            grouped_bar_chart(
                f"Figure 14 — {name} (bars, seconds)",
                query_ids,
                {
                    processor: [by_cell[(q, processor)] for q in query_ids]
                    for processor in processors
                },
                unit="s",
            )
        )
        sections.append(speedup_summary(results, baseline="dom"))
    report = "\n\n".join(sections)
    out(report)
    return report


def figure15(scale: float = 1.0, out: Callable[[str], None] = print) -> str:
    """Fig. 15: DMOZ structure and content, SPEX only."""
    rows = []
    for file_name, factory in (
        ("structure", lambda: dmoz_structure(seed=7, topics=int(12000 * scale))),
        ("content", lambda: dmoz_content(seed=7, topics=int(24000 * scale))),
    ):
        events = list(factory())
        for class_id, query in DMOZ_QUERIES.items():
            engine = SpexEngine(query, collect_events=True)
            start = time.perf_counter()
            matches = sum(1 for _ in engine.run(iter(events)))
            elapsed = time.perf_counter() - start
            stats = engine.stats
            rows.append(
                [
                    f"{file_name}/{class_id}",
                    round(elapsed, 3),
                    matches,
                    len(events),
                    stats.output.peak_buffered_events,
                    stats.network.max_stack,
                ]
            )
    table = format_table(
        "Figure 15 — DMOZ (SPEX only)",
        ["file/class", "seconds", "matches", "messages", "peak buffer", "peak stack"],
        rows,
    )
    bars = bar_chart(
        "Figure 15 — DMOZ (bars, seconds)",
        [(str(row[0]), float(row[1])) for row in rows],
        unit="s",
    )
    report = table + "\n\n" + bars
    out(report)
    return report


def memory(scale: float = 1.0, out: Callable[[str], None] = print) -> str:
    """E8: peak memory, SPEX vs. materializing baselines."""
    from .harness import make_processor

    query = "_*.Topic[editor].Title"
    rows = []
    for topics in (int(2000 * scale), int(8000 * scale)):
        for processor in ("spex", "dom", "buffer-dom"):
            evaluate = make_processor(processor, query)
            run = traced(lambda: evaluate(dmoz_structure(seed=7, topics=topics)))
            rows.append([processor, topics, round(run.peak_mib, 2), run.result])
    report = format_table(
        "E8 — peak traced memory (MiB) on DMOZ-like streams",
        ["processor", "topics", "peak MiB", "matches"],
        rows,
    )
    out(report)
    return report


def scaling(scale: float = 1.0, out: Callable[[str], None] = print) -> str:
    """E4/E5: time vs. stream size, stack vs. depth."""
    rows = []
    engine = SpexEngine("_*.b[c].a", collect_events=False)
    for elements in (int(8000 * scale), int(16000 * scale), int(32000 * scale)):
        events = list(random_tree(seed=11, elements=elements, max_depth=6))
        start = time.perf_counter()
        matches = engine.count(iter(events))
        elapsed = time.perf_counter() - start
        rows.append(["size", elements, round(elapsed, 3), matches, ""])
    for depth in (64, 256, 1024):
        events = list(deep_chain(depth=depth, label="a", leaf_label="z"))
        engine_depth = SpexEngine("_*.a[z]", collect_events=False)
        start = time.perf_counter()
        matches = engine_depth.count(iter(events))
        elapsed = time.perf_counter() - start
        rows.append(
            ["depth", depth, round(elapsed, 3), matches,
             engine_depth.stats.network.max_stack]
        )
    report = format_table(
        "E4/E5 — linear time in s, stack bounded by d",
        ["sweep", "parameter", "seconds", "matches", "peak stack"],
        rows,
    )
    out(report)
    return report


def multiquery(scale: float = 1.0, out: Callable[[str], None] = print) -> str:
    """E9: subscription sets — independent vs. shared-prefix networks."""
    import random

    from ..core.multiquery import MultiQueryEngine, SharedNetworkEngine

    rng = random.Random(99)
    labels = ["country", "province", "city", "name", "population", "religions"]
    events = list(mondial(seed=7, countries=int(40 * scale)))
    rows = []
    for count in (4, 16, 64):
        queries = {}
        for index in range(count):
            a, b = rng.choice(labels), rng.choice(labels)
            queries[f"s{index}"] = f"_*.{a}.{b}" if index % 2 else f"_*.{a}[{b}]"
        independent = MultiQueryEngine(queries)
        shared = SharedNetworkEngine(queries)
        start = time.perf_counter()
        matches_a = sum(len(v) for v in independent.evaluate(iter(events)).values())
        independent_time = time.perf_counter() - start
        start = time.perf_counter()
        matches_b = sum(len(v) for v in shared.evaluate(iter(events)).values())
        shared_time = time.perf_counter() - start
        if matches_a != matches_b:
            raise AssertionError("engines disagree")
        rows.append(
            [count, round(independent_time, 3), round(shared_time, 3),
             shared.network_degree(), matches_a]
        )
    report = format_table(
        "E9 — multi-query SDI (seconds)",
        ["queries", "independent", "shared-prefix", "shared degree", "matches"],
        rows,
    )
    out(report)
    return report


def xmark_experiment(scale: float = 1.0, out: Callable[[str], None] = print) -> str:
    """E11: XMark-like workload across processors."""
    from ..workloads.xmark import QUERIES, xmark

    events = list(xmark(seed=7, scale=int(200 * scale)))
    results = run_grid(
        ["spex", "dom", "treegrep"],
        {str(k): v for k, v in QUERIES.items()},
        lambda: iter(events),
    )
    problems = check_match_agreement(results)
    if problems:
        raise AssertionError("; ".join(problems))
    report = grid_table(
        f"E11 — XMark-like auction site ({len(events)} messages), seconds",
        results,
        ["spex", "dom", "treegrep"],
    )
    out(report)
    return report


#: registry used by ``python -m repro.bench``
EXPERIMENTS: dict[str, Callable[..., str]] = {
    "figure14": figure14,
    "figure15": figure15,
    "memory": memory,
    "scaling": scaling,
    "multiquery": multiquery,
    "xmark": xmark_experiment,
}


def run_all(scale: float = 1.0, out: Callable[[str], None] = print) -> None:
    """Run every registered experiment in sequence."""
    for name, driver in EXPERIMENTS.items():
        out(f"\n### {name}\n")
        driver(scale=scale, out=out)
