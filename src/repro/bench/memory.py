"""Memory measurement utilities.

The paper reports JVM-level memory (8.5–11 MB constant for SPEX; Saxon
and Fxgrep exceeding 512 MB on DMOZ).  We measure the Python analog two
ways:

* :func:`traced` — ``tracemalloc`` peak during a callable, the honest
  end-to-end number (includes the evaluator's own structures *and*
  whatever the workload forces it to materialize);
* engine-internal accounting (stack peaks, buffered events, live
  condition variables) exposed by :class:`repro.core.EngineStats`, which
  isolates the algorithmic memory the complexity theorems bound.
"""

from __future__ import annotations

import tracemalloc
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TracedRun:
    """Result and peak memory of one traced invocation.

    Attributes:
        result: the callable's return value.
        peak_bytes: peak traced allocation during the call, relative to
            the baseline at entry.
    """

    result: Any
    peak_bytes: int

    @property
    def peak_kib(self) -> float:
        return self.peak_bytes / 1024.0

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)


def traced(fn: Callable[[], Any]) -> TracedRun:
    """Run ``fn`` under tracemalloc and report its peak allocation.

    Tracing is stopped and restored around the call, so nested use inside
    an already-tracing process still yields a per-call peak.
    """
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.stop()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        baseline, _ = tracemalloc.get_traced_memory()
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        if was_tracing:
            tracemalloc.start()
    return TracedRun(result=result, peak_bytes=max(0, peak - baseline))
