"""Benchmark harness: processors, timing, memory, paper-style reports."""

from .charts import bar_chart, grouped_bar_chart
from .harness import RunResult, make_processor, run_grid, run_one
from .memory import TracedRun, traced
from .report import (
    check_match_agreement,
    format_table,
    grid_table,
    speedup_summary,
)

__all__ = [
    "RunResult",
    "TracedRun",
    "bar_chart",
    "check_match_agreement",
    "format_table",
    "grid_table",
    "grouped_bar_chart",
    "make_processor",
    "run_grid",
    "run_one",
    "speedup_summary",
    "traced",
]
