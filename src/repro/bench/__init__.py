"""Benchmark harness: processors, timing, memory, paper-style reports."""

from .charts import bar_chart, grouped_bar_chart
from .compare import (
    ComparisonReport,
    MetricDelta,
    compare,
    compare_paths,
)
from .harness import RunResult, make_processor, run_grid, run_one
from .memory import TracedRun, traced
from .report import (
    check_match_agreement,
    format_table,
    grid_table,
    speedup_summary,
)
from .trajectory import (
    SCHEMA_VERSION,
    WorkloadResult,
    latest_baseline,
    load_result,
    next_entry_path,
    run_smoke,
    trajectory_entries,
    write_result,
)

__all__ = [
    "ComparisonReport",
    "MetricDelta",
    "RunResult",
    "SCHEMA_VERSION",
    "TracedRun",
    "WorkloadResult",
    "bar_chart",
    "check_match_agreement",
    "compare",
    "compare_paths",
    "format_table",
    "grid_table",
    "grouped_bar_chart",
    "latest_baseline",
    "load_result",
    "make_processor",
    "next_entry_path",
    "run_grid",
    "run_one",
    "run_smoke",
    "speedup_summary",
    "traced",
    "trajectory_entries",
    "write_result",
]
