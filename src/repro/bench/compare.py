"""The benchmark regression gate — diff a run against the baseline.

CI runs the pinned smoke subset (``spex bench --smoke --json``) and
feeds the result here together with the committed ``BENCH_<n>.json``
baseline.  The comparison applies per-metric tolerance bands:

* **match counts** — zero tolerance.  The smoke workloads are seeded and
  pinned, so any drift means answers changed: that is a correctness bug,
  never noise, and the gate fails regardless of any throughput win.
* **event counts** — zero tolerance, for the same reason (drift means a
  workload generator changed; refresh the baseline deliberately).
* **events/sec** — a relative band (default −15%).  Throughput may only
  regress within the band; improvements always pass (and should be
  recorded by committing a new trajectory entry).
* **peak memory** — a relative band (default +50%), loose because
  allocator behaviour shifts across Python versions.

A baseline entry may carry a per-workload ``gate`` dict mapping metric
names to booleans; a metric mapped to ``false`` is reported (marked
``skip``) but never fails the gate.  The shards workload uses this for
its multi-process throughput, which is scheduler noise on shared
runners.  A missing ``gate`` field means everything is gated, so older
baselines keep their full strictness.

Exit status of :func:`main` is nonzero on any violated band, which is
what makes the CI job a gate.  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path

from .trajectory import SCHEMA_VERSION, latest_baseline, load_result

#: Maximum tolerated relative throughput loss (0.15 == −15%).
DEFAULT_THROUGHPUT_TOLERANCE = 0.15
#: Maximum tolerated relative peak-memory growth (0.50 == +50%).
DEFAULT_MEMORY_TOLERANCE = 0.50


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric of one workload.

    Attributes:
        workload: workload id the metric belongs to.
        metric: metric name (``matches``, ``events_per_second``, ...).
        baseline: the committed value.
        current: the fresh run's value.
        ok: whether the value stays inside the metric's tolerance band.
        note: human-readable verdict, rendered by the CLI.
    """

    workload: str
    metric: str
    baseline: float
    current: float
    ok: bool
    note: str

    def render(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return (
            f"{mark} {self.workload:14s} {self.metric:18s} "
            f"{self.baseline:>14,.2f} -> {self.current:>14,.2f}  {self.note}"
        )


@dataclass(frozen=True)
class ComparisonReport:
    """All metric deltas of one baseline/current diff."""

    deltas: tuple[MetricDelta, ...]

    @property
    def ok(self) -> bool:
        return all(delta.ok for delta in self.deltas)

    @property
    def failures(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if not delta.ok]

    def render(self) -> str:
        lines = [delta.render() for delta in self.deltas]
        verdict = (
            "PASS: no regression outside tolerance"
            if self.ok
            else f"FAIL: {len(self.failures)} metric(s) outside tolerance"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _relative_change(baseline: float, current: float) -> float:
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return (current - baseline) / baseline


def _gated_delta(delta: MetricDelta, gated: bool) -> MetricDelta:
    """Neutralize ``delta`` when the baseline ungates its metric."""
    if gated:
        return delta
    return MetricDelta(
        delta.workload,
        delta.metric,
        delta.baseline,
        delta.current,
        ok=True,
        note=f"skip (ungated by baseline) [{delta.note}]",
    )


def compare(
    baseline: dict,
    current: dict,
    throughput_tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
    memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
) -> ComparisonReport:
    """Diff two trajectory runs; see the module docstring for the bands.

    Raises:
        ValueError: the runs come from different schema versions, or the
            current run is missing a workload the baseline records.
    """
    for name, run in (("baseline", baseline), ("current", current)):
        schema = run.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"{name} run has schema {schema!r}; this gate understands "
                f"schema {SCHEMA_VERSION} only — refresh the baseline"
            )
    deltas: list[MetricDelta] = []
    for workload, base in baseline["workloads"].items():
        cur = current["workloads"].get(workload)
        if cur is None:
            raise ValueError(
                f"current run is missing workload {workload!r}; the smoke "
                "subset must cover everything the baseline records"
            )
        gate = base.get("gate", {})
        deltas.append(
            _gated_delta(
                MetricDelta(
                    workload,
                    "matches",
                    base["matches"],
                    cur["matches"],
                    ok=cur["matches"] == base["matches"],
                    note="exact (answer drift is a bug)",
                ),
                bool(gate.get("matches", True)),
            )
        )
        deltas.append(
            _gated_delta(
                MetricDelta(
                    workload,
                    "events",
                    base["events"],
                    cur["events"],
                    ok=cur["events"] == base["events"],
                    note="exact (workloads are pinned)",
                ),
                bool(gate.get("events", True)),
            )
        )
        if base["events_per_second"] > 0:
            change = _relative_change(
                base["events_per_second"], cur["events_per_second"]
            )
            deltas.append(
                _gated_delta(
                    MetricDelta(
                        workload,
                        "events_per_second",
                        base["events_per_second"],
                        cur["events_per_second"],
                        ok=change >= -throughput_tolerance,
                        note=f"{change:+.1%} (band -{throughput_tolerance:.0%})",
                    ),
                    bool(gate.get("events_per_second", True)),
                )
            )
        # per-lane series (the multiquery workload): same bands as the
        # blended metrics — answers and event counts are exact, lane
        # throughput shares the workload's relative band.  A lane the
        # baseline records must exist in the current run; a lane only
        # the current run has is new coverage and passes silently.
        base_lanes = (base.get("detail") or {}).get("lanes") or {}
        cur_lanes = (cur.get("detail") or {}).get("lanes") or {}
        for lane in sorted(base_lanes):
            lane_base = base_lanes[lane]
            lane_cur = cur_lanes.get(lane)
            if lane_cur is None:
                deltas.append(
                    MetricDelta(
                        workload,
                        f"lane[{lane}]",
                        1.0,
                        0.0,
                        ok=False,
                        note="lane series missing from the current run",
                    )
                )
                continue
            for metric, reason in (
                ("matches", "exact (answer drift is a bug)"),
                ("events", "exact (workloads are pinned)"),
            ):
                deltas.append(
                    _gated_delta(
                        MetricDelta(
                            workload,
                            f"lane[{lane}].{metric}",
                            lane_base[metric],
                            lane_cur[metric],
                            ok=lane_cur[metric] == lane_base[metric],
                            note=reason,
                        ),
                        bool(gate.get(metric, True)),
                    )
                )
            if lane_base["events_per_second"] > 0:
                change = _relative_change(
                    lane_base["events_per_second"],
                    lane_cur["events_per_second"],
                )
                deltas.append(
                    _gated_delta(
                        MetricDelta(
                            workload,
                            f"lane[{lane}].ev/s",
                            lane_base["events_per_second"],
                            lane_cur["events_per_second"],
                            ok=change >= -throughput_tolerance,
                            note=(
                                f"{change:+.1%} "
                                f"(band -{throughput_tolerance:.0%})"
                            ),
                        ),
                        bool(gate.get("events_per_second", True)),
                    )
                )
        # latency percentiles (the service workload): always rendered,
        # never gated — tail latency on shared runners is load noise,
        # but the trajectory should still show its drift at a glance
        for metric in ("p50_ms", "p99_ms"):
            base_latency = (base.get("detail") or {}).get(metric)
            cur_latency = (cur.get("detail") or {}).get(metric)
            if base_latency is not None and cur_latency is not None:
                deltas.append(
                    MetricDelta(
                        workload,
                        metric,
                        float(base_latency),
                        float(cur_latency),
                        ok=True,
                        note="informational (latency is never gated)",
                    )
                )
        base_peak = base.get("peak_memory_bytes")
        cur_peak = cur.get("peak_memory_bytes")
        if base_peak and cur_peak:
            change = _relative_change(base_peak, cur_peak)
            deltas.append(
                _gated_delta(
                    MetricDelta(
                        workload,
                        "peak_memory_bytes",
                        base_peak,
                        cur_peak,
                        ok=change <= memory_tolerance,
                        note=f"{change:+.1%} (band +{memory_tolerance:.0%})",
                    ),
                    bool(gate.get("peak_memory_bytes", True)),
                )
            )
    return ComparisonReport(tuple(deltas))


def compare_paths(
    baseline_path: str | Path,
    current_path: str | Path,
    throughput_tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
    memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
) -> ComparisonReport:
    """File-level convenience over :func:`compare`.

    ``baseline_path`` may be a directory, in which case the
    highest-numbered committed ``BENCH_<n>.json`` inside it is used.
    """
    base = Path(baseline_path)
    if base.is_dir():
        entry = latest_baseline(base)
        if entry is None:
            raise ValueError(f"no BENCH_*.json baseline found in {base}")
        base = entry
    return compare(
        load_result(base),
        load_result(current_path),
        throughput_tolerance=throughput_tolerance,
        memory_tolerance=memory_tolerance,
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.compare BASELINE CURRENT`` — the CI gate."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="Compare a bench run against the committed baseline; "
        "exit nonzero on regression outside tolerance.",
    )
    parser.add_argument(
        "baseline",
        help="baseline BENCH_<n>.json, or a directory holding the "
        "committed trajectory (highest index wins)",
    )
    parser.add_argument("current", help="freshly emitted bench result JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_THROUGHPUT_TOLERANCE,
        help="relative throughput-loss band (default %(default)s); CI "
        "passes a wider band than the local default to absorb "
        "runner-hardware variance",
    )
    parser.add_argument(
        "--memory-tolerance",
        type=float,
        default=DEFAULT_MEMORY_TOLERANCE,
        dest="memory_tolerance",
        help="relative peak-memory growth band (default %(default)s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as JSON instead of a table",
    )
    args = parser.parse_args(argv)
    try:
        report = compare_paths(
            args.baseline,
            args.current,
            throughput_tolerance=args.tolerance,
            memory_tolerance=args.memory_tolerance,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = {
            "ok": report.ok,
            "deltas": [
                {
                    "workload": delta.workload,
                    "metric": delta.metric,
                    "baseline": delta.baseline,
                    "current": delta.current,
                    "ok": delta.ok,
                    "note": delta.note,
                }
                for delta in report.deltas
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
