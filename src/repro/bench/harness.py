"""Experiment harness: uniform processor interface, timing, result rows.

Every experiment in :mod:`benchmarks` is phrased as: a *workload* (a
factory producing a fresh event stream), a set of *queries*, and a set of
*processors*.  The harness runs each combination, collects wall time,
match count and (optionally) peak memory, and hands rows to
:mod:`repro.bench.report` for paper-style output.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from ..baselines import (
    DomEvaluator,
    NaiveStreamEvaluator,
    TreeAutomatonEvaluator,
    XScanEvaluator,
)
from ..core.engine import SpexEngine
from ..rpeq.ast import Rpeq
from ..rpeq.parser import parse
from ..xmlstream.events import Event
from .memory import traced

#: Factory producing a fresh event stream per run (streams are one-shot).
StreamFactory = Callable[[], Iterator[Event]]


@dataclass(frozen=True)
class RunResult:
    """One (processor, query) measurement.

    Attributes:
        processor: processor name (``spex``, ``dom``, ``treegrep``, ...).
        query_id: caller-chosen label (e.g. the paper's class number).
        query: the query text.
        seconds: wall-clock evaluation time (compilation included, as in
            the paper's SPEX timings).
        matches: number of result nodes.
        peak_memory_bytes: traced peak, when memory measurement was on.
    """

    processor: str
    query_id: str
    query: str
    seconds: float
    matches: int
    peak_memory_bytes: int | None = None


def make_processor(name: str, query: str | Rpeq) -> Callable[[Iterable[Event]], int]:
    """Build a ``events -> match_count`` callable for a named processor.

    Known processors:

    * ``spex`` — the streaming engine (results consumed on the fly);
    * ``dom`` — Saxon analog (materialize, declarative evaluation);
    * ``treegrep`` — Fxgrep analog (materialize, NFA state sets);
    * ``xscan`` — lazy-DFA streaming (qualifier-free fragment only);
    * ``buffer-dom`` — buffer the stream first, then ``dom``.
    """
    expr = parse(query) if isinstance(query, str) else query
    if name == "spex":
        engine = SpexEngine(expr, collect_events=True)
        return lambda events: sum(1 for _ in engine.run(events))
    if name == "dom":
        dom = DomEvaluator(expr)
        return lambda events: len(dom.evaluate(events))
    if name == "treegrep":
        automaton = TreeAutomatonEvaluator(expr)
        return lambda events: len(automaton.evaluate(events))
    if name == "xscan":
        # Constructed eagerly so unsupported queries fail here, not at
        # evaluation time inside a timing loop.
        matcher = XScanEvaluator(expr)
        return lambda events: len(matcher.evaluate(events))
    if name == "buffer-dom":
        naive = NaiveStreamEvaluator(expr)
        return lambda events: len(naive.evaluate(events))
    raise ValueError(f"unknown processor {name!r}")


def run_one(
    processor: str,
    query_id: str,
    query: str,
    workload: StreamFactory,
    measure_memory: bool = False,
) -> RunResult:
    """Execute one (processor, query, workload) cell and time it."""
    evaluate = make_processor(processor, query)
    if measure_memory:
        start = time.perf_counter()
        run = traced(lambda: evaluate(workload()))
        elapsed = time.perf_counter() - start
        return RunResult(
            processor, query_id, query, elapsed, run.result, run.peak_bytes
        )
    start = time.perf_counter()
    matches = evaluate(workload())
    elapsed = time.perf_counter() - start
    return RunResult(processor, query_id, query, elapsed, matches)


def run_grid(
    processors: Iterable[str],
    queries: dict[str, str],
    workload: StreamFactory,
    measure_memory: bool = False,
    skip_unsupported: bool = True,
) -> list[RunResult]:
    """Run all (processor, query) combinations of one experiment.

    Args:
        processors: processor names (see :func:`make_processor`).
        queries: ``query_id -> query text``.
        workload: fresh-stream factory, re-invoked per run.
        measure_memory: trace peak memory per run (slower).
        skip_unsupported: silently skip combinations a processor cannot
            express (e.g. qualifiers on ``xscan``).
    """
    from ..errors import UnsupportedFeatureError

    results: list[RunResult] = []
    for query_id, query in queries.items():
        for processor in processors:
            try:
                results.append(
                    run_one(processor, query_id, query, workload, measure_memory)
                )
            except UnsupportedFeatureError:
                if not skip_unsupported:
                    raise
    return results
