"""ASCII bar charts for terminal reports.

The paper's Figs. 14-15 are grouped bar charts; the experiment drivers
render the same shape in plain text so a benchmark run visually
regenerates the figure:

    Figure 14 — WordNet, seconds
    1 spex      |############                     0.27
    1 dom       |#####                            0.12
    1 treegrep  |####                             0.09
    ...
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def bar_chart(
    title: str,
    rows: Iterable[tuple[str, float]],
    width: int = 42,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the largest value.

    Args:
        title: chart caption.
        rows: ``(label, value)`` pairs, rendered in the given order.
        width: bar width (characters) of the largest value.
        unit: suffix shown after each value (e.g. ``"s"``).
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no data)"
    label_width = max(len(label) for label, _ in rows)
    peak = max(value for _, value in rows) or 1.0
    lines = [title, "-" * len(title)]
    for label, value in rows:
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)} {value:.3f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 42,
    unit: str = "",
) -> str:
    """Grouped bars, one block per group — the paper's Fig. 14 layout.

    Args:
        groups: group labels (e.g. query classes ``["1", "2", ...]``).
        series: per-series values, one per group (e.g. per processor).
    """
    rows: list[tuple[str, float]] = []
    for index, group in enumerate(groups):
        for name, values in series.items():
            rows.append((f"{group} {name}", values[index]))
    return bar_chart(title, rows, width=width, unit=unit)
