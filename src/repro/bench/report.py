"""Paper-style result tables.

The benchmarks print, for every reproduced table/figure, rows shaped like
the paper's: one row per query class, one column per processor, plus the
derived quantities the paper's narrative rests on (who wins, speedup
factors, scaling slopes).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .harness import RunResult


def _format_cell(value: float | int | str | None, width: int) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[float | int | str | None]],
    widths: int = 12,
) -> str:
    """Render a fixed-width table with a title and a rule."""
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.rjust(widths) for h in headers))
    lines.append("-+-".join("-" * widths for _ in headers))
    for row in rows:
        lines.append(" | ".join(_format_cell(cell, widths) for cell in row))
    return "\n".join(lines)


def grid_table(
    title: str,
    results: list[RunResult],
    processors: Sequence[str],
    value: str = "seconds",
) -> str:
    """Pivot grid results into a query-class × processor table.

    Args:
        title: table caption.
        results: output of :func:`repro.bench.harness.run_grid`.
        processors: column order.
        value: ``"seconds"``, ``"matches"`` or ``"peak_memory_mib"``.
    """
    by_cell: dict[tuple[str, str], RunResult] = {
        (r.query_id, r.processor): r for r in results
    }
    query_ids = sorted({r.query_id for r in results})
    rows: list[list[float | int | str | None]] = []
    for query_id in query_ids:
        row: list[float | int | str | None] = [query_id]
        for processor in processors:
            cell = by_cell.get((query_id, processor))
            if cell is None:
                row.append(None)
            elif value == "seconds":
                row.append(cell.seconds)
            elif value == "matches":
                row.append(cell.matches)
            elif value == "peak_memory_mib":
                row.append(
                    None
                    if cell.peak_memory_bytes is None
                    else round(cell.peak_memory_bytes / 2**20, 2)
                )
            else:
                raise ValueError(f"unknown value column {value!r}")
        rows.append(row)
    return format_table(title, ["query", *processors], rows)


def speedup_summary(results: list[RunResult], baseline: str, subject: str = "spex") -> str:
    """One line per query: how much faster/slower the subject is.

    Mirrors the paper's narrative ("SPEX ... outperforms the other
    processors on the medium-sized WordNet database").
    """
    by_cell = {(r.query_id, r.processor): r for r in results}
    lines = []
    for query_id in sorted({r.query_id for r in results}):
        ours = by_cell.get((query_id, subject))
        theirs = by_cell.get((query_id, baseline))
        if ours is None or theirs is None or ours.seconds == 0:
            continue
        factor = theirs.seconds / ours.seconds
        verdict = "faster" if factor >= 1 else "slower"
        lines.append(
            f"query {query_id}: {subject} is {max(factor, 1 / factor):.2f}x "
            f"{verdict} than {baseline} "
            f"({ours.seconds:.3f}s vs {theirs.seconds:.3f}s)"
        )
    return "\n".join(lines)


def check_match_agreement(results: list[RunResult]) -> list[str]:
    """Sanity check: all processors agree on match counts per query.

    Returns a list of human-readable discrepancy descriptions (empty when
    everything agrees) — benchmarks assert on this, so a performance run
    can never silently compare processors computing different answers.
    """
    by_query: dict[str, set[int]] = {}
    for result in results:
        by_query.setdefault(result.query_id, set()).add(result.matches)
    return [
        f"query {query_id}: processors disagree on match counts {sorted(counts)}"
        for query_id, counts in sorted(by_query.items())
        if len(counts) > 1
    ]
