"""Hot-path optimization knobs.

Every optimization the engine applies on top of the paper's literal
Fig. 11 semantics is an independent knob here, so the differential test
suite can switch each one off and compare answers bit-for-bit against
the unoptimized evaluation.  ``optimize=`` parameters throughout the
library accept either a plain bool — ``True`` is every knob on,
``False`` the literal Fig. 11 network with none — or an
:class:`OptimizationFlags` instance for per-knob control.

The knobs (each described where it is implemented):

* ``star_fusion`` — compile ``label*`` to the fused ``DS`` transducer
  instead of the literal split/closure/join triple
  (:mod:`repro.core.path_transducers`).
* ``routing`` — compile the network's per-event routing into a flat
  dispatch table at finalize time: bound feed methods, reused output
  slots and identity-split bypass (:mod:`repro.core.network`).
* ``formula_memo`` — a bounded, identity-keyed memo for the binary
  conjunction/disjunction normalizations
  (:class:`repro.conditions.formula.FormulaMemo`); σ-bounded formulas
  repeat heavily under closures, so most normalizations are replays.
* ``message_pool`` — reuse one document-message object per network and
  recycle activation messages event-to-event
  (:class:`repro.core.messages.ActivationPool`), cutting allocator
  churn on the per-event hot path.
* ``dfa_lane`` — execute dfa-lane queries (qualifier-free, no axes) on
  the shared lazily-determinized product DFA instead of a transducer
  network (:mod:`repro.core.fastlane`).
* ``hybrid_gate`` — run hybrid-lane queries through the shared DFA as
  well: final-step-qualifier queries natively, everything else behind a
  subtree gate that skips the transducer network while the query's
  over-approximation automaton is dead (:mod:`repro.core.fastlane`).
* ``fused_network`` — flatten a finalized network's per-event driver
  into one closure over an event-class table instead of the method-call
  chain through :meth:`repro.core.network.Network.process_event`
  (:func:`repro.core.dispatch.make_fused_runner`).

None of the knobs may change answers; the ``BENCH_<n>.json`` trajectory
gate and ``tests/core/test_optimize_differential.py`` enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True, slots=True)
class OptimizationFlags:
    """Per-knob optimization switches (see the module docstring)."""

    star_fusion: bool = True
    routing: bool = True
    formula_memo: bool = True
    message_pool: bool = True
    dfa_lane: bool = True
    hybrid_gate: bool = True
    fused_network: bool = True

    def to_obj(self) -> object:
        """Checkpoint encoding: plain bool for the two endpoint presets
        (keeps old-format checkpoints round-tripping), a dict otherwise."""
        if self == ALL_OPTIMIZATIONS:
            return True
        if self == NO_OPTIMIZATIONS:
            return False
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def describe(self) -> str:
        on = [f.name for f in fields(self) if getattr(self, f.name)]
        return "+".join(on) if on else "none"


#: Every knob on — the default, and what ``optimize=True`` means.
ALL_OPTIMIZATIONS = OptimizationFlags()
#: The literal Fig. 11 semantics — what ``optimize=False`` means.
NO_OPTIMIZATIONS = OptimizationFlags(
    star_fusion=False,
    routing=False,
    formula_memo=False,
    message_pool=False,
    dfa_lane=False,
    hybrid_gate=False,
    fused_network=False,
)


def as_flags(value: object) -> OptimizationFlags:
    """Normalize an ``optimize=`` argument (or its checkpoint encoding).

    Accepts an :class:`OptimizationFlags`, a bool (endpoint presets) or
    the dict encoding :meth:`OptimizationFlags.to_obj` produces.
    """
    if isinstance(value, OptimizationFlags):
        return value
    if isinstance(value, dict):
        known = {f.name for f in fields(OptimizationFlags)}
        unknown = set(value) - known
        if unknown:
            raise ValueError(f"unknown optimization flag(s): {sorted(unknown)}")
        return OptimizationFlags(**{k: bool(v) for k, v in value.items()})
    return ALL_OPTIMIZATIONS if value else NO_OPTIMIZATIONS


def all_knob_combinations() -> list[OptimizationFlags]:
    """Every single-knob-off variant plus the two endpoints.

    The differential suite runs each against ``NO_OPTIMIZATIONS`` — wide
    enough to attribute a divergence to one knob without paying for the
    full 2^n product on every test run.
    """
    names = [f.name for f in fields(OptimizationFlags)]
    combos = [ALL_OPTIMIZATIONS, NO_OPTIMIZATIONS]
    combos.extend(
        OptimizationFlags(**{name: False}) for name in names
    )
    combos.extend(
        OptimizationFlags(**{n: n == name for n in names}) for name in names
    )
    return combos
