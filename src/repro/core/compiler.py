"""Translation of rpeq into SPEX networks — the function ``C`` of Fig. 11.

The translation is compositional and linear-time (Lemma V.1): every rpeq
construct contributes a constant number of transducers::

    C[label]        ->  CH(label)
    C[label+]       ->  CL(label)
    C[label*]       ->  SP --+-> CL(label) -+-> JO          (epsilon bypass)
                              +-------------+
    C[E?]           ->  SP --+-> C[E] ------+-> JO
                              +-------------+
    C[(E1|E2)]      ->  SP --+-> C[E1] -----+-> JO -> UN
                              +-> C[E2] -----+
    C[E1.E2]        ->  C[E2] after C[E1]
    C[E[F]]         ->  C[E] -> VC(q) -> SP --+-> (main) ------------+-> JO
                                               +-> C[F] -> VF(q+) -> VD(q) -+

The input transducer is prepended and the output transducer appended
afterwards, exactly as in Sec. III.9.
"""

from __future__ import annotations

import itertools

from ..conditions.store import ConditionStore, VariableAllocator
from ..errors import CompilationError
from ..rpeq.ast import (
    Concat,
    Empty,
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)
from .axis_transducers import FollowingTransducer, PrecedingTransducer
from .flow_transducers import JoinTransducer, SplitTransducer, UnionTransducer
from .network import Network
from .optimize import OptimizationFlags, as_flags
from .output_tx import OutputTransducer
from .path_transducers import (
    ChildTransducer,
    ClosureTransducer,
    InputTransducer,
    StarTransducer,
)
from .qualifier_transducers import VariableCreator, VariableDeterminant, VariableFilter
from .transducer import Transducer


class _Compiler:
    """Stateful helper threading the network through the recursion."""

    def __init__(
        self,
        network: Network,
        allocator: VariableAllocator,
        store: ConditionStore,
        optimize: bool = True,
    ) -> None:
        self.network = network
        self.allocator = allocator
        self.store = store
        self.optimize = optimize
        self._qualifier_ids = itertools.count()
        #: pseudo-qualifier ids of preceding-axis speculations; shared
        #: (live) with the determinant/preceding transducers for the
        #: chained-axis pairing fallback
        self.speculation_ids: set[str] = set()

    def compile(
        self,
        expr: Rpeq,
        tape: Transducer,
        branch_head: str | None = None,
    ) -> tuple[Transducer, frozenset[str]]:
        """Extend the network with ``C[expr]`` starting from ``tape``.

        Args:
            branch_head: enclosing qualifier id when compiling inside a
                qualifier condition (``None`` on the main path); the
                preceding-axis transducer switches semantics on it.

        Returns:
            The transducer whose output tape carries the sub-expression's
            results, and the set of qualifier ids allocated inside the
            sub-expression (needed by enclosing qualifier filters).
        """
        net = self.network
        if isinstance(expr, Empty):
            return tape, frozenset()
        if isinstance(expr, Label):
            return net.add(ChildTransducer(expr), tape), frozenset()
        if isinstance(expr, Plus):
            return net.add(ClosureTransducer(expr.label), tape), frozenset()
        if isinstance(expr, Following):
            transducer = FollowingTransducer(
                expr.label, self.store, branch=branch_head is not None
            )
            return net.add(transducer, tape), frozenset()
        if isinstance(expr, Preceding):
            # The preceding transducer speculates with condition
            # variables; their pseudo-qualifier id must be owned by any
            # enclosing qualifier so variable-filters keep them.
            qualifier_id = f"q{next(self._qualifier_ids)}"
            self.speculation_ids.add(qualifier_id)
            transducer = PrecedingTransducer(
                expr.label,
                qualifier_id,
                self.allocator,
                self.store,
                branch_head=branch_head,
                speculation_ids=self.speculation_ids,
            )
            return net.add(transducer, tape), frozenset((qualifier_id,))
        if isinstance(expr, Star):
            if self.optimize:
                # Fused descendant-or-self node; semantically identical
                # to the literal split/closure/join of Fig. 11 (the E10
                # ablation measures the difference).
                return net.add(StarTransducer(expr.label), tape), frozenset()
            split = net.add(SplitTransducer(), tape)
            closure = net.add(ClosureTransducer(expr.label), split)
            join = net.add(JoinTransducer(), closure, split)
            return join, frozenset()
        if isinstance(expr, OptionalExpr):
            split = net.add(SplitTransducer(), tape)
            inner, owned = self.compile(expr.inner, split, branch_head)
            join = net.add(JoinTransducer(), inner, split)
            return join, owned
        if isinstance(expr, Union):
            split = net.add(SplitTransducer(), tape)
            left, left_owned = self.compile(expr.left, split, branch_head)
            right, right_owned = self.compile(expr.right, split, branch_head)
            join = net.add(JoinTransducer(), left, right)
            union = net.add(UnionTransducer(), join)
            return union, left_owned | right_owned
        if isinstance(expr, Concat):
            # Flatten iteratively: concatenation chains grow with the
            # query length (Lemma V.1 workloads reach thousands of
            # steps), so recursing per step would exhaust the stack.
            parts: list[Rpeq] = []
            stack: list[Rpeq] = [expr]
            while stack:
                node = stack.pop()
                if isinstance(node, Concat):
                    stack.append(node.right)
                    stack.append(node.left)
                else:
                    parts.append(node)
            owned: frozenset[str] = frozenset()
            for part in parts:
                tape, part_owned = self.compile(part, tape, branch_head)
                owned |= part_owned
            return tape, owned
        if isinstance(expr, Qualifier):
            base, base_owned = self.compile(expr.base, tape, branch_head)
            qualifier_id = f"q{next(self._qualifier_ids)}"
            # Following-axis evidence can arrive after the qualified
            # element closes; defer the instance close to </$> then.
            defer_close = any(
                isinstance(node, Following) for node in expr.condition.walk()
            )
            creator = net.add(
                VariableCreator(
                    qualifier_id,
                    self.allocator,
                    self.store,
                    close_at_document_end=defer_close,
                ),
                base,
            )
            split = net.add(SplitTransducer(), creator)
            branch, inner_owned = self.compile(
                expr.condition, split, branch_head=qualifier_id
            )
            owned = frozenset((qualifier_id,)) | inner_owned
            fltr = net.add(VariableFilter(owned, positive=True), branch)
            determinant = net.add(
                VariableDeterminant(qualifier_id, self.speculation_ids), fltr
            )
            join = net.add(JoinTransducer(), split, determinant)
            return join, owned | base_owned
        raise CompilationError(f"cannot compile {type(expr).__name__}")


def compile_network(
    expr: Rpeq,
    collect_events: bool = True,
    optimize: "bool | OptimizationFlags" = True,
    limits=None,
) -> tuple[Network, ConditionStore]:
    """Build a fresh SPEX network for an rpeq query.

    Args:
        expr: the query AST.
        collect_events: whether the output transducer buffers result
            fragments (off: positions only).
        optimize: optimization knobs — ``True`` (every knob of
            :class:`repro.core.optimize.OptimizationFlags` on),
            ``False`` (the literal Fig. 11 translation and evaluation,
            used by the differential tests and the E10 ablation), or an
            explicit :class:`~repro.core.optimize.OptimizationFlags`
            for per-knob control.
        limits: optional :class:`repro.limits.ResourceLimits`; arms the
            network's depth/σ/event-budget guards and the output
            transducer's buffer ceilings.

    Returns the finalized network and its condition store.  The network
    carries evaluation state, so one network evaluates one stream; the
    engine builds a new network per run (compilation is linear in the
    query, Lemma V.1, so this is cheap).
    """
    flags = as_flags(optimize)
    store = ConditionStore()
    allocator = VariableAllocator()
    source = InputTransducer()
    sink = OutputTransducer(store, collect_events=collect_events, limits=limits)
    network = Network(source, sink, limits=limits, flags=flags)
    compiler = _Compiler(network, allocator, store, optimize=flags.star_fusion)
    tape, _owned = compiler.compile(expr, source)
    network.add(sink, tape)
    network.condition_store = store
    #: exposed for checkpointing — resuming a run must continue the
    #: variable uid sequence, not restart it
    network.allocator = allocator
    network.finalize()
    return network, store
