"""Supervised execution of streaming runs against unreliable sources.

The engine's contract assumes the source iterator either yields events or
ends; real feeds also *break* (connection resets) and *stall* (silent
peers).  :class:`Supervisor` wraps an engine + a reconnectable source
factory and turns those failure modes into a single behavior: checkpoint
at the failure boundary, back off, reconnect, resume — so a flaky source
costs retries, never correctness.

The correctness argument, in two parts:

* **Failure boundary.**  When the source iterator raises, the exception
  propagates through the engine's event loop at the moment the *next*
  event was requested — i.e. every event delivered so far is fully
  processed and its matches have been consumed downstream.  The cursor
  therefore points exactly between the last processed event and the
  failure, and a checkpoint taken right there resumes with zero
  duplicated and zero dropped matches.
* **Cadence boundary.**  Periodic checkpoints ride the same boundary: the
  cadence hook is a generator wrapped around the source whose
  post-``yield`` code runs only when the engine pulls the next event,
  which (because the whole pipeline is pull-driven) happens only after
  the supervisor's consumer has drained the previous event's matches.

Stalls are unified with transient errors by a watchdog: a reader thread
moves source events into a queue, and the supervisor-side iterator raises
:class:`StallError` when no event arrives within ``heartbeat_timeout`` —
turning "silent peer" into an exception the retry loop already handles.

Typical use::

    from repro import SpexEngine, Supervisor, SupervisorConfig

    engine = SpexEngine("_*.trade[price].symbol")
    supervisor = Supervisor(
        engine,
        source_factory=reconnect,          # () -> fresh event iterable
        config=SupervisorConfig(
            max_retries=5,
            heartbeat_timeout=30.0,
            checkpoint_every_events=10_000,
            checkpoint_dir="/var/lib/spex",
        ),
    )
    for match in supervisor.run():
        publish(match)
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from queue import Empty, Queue
from threading import Thread
from typing import Callable, Iterable, Iterator

from ..errors import CheckpointError, ReproError
from ..xmlstream.events import Event
from ..xmlstream.offsets import StreamCursor
from ..xmlstream.parser import iter_events
from .checkpoint import Checkpoint
from .clock import SYSTEM_CLOCK, Clock, _CallableClock

#: File name the supervisor writes inside ``checkpoint_dir``.  A single
#: rolling file — each save atomically replaces the previous one, so the
#: directory always holds exactly one good checkpoint.
CHECKPOINT_FILENAME = "checkpoint.json"


class StallError(ReproError):
    """The source produced no event within ``heartbeat_timeout`` seconds.

    Raised *into the engine loop* by the watchdog wrapper, at the same
    between-events boundary a source ``IOError`` would surface at — so
    the supervisor handles hangs and crashes with the same machinery.
    """


@dataclass
class SupervisorConfig:
    """Retry, watchdog and checkpoint-cadence policy.

    Attributes:
        max_retries: consecutive failed reconnects tolerated before the
            last error propagates.  The counter resets whenever a
            connection makes progress (delivers at least one new event),
            so a long stream with occasional blips never exhausts it.
        backoff_initial: delay before the first retry, in seconds.
        backoff_factor: multiplier applied per consecutive failure.
        backoff_max: ceiling on the delay.
        jitter: +/- fraction of the delay randomized away (seeded), to
            de-synchronize reconnect herds.
        heartbeat_timeout: seconds of source silence before the watchdog
            raises :class:`StallError`; ``None`` disables the watchdog
            (and its reader thread).
        on_stall: ``"reconnect"`` treats a stall like a transient error
            (checkpoint, back off, reconnect); ``"checkpoint_exit"``
            writes a checkpoint and re-raises, handing the decision to
            the operator with a resumable file on disk.
        checkpoint_every_events: cadence floor in events (``None`` = off).
        checkpoint_every_seconds: cadence floor in seconds (``None`` = off).
        checkpoint_dir: directory for the rolling checkpoint file; when
            ``None``, cadence/failure checkpoints stay in memory only.
        retry_on: exception types treated as transient.  Anything else —
            malformed XML, resource-limit hits, engine bugs — propagates
            immediately: retrying cannot fix a poisoned stream.
        seed: seeds the jitter randomness (reproducible schedules).
    """

    max_retries: int = 5
    backoff_initial: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    heartbeat_timeout: float | None = None
    on_stall: str = "reconnect"
    checkpoint_every_events: int | None = None
    checkpoint_every_seconds: float | None = None
    checkpoint_dir: str | None = None
    retry_on: tuple[type[BaseException], ...] = (OSError,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.on_stall not in ("reconnect", "checkpoint_exit"):
            raise ValueError(
                f"on_stall must be 'reconnect' or 'checkpoint_exit', "
                f"got {self.on_stall!r}"
            )


class ExponentialBackoff:
    """Seeded exponential backoff with jitter, shared retry discipline.

    Extracted from the supervisor so the shard coordinator
    (:mod:`repro.core.shards`) restarts crashed workers under exactly
    the same schedule a supervised reconnect uses.  ``delay(failures)``
    is a pure function of the seeded RNG stream, so schedules are
    reproducible.
    """

    def __init__(
        self,
        initial: float = 0.1,
        factor: float = 2.0,
        maximum: float = 30.0,
        jitter: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.initial = initial
        self.factor = factor
        self.maximum = maximum
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, failures: int) -> float:
        """Backoff delay for the ``failures``-th consecutive failure (≥1)."""
        delay = min(self.maximum, self.initial * self.factor ** (failures - 1))
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)


@dataclass
class SupervisorReport:
    """What one supervised run went through (readable mid-run).

    Attributes:
        connects: connections opened (first attempt included).
        retries: reconnects after a failure.
        stalls: heartbeat-timeout firings.
        checkpoints_written: checkpoints taken (cadence + failure + final).
        last_checkpoint_path: most recent on-disk checkpoint, if any.
        completed: the source was drained to its natural end.
    """

    connects: int = 0
    retries: int = 0
    stalls: int = 0
    checkpoints_written: int = 0
    last_checkpoint_path: str | None = None
    completed: bool = False


def _watchdog(events: Iterable[Event], timeout: float) -> Iterator[Event]:
    """Yield ``events``, raising :class:`StallError` on source silence.

    A daemon reader thread drains the source into a bounded queue; the
    consumer side waits at most ``timeout`` per event.  The buffer means
    slow *engine* processing never trips the watchdog — only a source
    that stops producing does.
    """
    queue: Queue = Queue(maxsize=64)

    def reader() -> None:
        try:
            for event in events:
                queue.put(("event", event))
            queue.put(("end", None))
        except BaseException as exc:  # propagate everything to the consumer
            queue.put(("raise", exc))

    Thread(target=reader, daemon=True, name="spex-source-reader").start()
    while True:
        try:
            kind, value = queue.get(timeout=timeout)
        except Empty:
            raise StallError(
                f"source produced no event for {timeout}s"
            ) from None
        if kind == "event":
            yield value
        elif kind == "end":
            return
        else:
            raise value


class Supervisor:
    """Run an engine against a flaky source until the stream completes.

    Works with any engine exposing the checkpoint protocol —
    ``run(source, cursor=...)``, ``checkpoint()``, ``resume(checkpoint,
    source)`` and a ``robustness`` counter set — i.e. both
    :class:`~repro.core.engine.SpexEngine` and
    :class:`~repro.core.multiquery.MultiQueryEngine`; matches are
    forwarded in whatever shape the engine yields them.

    Args:
        engine: the engine to supervise.
        source_factory: zero-argument callable returning a *fresh*
            connection each call — XML text, a file path, or an event
            iterable.  Every connection must replay the same stream from
            the start (resume seeks past the already-processed prefix).
        config: policy knobs; defaults retry up to 5 times with
            exponential backoff and take no periodic checkpoints.
        sleep: injectable backoff sleeper (tests pass a recorder);
            overrides the clock's sleeper when given.
        clock: a :class:`~repro.core.clock.Clock` (pass a
            :class:`~repro.core.clock.FakeClock` in tests) or, for
            backward compatibility, a bare monotonic callable.
    """

    def __init__(
        self,
        engine,
        source_factory: Callable[[], object],
        config: SupervisorConfig | None = None,
        sleep: Callable[[float], None] | None = None,
        clock: Clock | Callable[[], float] | None = None,
    ) -> None:
        self.engine = engine
        self.source_factory = source_factory
        self.config = config if config is not None else SupervisorConfig()
        self.report = SupervisorReport()
        if isinstance(clock, Clock):
            self.clock: Clock = (
                clock
                if sleep is None
                else _CallableClock(monotonic=clock.monotonic, sleep=sleep)
            )
        elif clock is None and sleep is None:
            self.clock = SYSTEM_CLOCK
        else:
            self.clock = _CallableClock(monotonic=clock, sleep=sleep)
        self._backoff = ExponentialBackoff(
            initial=self.config.backoff_initial,
            factor=self.config.backoff_factor,
            maximum=self.config.backoff_max,
            jitter=self.config.jitter,
            seed=self.config.seed,
        )
        self._cursor: StreamCursor | None = None
        self._checkpointed_position = -1
        self._last_checkpoint_time = self.clock.monotonic()

    # ------------------------------------------------------------------
    # main loop

    def run(self, checkpoint: Checkpoint | None = None) -> Iterator[object]:
        """Supervised evaluation; yields matches as the engine does.

        Args:
            checkpoint: start from this checkpoint instead of the stream
                head (e.g. one loaded from a previous process's
                ``checkpoint_dir``).

        Raises:
            StallError: a stall fired under ``on_stall="checkpoint_exit"``
                (a checkpoint is on disk when ``checkpoint_dir`` is set),
                or stalls/errors exhausted ``max_retries``.
            OSError: the source kept failing past ``max_retries``.
        """
        config = self.config
        failures = 0
        retryable = tuple(config.retry_on) + (StallError,)
        if checkpoint is not None:
            self._checkpointed_position = checkpoint.position
        while True:
            started_at = (
                checkpoint.position if checkpoint is not None else 0
            )
            try:
                yield from self._attempt(checkpoint)
            except retryable as exc:
                stalled = isinstance(exc, StallError)
                if stalled:
                    self.report.stalls += 1
                    self.engine.robustness.stalls_detected += 1
                # Engine state is intact at the failure boundary — bank it.
                banked = self._take_checkpoint()
                if banked is not None:
                    checkpoint = banked
                if stalled and config.on_stall == "checkpoint_exit":
                    raise
                progressed = (
                    self._cursor is not None
                    and self._cursor.events_read > started_at
                )
                failures = 1 if progressed else failures + 1
                if failures > config.max_retries:
                    raise
                self.report.retries += 1
                self.engine.robustness.retries += 1
                self.clock.sleep(self._backoff_delay(failures))
                continue
            # Natural end of stream: bank a final checkpoint so a restart
            # is a no-op, and report success.
            self._take_checkpoint()
            self.report.completed = True
            return

    def _attempt(self, checkpoint: Checkpoint | None) -> Iterator[object]:
        """One connection's worth of evaluation."""
        source = self.source_factory()
        self.report.connects += 1
        events: Iterable[Event] = iter_events(source)
        if self.config.heartbeat_timeout is not None:
            events = _watchdog(events, self.config.heartbeat_timeout)
        events = self._with_cadence(events)
        if checkpoint is None:
            self._cursor = StreamCursor()
            yield from self.engine.run(events, cursor=self._cursor)
        else:
            run = self.engine.resume(checkpoint, events)
            # resume() installed the restored cursor; track it for
            # cadence and progress accounting.
            self._cursor = self.engine._last_cursor
            yield from run

    # ------------------------------------------------------------------
    # checkpoint cadence

    def _with_cadence(self, events: Iterable[Event]) -> Iterator[Event]:
        """Source wrapper firing the cadence check between events.

        The code after ``yield`` runs when the engine requests the next
        event — by then the previous event is fully processed and its
        matches consumed, the exact boundary where checkpointing is safe.
        """
        for event in events:
            yield event
            self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        config = self.config
        if (
            config.checkpoint_every_events is None
            and config.checkpoint_every_seconds is None
        ):
            return
        cursor = self._cursor
        if cursor is None or cursor.events_read <= self._checkpointed_position:
            return  # no progress since the last checkpoint (e.g. resume skip)
        due = (
            config.checkpoint_every_events is not None
            and cursor.events_read - max(self._checkpointed_position, 0)
            >= config.checkpoint_every_events
        ) or (
            config.checkpoint_every_seconds is not None
            and self.clock.monotonic() - self._last_checkpoint_time
            >= config.checkpoint_every_seconds
        )
        if due:
            self._take_checkpoint()

    def _take_checkpoint(self) -> Checkpoint | None:
        """Snapshot the engine now; persist it when a dir is configured."""
        try:
            checkpoint = self.engine.checkpoint()
        except CheckpointError:
            return None  # nothing ran yet; keep whatever we had
        self._checkpointed_position = checkpoint.position
        self._last_checkpoint_time = self.clock.monotonic()
        self.report.checkpoints_written += 1
        if self.config.checkpoint_dir is not None:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            path = os.path.join(self.config.checkpoint_dir, CHECKPOINT_FILENAME)
            checkpoint.save(path)
            self.report.last_checkpoint_path = path
        return checkpoint

    # ------------------------------------------------------------------
    # backoff

    def _backoff_delay(self, failures: int) -> float:
        """Exponential backoff with seeded jitter (failures >= 1)."""
        return self._backoff.delay(failures)


def supervise(
    engine,
    source_factory: Callable[[], object],
    checkpoint: Checkpoint | None = None,
    **config_kwargs,
) -> Iterator[object]:
    """One-shot convenience: build a :class:`Supervisor` and run it."""
    supervisor = Supervisor(
        engine, source_factory, SupervisorConfig(**config_kwargs)
    )
    return supervisor.run(checkpoint)
