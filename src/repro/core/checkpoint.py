"""Durable, verifiable snapshots of in-flight streaming runs.

The paper's complexity results are what make this layer cheap: per
Theorems IV.2/VI.1 a SPEX run's state is a set of per-transducer stacks
bounded by stream depth times formula size, plus the output transducer's
candidate buffer — kilobytes for realistic queries, not the stream read
so far.  A :class:`Checkpoint` captures exactly that state (every
transducer stack, the condition store, the output candidates) together
with the source position it corresponds to, so a crashed or deliberately
stopped run can continue from the cut instead of re-reading from byte
zero.

Format: a single JSON document::

    {
      "version": 1,            # format version, checked on load
      "kind": "spex",          # which engine wrote it ("spex"/"multiquery")
      "payload": {...},        # engine-specific state (stable dict forms)
      "checksum": "sha256:..." # over the canonical encoding of the rest
    }

The checksum makes corruption (truncated writes, disk errors, manual
edits) a loud :class:`~repro.errors.CheckpointError` instead of silently
wrong matches after resume.  :meth:`Checkpoint.save` writes atomically —
temp file in the target directory, flush+fsync, ``os.replace`` — so a
crash *during* checkpointing leaves the previous checkpoint intact, never
a half-written one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

from ..errors import CheckpointError

#: Current checkpoint format version.  Bump on any payload shape change;
#: loading a different version raises (no silent cross-version reads).
CHECKPOINT_VERSION = 1


def _canonical(body: dict) -> bytes:
    """Deterministic encoding the checksum is computed over."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _checksum(body: dict) -> str:
    return "sha256:" + hashlib.sha256(_canonical(body)).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One resumable cut of a streaming run.

    Attributes:
        kind: the engine family that wrote it (``"spex"`` for
            :class:`~repro.core.engine.SpexEngine`, ``"multiquery"`` for
            :class:`~repro.core.multiquery.MultiQueryEngine`).
        payload: engine-specific state in stable dict form.  Always
            contains a ``"cursor"`` entry with the source position.
    """

    kind: str
    payload: dict = field(repr=False)
    version: int = CHECKPOINT_VERSION

    # ------------------------------------------------------------------
    # convenience accessors

    @property
    def position(self) -> int:
        """Number of source events the checkpointed run had consumed."""
        return int(self.payload["cursor"]["events_read"])

    @property
    def cursor_state(self) -> dict:
        """The source-position record (see ``StreamCursor.state``)."""
        return self.payload["cursor"]

    def require(self, kind: str) -> dict:
        """Payload, after asserting the checkpoint came from ``kind``."""
        if self.kind != kind:
            raise CheckpointError(
                f"checkpoint was written by a {self.kind!r} engine, "
                f"cannot resume it with a {kind!r} engine"
            )
        return self.payload

    # ------------------------------------------------------------------
    # (de)serialization

    def to_dict(self) -> dict:
        """Stable dict form, with the integrity checksum filled in."""
        body = {"version": self.version, "kind": self.kind, "payload": self.payload}
        return {**body, "checksum": _checksum(body)}

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        """Decode and verify a checkpoint dict.

        Raises:
            CheckpointError: missing fields, unsupported version, or a
                checksum mismatch (the bytes were altered since
                :meth:`to_dict`).
        """
        try:
            version = data["version"]
            kind = data["kind"]
            payload = data["payload"]
            checksum = data["checksum"]
        except (TypeError, KeyError) as exc:
            raise CheckpointError(f"malformed checkpoint: missing {exc}") from None
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        body = {"version": version, "kind": kind, "payload": payload}
        expected = _checksum(body)
        if checksum != expected:
            raise CheckpointError(
                "checkpoint integrity check failed: stored checksum "
                f"{checksum!r} != computed {expected!r}"
            )
        return cls(kind=kind, payload=payload, version=version)

    def save(self, path: str | os.PathLike[str], keep: int = 1) -> None:
        """Write the checkpoint to ``path`` atomically.

        The bytes land in a temp file in the same directory and are
        fsynced before an ``os.replace`` — so the file at ``path`` is
        always either the previous checkpoint or this one, never a
        torn write.  Safe under concurrent writers sharing one
        checkpoint directory (the sharded engine runs one writer per
        worker process): temp names embed the writer's pid on top of
        ``mkstemp``'s own randomness, and the directory entry is fsynced
        after the rename so a crashed host cannot resurrect a stale
        name→inode mapping.

        Args:
            keep: how many generations to retain.  With ``keep > 1`` the
                previous snapshots are shifted to ``path.1``, ``path.2``,
                ... before the replace, so :meth:`load` can fall back to
                an older generation if the newest one is damaged on
                disk.  Rotation renames are not safe under *concurrent*
                writers sharing one path (the sharded engine), so the
                default stays ``keep=1`` — a single live file, exactly
                the pre-rotation behaviour.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        data = json.dumps(self.to_dict(), sort_keys=True, indent=1)
        if keep > 1:
            _rotate(path, keep)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=f".checkpoint-{os.getpid()}-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds: rename is still atomic
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "Checkpoint":
        """Read and verify a checkpoint file written by :meth:`save`.

        If the file at ``path`` is torn, truncated, or fails its
        checksum, older rotated generations (``path.1``, ``path.2``,
        ...) written by :meth:`save` with ``keep > 1`` are tried in
        order; the newest one that verifies wins.  Only when every
        generation is unreadable does the *newest* failure propagate —
        falling back silently to stale state without saying so would be
        worse than the original corruption.
        """
        try:
            return cls._load_one(path)
        except CheckpointError as exc:
            primary_error = exc
        base = os.fspath(path)
        generation = 1
        while os.path.exists(f"{base}.{generation}"):
            try:
                return cls._load_one(f"{base}.{generation}")
            except CheckpointError:
                generation += 1
                continue
        raise primary_error

    @classmethod
    def _load_one(cls, path: str | os.PathLike[str]) -> "Checkpoint":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        return cls.from_dict(data)


def _rotate(path: str, keep: int) -> None:
    """Shift ``path`` → ``path.1`` → ... → ``path.keep-1`` (oldest drops).

    Renames happen oldest-first so each generation moves exactly one
    slot; a crash mid-rotation leaves every snapshot intact under *some*
    name that :meth:`Checkpoint.load` still probes.
    """
    for generation in range(keep - 1, 0, -1):
        source = path if generation == 1 else f"{path}.{generation - 1}"
        if os.path.exists(source):
            try:
                os.replace(source, f"{path}.{generation}")
            except OSError:
                pass  # rotation is best-effort; the new save still lands
