"""Tracing network runs — the paper's transition-sequence figures.

The paper explains its examples with tables showing, for each transducer,
what it did on each document message (Figs. 4, 5 and 13).  This module
reproduces those tables for any query and stream: a :class:`Tracer` wraps
every transducer in a network and records, per stream event, the messages
each transducer consumed and produced, summarized into compact action
codes:

    .        forwarded without processing
    M        matched (emitted an activation)
    A        absorbed an activation (scope opened at the next tag)
    V        created a condition variable
    T/F      emitted determination evidence / closed a variable
    C        created a result candidate
    R        emitted a result

Use :func:`trace_run` for a one-shot table::

    print(trace_run("_*.a[b].c", "<a><a><c/></a><b/><c/></a>"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..rpeq.ast import Rpeq
from ..rpeq.parser import parse
from ..xmlstream.events import Event
from ..xmlstream.parser import iter_events
from .compiler import compile_network
from .flow_transducers import JoinTransducer
from .messages import Activation, Close, Contribute, Doc, Message
from .output_tx import OutputTransducer
from .qualifier_transducers import VariableCreator
from .transducer import Transducer


@dataclass
class TraceRow:
    """Per-transducer action codes, one cell per stream event."""

    name: str
    cells: list[str] = field(default_factory=list)


def _summarize(node: Transducer, consumed: list[Message], produced: list[Message], emitted_match: bool) -> str:
    codes: list[str] = []
    in_activations = sum(1 for m in consumed if isinstance(m, Activation))
    out_activations = sum(1 for m in produced if isinstance(m, Activation))
    if isinstance(node, VariableCreator) and out_activations:
        codes.append("V")
    elif out_activations > in_activations or (
        out_activations and not isinstance(node, (JoinTransducer,))
        and in_activations == 0
    ):
        codes.append("M")
    if in_activations and not out_activations:
        codes.append("A")
    if any(isinstance(m, Contribute) for m in produced if m not in consumed):
        codes.append("T")
    if any(isinstance(m, Close) for m in produced if m not in consumed):
        codes.append("F")
    if isinstance(node, OutputTransducer):
        if in_activations:
            codes.append("C")
        if emitted_match:
            codes.append("R")
    return "".join(codes) or "."


class Tracer:
    """Wraps a compiled network and records a Fig. 4/5/13-style table."""

    def __init__(self, query: str | Rpeq, optimize: bool = False) -> None:
        expr = parse(query) if isinstance(query, str) else query
        self.network, self.store = compile_network(expr, optimize=optimize)
        self.headers: list[str] = []
        self.rows = [TraceRow(node.name) for node in self.network.nodes]
        self.matches: list = []

    def feed(self, events: Iterable[Event]) -> None:
        """Process a stream, recording one table column per event."""
        nodes = self.network.nodes
        for event in events:
            self.headers.append(str(event))
            inputs: dict[int, list[Message]] = {}
            # Re-implement the network pass so per-node inputs/outputs
            # are observable.
            outputs: dict[int, list[Message]] = {}
            for node in nodes:
                predecessors = self.network.predecessors_of(node)
                if not predecessors:
                    consumed = [Doc(event)]
                    produced = node.feed(consumed)
                elif isinstance(node, JoinTransducer):
                    left, right = predecessors
                    consumed = outputs[id(left)] + outputs[id(right)]
                    produced = node.feed2(outputs[id(left)], outputs[id(right)])
                else:
                    consumed = outputs[id(predecessors[0])]
                    produced = node.feed(consumed)
                inputs[id(node)] = consumed
                outputs[id(node)] = produced
            sink = self.network.sink
            new_matches = list(sink.results)
            sink.results.clear()
            self.matches.extend(new_matches)
            for row, node in zip(self.rows, nodes):
                row.cells.append(
                    _summarize(
                        node,
                        inputs[id(node)],
                        outputs[id(node)],
                        bool(new_matches) and node is sink,
                    )
                )

    def table(self) -> str:
        """Render the transition table in the paper's layout."""
        name_width = max((len(row.name) for row in self.rows), default=4)
        cell_width = max((len(h) for h in self.headers), default=4)
        cell_width = max(
            cell_width,
            max((len(c) for row in self.rows for c in row.cells), default=1),
        )
        header = " " * name_width + " | " + " ".join(
            h.rjust(cell_width) for h in self.headers
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                row.name.ljust(name_width)
                + " | "
                + " ".join(cell.rjust(cell_width) for cell in row.cells)
            )
        return "\n".join(lines)


def trace_run(query: str | Rpeq, source, optimize: bool = False) -> str:
    """Evaluate ``query`` over ``source`` and return the transition table."""
    tracer = Tracer(query, optimize=optimize)
    tracer.feed(iter_events(source))
    return tracer.table()
