"""The SPEX engine facade — the library's main entry point.

Typical use::

    from repro import SpexEngine

    engine = SpexEngine("_*.country[province].name")
    for match in engine.run("mondial.xml"):
        print(match.position, match.to_xml())

An engine holds the *query* (parsed once); each :meth:`run` compiles a
fresh transducer network (linear time, Lemma V.1) so engines are reusable
and runs are independent.  Results are yielded progressively, in document
order, as soon as their membership is decided — the defining property of
the paper's evaluation model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..analysis.metrics import QueryProfile, analyze
from ..errors import CheckpointError, EngineError, ResourceLimitError
from ..limits import ResourceLimits
from ..rpeq.ast import Rpeq
from ..rpeq.parser import parse
from ..rpeq.unparse import unparse
from ..xmlstream.events import Event
from ..xmlstream.offsets import StreamCursor, skip_events
from ..xmlstream.parser import iter_events
from ..xmlstream.recovery import (
    ErrorReport,
    RecoveryPolicy,
    as_policy,
    recovered_documents,
)
from ..xmlstream.validate import checked
from .checkpoint import Checkpoint
from .compiler import compile_network
from .network import Network, NetworkStats
from .optimize import OptimizationFlags, as_flags
from .output_tx import Match, OutputStats


@dataclass
class RobustnessCounters:
    """Recovery-machinery odometer for one engine (across runs).

    Incremented by :meth:`SpexEngine.checkpoint`/:meth:`SpexEngine.resume`
    and by the supervisor (:mod:`repro.core.supervisor`) as it retries
    sources and detects stalls; surfaced through
    :attr:`EngineStats <SpexEngine.stats>` and the CLI recovery summary.
    """

    checkpoints_written: int = 0
    restores: int = 0
    retries: int = 0
    stalls_detected: int = 0
    # Serving-layer counters (bulkheads, breakers, admission, shedding);
    # incremented by MultiQueryEngine.serve().
    quarantines: int = 0
    breaker_trips: int = 0
    readmissions: int = 0
    load_sheds: int = 0
    deadline_hits: int = 0
    admissions_rejected: int = 0


@dataclass
class EngineStats:
    """Everything the complexity experiments measure, for one run.

    Attributes:
        network: per-transducer instrumentation roll-up.
        output: candidate buffering metrics of the output transducer.
        condition_variables: total qualifier instances created.
        peak_live_variables: worst-case undetermined instances (≤ d per
            qualifier in the paper's analysis).
        query: structural metrics of the evaluated query.
        documents_skipped: documents quarantined by the recovery layer
            (``on_error="skip"``) or abandoned after a resource limit.
        events_repaired: events synthesized/rewritten by
            ``on_error="repair"``.
        limit_hits: resource-guard firings — raised
            :class:`~repro.errors.ResourceLimitError` occurrences plus
            candidates evicted by the ``drop_oldest`` overflow policy.
        checkpoints_written: checkpoints taken from this engine.
        restores: runs started from a checkpoint.
        retries: source reconnects performed by the supervisor.
        stalls_detected: heartbeat-timeout firings in the supervisor.
        quarantines: per-query bulkhead detachments in the serving layer.
        breaker_trips: circuit-breaker openings (serving layer).
        readmissions: breakers re-closed after a successful probe.
        load_sheds: queries shed at the aggregate-buffer high-water mark.
        deadline_hits: per-query deadline expiries (document + stream).
        admissions_rejected: queries refused at admission control.
        fastlane_dfa_queries: queries executed on the shared lazy DFA
            (multi-query engines only; the ``lane-differential`` CI gate
            asserts this equals the planner's dfa-lane count).
        fastlane_hybrid_queries: queries executed natively on the DFA
            with per-candidate condition automata.
        fastlane_gated_queries: network queries running behind the DFA
            subtree gate.
        fastlane_demotions: planned fast lanes demoted to the network at
            compile time (``PLAN005``).
        fastlane_states: interned product-DFA states.
        fastlane_saturated_steps: subset-construction steps taken past
            the determinization memo bound (uncached but bounded).
    """

    network: NetworkStats = field(default_factory=NetworkStats)
    output: OutputStats = field(default_factory=OutputStats)
    condition_variables: int = 0
    peak_live_variables: int = 0
    query: QueryProfile | None = None
    documents_skipped: int = 0
    events_repaired: int = 0
    limit_hits: int = 0
    checkpoints_written: int = 0
    restores: int = 0
    retries: int = 0
    stalls_detected: int = 0
    quarantines: int = 0
    breaker_trips: int = 0
    readmissions: int = 0
    load_sheds: int = 0
    deadline_hits: int = 0
    admissions_rejected: int = 0
    fastlane_dfa_queries: int = 0
    fastlane_hybrid_queries: int = 0
    fastlane_gated_queries: int = 0
    fastlane_demotions: int = 0
    fastlane_states: int = 0
    fastlane_saturated_steps: int = 0

    def summary(self) -> str:
        """Human-readable one-screen digest of a run's resource profile."""
        lines = [
            f"events processed      : {self.network.events}",
            f"network degree        : {self.network.degree}",
            f"peak stack height     : {self.network.max_stack}",
            f"max formula size (σ)  : {self.network.max_formula_size}",
            f"condition variables   : {self.condition_variables}"
            f" (peak live {self.peak_live_variables})",
            f"candidates            : {self.output.candidates_created}"
            f" created, {self.output.candidates_dropped} dropped",
            f"peak buffered events  : {self.output.peak_buffered_events}",
            f"peak pending results  : {self.output.peak_pending_candidates}",
            f"documents skipped     : {self.documents_skipped}",
            f"events repaired       : {self.events_repaired}",
            f"limit hits            : {self.limit_hits}",
            f"checkpoints written   : {self.checkpoints_written}",
            f"restores              : {self.restores}",
            f"retries               : {self.retries}",
            f"stalls detected       : {self.stalls_detected}",
            f"quarantines           : {self.quarantines}"
            f" ({self.breaker_trips} trip(s), {self.readmissions} readmission(s))",
            f"load sheds            : {self.load_sheds}",
            f"deadline hits         : {self.deadline_hits}",
            f"admissions rejected   : {self.admissions_rejected}",
            f"fast-lane queries     : {self.fastlane_dfa_queries} dfa, "
            f"{self.fastlane_hybrid_queries} hybrid, "
            f"{self.fastlane_gated_queries} gated "
            f"({self.fastlane_demotions} demoted)",
            f"fast-lane DFA states  : {self.fastlane_states}"
            f" ({self.fastlane_saturated_steps} saturated step(s))",
        ]
        if self.query is not None:
            lines.insert(
                0,
                f"query fragment        : {self.query.fragment} "
                f"({self.query.steps} steps, {self.query.qualifiers} "
                f"qualifiers, {self.query.closures} closures)",
            )
        return "\n".join(lines)


class SpexEngine:
    """Streamed, progressive rpeq evaluation (the paper's contribution)."""

    name = "spex"

    def __init__(
        self,
        query: str | Rpeq,
        collect_events: bool = True,
        optimize: "bool | OptimizationFlags" = True,
        simplify_query: bool = False,
        limits: ResourceLimits | None = None,
        preflight: bool = True,
        rewrite: bool = False,
    ) -> None:
        """Create an engine for a query.

        Args:
            query: rpeq source text or an already-parsed AST.
            collect_events: when ``False``, matches carry positions only
                and the output transducer never buffers events — useful
                for benchmarking the matching machinery in isolation.
            optimize: optimization knobs — ``True`` (all), ``False``
                (the literal Fig. 11 network and evaluation) or a
                :class:`repro.core.optimize.OptimizationFlags` for
                per-knob control.
            simplify_query: apply the semantics-preserving rewriter
                (:func:`repro.rpeq.simplify`) before compilation, so
                redundant constructs never become transducers.
            limits: resource guards applied to every run (see
                :class:`repro.limits.ResourceLimits`); ``None`` means
                unbounded, the paper's trusting default.
            preflight: run the static analyzer (:mod:`repro.analysis`)
                over the query, a probe network, and the limits before
                accepting the engine; the report is kept as
                :attr:`analysis`.
            rewrite: opt-in certified query rewriting
                (:func:`repro.analysis.rewrite.rewrite_query`), applied
                before pre-flight and compilation.  Unlike
                ``simplify_query``, every rewrite step is gated on a
                machine-checked equivalence certificate — an uncertified
                rewrite is discarded and the original query runs.  The
                :class:`~repro.analysis.rewrite.RewriteResult` is kept
                as :attr:`rewrite_result` (``None`` when off).

        Raises:
            StaticAnalysisError: pre-flight analysis found an
                error-severity problem (e.g. the certified worst-case
                memory bound already exceeds ``limits``); disable with
                ``preflight=False`` to force evaluation anyway.
        """
        self.query: Rpeq = parse(query) if isinstance(query, str) else query
        if simplify_query:
            from ..rpeq.rewrite import simplify

            self.query = simplify(self.query)
        #: :class:`~repro.analysis.rewrite.RewriteResult` of the opt-in
        #: certified rewrite (``None`` when ``rewrite=False``)
        self.rewrite_result = None
        if rewrite:
            from ..analysis.rewrite import rewrite_query

            result, _report = rewrite_query(self.query)
            self.rewrite_result = result
            if result.certified and result.changed:
                self.query = result.rewritten
        self.collect_events = collect_events
        self.optimize = optimize
        self.limits = limits
        #: pre-flight :class:`~repro.analysis.AnalysisReport` (``None``
        #: when constructed with ``preflight=False``)
        self.analysis = None
        if preflight:
            from ..analysis.preflight import ensure_preflight

            self.analysis = ensure_preflight(
                self.query,
                limits=limits,
                optimize=optimize,
                collect_events=collect_events,
            )
        #: lifetime recovery counters (checkpoints, restores, retries,
        #: stalls); the supervisor increments the latter two
        self.robustness = RobustnessCounters()
        self._last_network: Network | None = None
        self._last_store = None
        self._last_report: ErrorReport | None = None
        self._last_cursor: StreamCursor | None = None

    # ------------------------------------------------------------------
    # evaluation

    def run(
        self,
        source: str | Iterable[Event],
        validate: bool = True,
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
        require_end: bool | None = None,
        cursor: StreamCursor | None = None,
    ) -> Iterator[Match]:
        """Evaluate the query against a stream, yielding matches lazily.

        Args:
            source: XML text, a file path, or an iterable of events
                (see :func:`repro.xmlstream.iter_events`), possibly
                unbounded.
            validate: check stream well-formedness on the fly (a single
                O(depth) stack); malformed input raises
                :class:`~repro.errors.StreamError` instead of silently
                confusing the transducer stacks.
            on_error: recovery policy (see
                :class:`repro.xmlstream.RecoveryPolicy`).  ``"strict"``
                (default) raises at the first violation.  ``"skip"`` and
                ``"repair"`` treat the source as a sequence of
                documents, evaluate each with a fresh network, and
                survive malformed documents and resource-limit hits: the
                poisoned document yields an error record in ``report``
                instead of killing the run.  Under these policies
                matches are delivered per document (positions restart at
                each ``<$>``) and a document's matches are withheld
                until the whole document is known good — the
                quarantine guarantee costs within-document
                progressiveness.
            report: receives per-document
                :class:`~repro.xmlstream.ErrorRecord` entries and
                recovery counters; also readable afterwards via
                :attr:`stats`.
            require_end: raise when the stream ends mid-document.
                ``None`` (default) auto-detects: finite sources (XML
                text, file paths) require a proper end — a truncated
                file no longer passes silently — while live event
                iterables keep prefix semantics.
            cursor: a :class:`~repro.xmlstream.StreamCursor` to track the
                source position, which makes the run *checkpointable*:
                while the run is in flight, :meth:`checkpoint` captures
                engine state tagged with the cursor's position.  Only
                strict runs can be checkpointed (recovery policies
                re-segment the source per document, so a single stream
                position does not determine their state).

        Yields:
            :class:`Match` objects in document order, each as soon as the
            stream prefix read so far decides it (strict mode) or as
            soon as its document is known good (skip/repair).
        """
        policy = as_policy(on_error)
        if require_end is None:
            # Finite sources (text/files) end; every truncation there is
            # an error.  Event iterables may be live/unbounded, where a
            # finite read is just a prefix.
            require_end = isinstance(source, (str, os.PathLike))
        self._last_report = report if report is not None else ErrorReport()
        if policy is not RecoveryPolicy.STRICT:
            if cursor is not None:
                raise EngineError(
                    "checkpoint cursors require on_error='strict' (recovery "
                    "policies re-segment the source per document)"
                )
            self._last_cursor = None
            yield from self._run_recovering(
                source, policy, self._last_report, require_end
            )
            return
        network, store = compile_network(
            self.query,
            collect_events=self.collect_events,
            optimize=self.optimize,
            limits=self.limits,
        )
        self._last_network = network
        self._last_store = store
        self._last_cursor = cursor
        events = iter_events(source)
        if validate:
            events = checked(events, require_end=require_end)
        if cursor is not None:
            # Attach *after* validation so the cursor counts only events
            # that actually reached the network.
            events = cursor.attach(events)
        for event in events:
            yield from network.process_event(event)

    def _run_recovering(
        self,
        source: str | Iterable[Event],
        policy: RecoveryPolicy,
        report: ErrorReport,
        require_end: bool,
    ) -> Iterator[Match]:
        """Document-wise evaluation behind a recovery policy.

        Every recovered document gets a fresh network (so a poisoned
        document cannot corrupt transducer state for its successors) and
        its matches are buffered until the document completes; a
        :class:`~repro.errors.ResourceLimitError` mid-document discards
        that document's matches and files a ``"limit"`` record.
        """
        events = iter_events(source)
        for document in recovered_documents(
            events, policy, report, require_end=require_end
        ):
            network, store = compile_network(
                self.query,
                collect_events=self.collect_events,
                optimize=self.optimize,
                limits=self.limits,
            )
            self._last_network = network
            self._last_store = store
            matches: list[Match] = []
            doc_index = report.documents_seen - 1
            try:
                for event in document:
                    matches.extend(network.process_event(event))
            except ResourceLimitError as exc:
                report.add(doc_index, str(exc), "limit")
                report.documents_skipped += 1
                continue
            yield from matches

    def evaluate(self, source: str | Iterable[Event]) -> list[Match]:
        """Evaluate eagerly and return all matches."""
        return list(self.run(source))

    def positions(self, source: str | Iterable[Event]) -> list[int]:
        """Document-order positions of all matched elements.

        Positions align with :attr:`repro.xmlstream.Node.position`, which
        makes results directly comparable with the DOM oracle.
        """
        return [match.position for match in self.run(source)]

    def count(self, source: str | Iterable[Event]) -> int:
        """Number of matches, without keeping them."""
        return sum(1 for _ in self.run(source))

    def first(self, source: str | Iterable[Event]) -> Match | None:
        """The first match, stopping the stream pass as soon as it is
        decided — or ``None`` when the (finite) stream has none.

        The run generator is closed explicitly on early exit, so the
        stream pass stops *now* — not at some later garbage collection —
        and any file handle or live source behind it is released.  This
        is what makes ``first``/``exists`` safe on unbounded sources.
        """
        run = self.run(source)
        try:
            return next(run, None)
        finally:
            run.close()

    def exists(self, source: str | Iterable[Event]) -> bool:
        """Whether the stream matches at all (XFilter-style boolean).

        Short-circuits at the first match, reading as little of the
        stream as the decision requires.
        """
        return self.first(source) is not None

    # ------------------------------------------------------------------
    # checkpoint / resume

    def checkpoint(self) -> Checkpoint:
        """Capture the in-flight run as a :class:`Checkpoint`.

        Valid between events of a strict :meth:`run` that was given a
        ``cursor`` (and immediately after it finishes).  Take the
        checkpoint only when the matches yielded so far have been
        consumed: the cursor points just past the last event the network
        processed, so a resumed run continues with the next event —
        no event is evaluated twice and no match is duplicated.

        Raises:
            CheckpointError: no cursor-tracked strict run to capture.
        """
        if self._last_cursor is None or self._last_network is None:
            raise CheckpointError(
                "nothing to checkpoint: pass a StreamCursor to run() "
                "(strict mode) and start consuming it first"
            )
        payload = {
            "query": unparse(self.query),
            "collect_events": self.collect_events,
            "optimize": as_flags(self.optimize).to_obj(),
            "cursor": self._last_cursor.state(),
            "allocator": self._last_network.allocator.snapshot(),
            "store": self._last_store.snapshot(),
            "network": self._last_network.snapshot(),
        }
        self.robustness.checkpoints_written += 1
        return Checkpoint(kind="spex", payload=payload)

    def resume(
        self,
        checkpoint: Checkpoint,
        source: str | Iterable[Event],
        validate: bool = True,
    ) -> Iterator[Match]:
        """Continue a checkpointed run against ``source``.

        The source must replay the *same* stream the checkpoint was taken
        from (same file, a reconnected feed replaying from the start, …).
        Resume seeks by re-parsing and discarding the prefix — SAX keeps
        no restartable parse state, and the skipped events never touch
        the transducer network — then continues evaluation with restored
        state.  The concatenation of matches yielded before the
        checkpoint and after this resume equals an uninterrupted run:
        no duplicates, no drops.

        All compatibility checks happen eagerly, in this call — not at
        first iteration — so a mismatched checkpoint fails fast.

        Raises:
            CheckpointError: the checkpoint came from a different engine
                kind, query, or compiler settings.
            StreamError: ``source`` is shorter than the checkpointed
                position (it is not the same stream).
        """
        payload = checkpoint.require(self.name)
        query_text = unparse(self.query)
        if payload["query"] != query_text:
            raise CheckpointError(
                f"checkpoint is for query {payload['query']!r}, this engine "
                f"evaluates {query_text!r}"
            )
        if bool(payload["collect_events"]) != bool(self.collect_events):
            raise CheckpointError(
                f"checkpoint was taken with collect_events="
                f"{bool(payload['collect_events'])}, engine has "
                f"collect_events={bool(self.collect_events)}"
            )
        # Runtime-only knobs (routing, pooling, memoization) don't alter
        # state layout, so only star_fusion — which changes the compiled
        # topology and node names — must match the checkpoint.
        if as_flags(payload["optimize"]).star_fusion != as_flags(self.optimize).star_fusion:
            raise CheckpointError(
                "checkpoint was taken with a different star_fusion "
                "setting; the compiled topologies are incompatible"
            )
        network, store = compile_network(
            self.query,
            collect_events=self.collect_events,
            optimize=self.optimize,
            limits=self.limits,
        )
        network.restore(payload["network"])
        store.restore(payload["store"])
        network.allocator.restore(payload["allocator"])
        cursor = StreamCursor.from_state(payload["cursor"])
        self._last_network = network
        self._last_store = store
        self._last_cursor = cursor
        self._last_report = ErrorReport()
        self.robustness.restores += 1
        events = skip_events(iter_events(source), cursor.events_read)
        if validate:
            # Prime the validator with the envelope state at the cut, so
            # the resumed tail is checked exactly as the original run
            # would have checked it.
            events = checked(
                events,
                require_end=isinstance(source, (str, os.PathLike)),
                open_labels=cursor.open_labels,
                started=cursor.in_document,
            )
        events = cursor.attach(events)
        return self._pump(network, events)

    @staticmethod
    def _pump(network: Network, events: Iterable[Event]) -> Iterator[Match]:
        """Generator tail of :meth:`resume` (kept separate so the eager
        verification in ``resume`` runs at call time, not first ``next``)."""
        for event in events:
            yield from network.process_event(event)

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: Checkpoint,
        limits: ResourceLimits | None = None,
    ) -> "SpexEngine":
        """Build an engine configured exactly as the checkpoint requires.

        Convenience for cold restarts where only the checkpoint file
        survives: the query and compiler settings are read back from the
        payload, so ``engine.resume(checkpoint, source)`` is guaranteed
        compatible.
        """
        payload = checkpoint.require(cls.name)
        optimize = payload["optimize"]
        return cls(
            payload["query"],
            collect_events=bool(payload["collect_events"]),
            # Endpoint presets stay plain bools (old checkpoints and the
            # documented engine API); dicts decode to per-knob flags.
            optimize=optimize if isinstance(optimize, bool) else as_flags(optimize),
            limits=limits,
        )

    # ------------------------------------------------------------------
    # introspection

    @property
    def stats(self) -> EngineStats:
        """Instrumentation for the most recent (possibly ongoing) run."""
        stats = EngineStats(query=analyze(self.query))
        if self._last_network is not None:
            stats.network = self._last_network.stats()
            stats.output = self._last_network.sink.output_stats
        if self._last_store is not None:
            stats.condition_variables = self._last_store.total_variables
            stats.peak_live_variables = self._last_store.peak_live_variables
        if self._last_report is not None:
            stats.documents_skipped = self._last_report.documents_skipped
            stats.events_repaired = self._last_report.events_repaired
            stats.limit_hits = self._last_report.limit_hits
        stats.limit_hits += stats.output.candidates_evicted
        stats.checkpoints_written = self.robustness.checkpoints_written
        stats.restores = self.robustness.restores
        stats.retries = self.robustness.retries
        stats.stalls_detected = self.robustness.stalls_detected
        stats.quarantines = self.robustness.quarantines
        stats.breaker_trips = self.robustness.breaker_trips
        stats.readmissions = self.robustness.readmissions
        stats.load_sheds = self.robustness.load_sheds
        stats.deadline_hits = self.robustness.deadline_hits
        stats.admissions_rejected = self.robustness.admissions_rejected
        return stats

    def describe_network(self) -> str:
        """Wiring of a freshly compiled network for this query."""
        network, _store = compile_network(
            self.query, collect_events=False, optimize=self.optimize
        )
        return network.describe()

    def network_degree(self) -> int:
        """Number of transducers the query compiles to (Lemma V.1)."""
        network, _store = compile_network(
            self.query, collect_events=False, optimize=self.optimize
        )
        return network.degree


def evaluate(query: str | Rpeq, source: str | Iterable[Event]) -> list[Match]:
    """One-shot convenience: evaluate ``query`` against ``source``."""
    return SpexEngine(query).evaluate(source)
