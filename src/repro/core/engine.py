"""The SPEX engine facade — the library's main entry point.

Typical use::

    from repro import SpexEngine

    engine = SpexEngine("_*.country[province].name")
    for match in engine.run("mondial.xml"):
        print(match.position, match.to_xml())

An engine holds the *query* (parsed once); each :meth:`run` compiles a
fresh transducer network (linear time, Lemma V.1) so engines are reusable
and runs are independent.  Results are yielded progressively, in document
order, as soon as their membership is decided — the defining property of
the paper's evaluation model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..rpeq.analysis import QueryProfile, analyze
from ..rpeq.ast import Rpeq
from ..rpeq.parser import parse
from ..xmlstream.events import Event
from ..xmlstream.parser import iter_events
from ..xmlstream.validate import checked
from .compiler import compile_network
from .network import Network, NetworkStats
from .output_tx import Match, OutputStats


@dataclass
class EngineStats:
    """Everything the complexity experiments measure, for one run.

    Attributes:
        network: per-transducer instrumentation roll-up.
        output: candidate buffering metrics of the output transducer.
        condition_variables: total qualifier instances created.
        peak_live_variables: worst-case undetermined instances (≤ d per
            qualifier in the paper's analysis).
        query: structural metrics of the evaluated query.
    """

    network: NetworkStats = field(default_factory=NetworkStats)
    output: OutputStats = field(default_factory=OutputStats)
    condition_variables: int = 0
    peak_live_variables: int = 0
    query: QueryProfile | None = None

    def summary(self) -> str:
        """Human-readable one-screen digest of a run's resource profile."""
        lines = [
            f"events processed      : {self.network.events}",
            f"network degree        : {self.network.degree}",
            f"peak stack height     : {self.network.max_stack}",
            f"max formula size (σ)  : {self.network.max_formula_size}",
            f"condition variables   : {self.condition_variables}"
            f" (peak live {self.peak_live_variables})",
            f"candidates            : {self.output.candidates_created}"
            f" created, {self.output.candidates_dropped} dropped",
            f"peak buffered events  : {self.output.peak_buffered_events}",
            f"peak pending results  : {self.output.peak_pending_candidates}",
        ]
        if self.query is not None:
            lines.insert(
                0,
                f"query fragment        : {self.query.fragment} "
                f"({self.query.steps} steps, {self.query.qualifiers} "
                f"qualifiers, {self.query.closures} closures)",
            )
        return "\n".join(lines)


class SpexEngine:
    """Streamed, progressive rpeq evaluation (the paper's contribution)."""

    name = "spex"

    def __init__(
        self,
        query: str | Rpeq,
        collect_events: bool = True,
        optimize: bool = True,
        simplify_query: bool = False,
    ) -> None:
        """Create an engine for a query.

        Args:
            query: rpeq source text or an already-parsed AST.
            collect_events: when ``False``, matches carry positions only
                and the output transducer never buffers events — useful
                for benchmarking the matching machinery in isolation.
            optimize: fuse Kleene closures into single ``DS`` transducers;
                ``False`` compiles the literal Fig. 11 network.
            simplify_query: apply the semantics-preserving rewriter
                (:func:`repro.rpeq.simplify`) before compilation, so
                redundant constructs never become transducers.
        """
        self.query: Rpeq = parse(query) if isinstance(query, str) else query
        if simplify_query:
            from ..rpeq.rewrite import simplify

            self.query = simplify(self.query)
        self.collect_events = collect_events
        self.optimize = optimize
        self._last_network: Network | None = None
        self._last_store = None

    # ------------------------------------------------------------------
    # evaluation

    def run(
        self, source: str | Iterable[Event], validate: bool = True
    ) -> Iterator[Match]:
        """Evaluate the query against a stream, yielding matches lazily.

        Args:
            source: XML text, a file path, or an iterable of events
                (see :func:`repro.xmlstream.iter_events`), possibly
                unbounded.
            validate: check stream well-formedness on the fly (a single
                O(depth) stack); malformed input raises
                :class:`~repro.errors.StreamError` instead of silently
                confusing the transducer stacks.  Note the end-of-stream
                check is skipped — unbounded streams never end.

        Yields:
            :class:`Match` objects in document order, each as soon as the
            stream prefix read so far decides it.
        """
        network, store = compile_network(
            self.query,
            collect_events=self.collect_events,
            optimize=self.optimize,
        )
        self._last_network = network
        self._last_store = store
        events = iter_events(source)
        if validate:
            events = checked(events, require_end=False)
        for event in events:
            yield from network.process_event(event)

    def evaluate(self, source: str | Iterable[Event]) -> list[Match]:
        """Evaluate eagerly and return all matches."""
        return list(self.run(source))

    def positions(self, source: str | Iterable[Event]) -> list[int]:
        """Document-order positions of all matched elements.

        Positions align with :attr:`repro.xmlstream.Node.position`, which
        makes results directly comparable with the DOM oracle.
        """
        return [match.position for match in self.run(source)]

    def count(self, source: str | Iterable[Event]) -> int:
        """Number of matches, without keeping them."""
        return sum(1 for _ in self.run(source))

    def first(self, source: str | Iterable[Event]) -> Match | None:
        """The first match, stopping the stream pass as soon as it is
        decided — or ``None`` when the (finite) stream has none."""
        return next(self.run(source), None)

    def exists(self, source: str | Iterable[Event]) -> bool:
        """Whether the stream matches at all (XFilter-style boolean).

        Short-circuits at the first match, reading as little of the
        stream as the decision requires.
        """
        return self.first(source) is not None

    # ------------------------------------------------------------------
    # introspection

    @property
    def stats(self) -> EngineStats:
        """Instrumentation for the most recent (possibly ongoing) run."""
        stats = EngineStats(query=analyze(self.query))
        if self._last_network is not None:
            stats.network = self._last_network.stats()
            stats.output = self._last_network.sink.output_stats
        if self._last_store is not None:
            stats.condition_variables = self._last_store.total_variables
            stats.peak_live_variables = self._last_store.peak_live_variables
        return stats

    def describe_network(self) -> str:
        """Wiring of a freshly compiled network for this query."""
        network, _store = compile_network(
            self.query, collect_events=False, optimize=self.optimize
        )
        return network.describe()

    def network_degree(self) -> int:
        """Number of transducers the query compiles to (Lemma V.1)."""
        network, _store = compile_network(
            self.query, collect_events=False, optimize=self.optimize
        )
        return network.degree


def evaluate(query: str | Rpeq, source: str | Iterable[Event]) -> list[Match]:
    """One-shot convenience: evaluate ``query`` against ``source``."""
    return SpexEngine(query).evaluate(source)
