"""Stream-flow transducers: split, join, union (Secs. III.6–III.7).

The network evaluates its DAG in topological order once per stream event
(one message in the network at a time, guaranteed by the input
transducer), so:

* **split** is an identity transducer whose output list is handed to both
  successors by the network;
* **join** synchronizes its two predecessors: both branches forward each
  document message exactly once, so the join emits the non-document
  messages of both branches (deduplicated — both branches replicate
  whatever entered before the split) followed by the single document
  message.  This realizes the AND-gate behaviour of Fig. 9 and the
  duplicate elimination Sec. III.7 attributes to the join;
* **union** ``UN`` merges the at-most-two activation messages preceding a
  document message into one disjunction (Fig. 10).
"""

from __future__ import annotations

from ..errors import EngineError
from .messages import Activation, Doc, Message
from .transducer import Transducer


class SplitTransducer(Transducer):
    """``SP`` — copies its input to both output tapes (Fig. 8).

    Fan-out is performed by the network; the transducer itself is the
    identity and exists to keep network diagrams aligned with the paper.
    """

    kind = "SP"

    def feed(self, messages) -> list[Message]:
        batch = messages if messages.__class__ is list else list(messages)
        self.stats.messages += len(batch)
        return batch


class JoinTransducer(Transducer):
    """``JO`` — synchronizes two branches (Fig. 9).

    Not fed through :meth:`feed`; the network calls :meth:`feed2` with
    the message lists of the left and right predecessor.

    Duplicate elimination (Sec. III.7 assigns it to the join) works by
    object identity: a message replicated by the upstream split arrives
    as the *same object* on both inputs and is forwarded once.  Distinct
    activation objects for the same tag are all forwarded — downstream
    transducers merge them by disjunction, so equality-level dedup would
    only shrink formulas the normalization shrinks anyway.
    """

    kind = "JO"

    def __init__(self, name: str | None = None, dedup: bool = True) -> None:
        super().__init__(name)
        #: identity-dedup toggle, exposed for the E10 ablation
        self.dedup = dedup

    def feed(self, messages) -> list[Message]:  # pragma: no cover - guard
        raise EngineError("join transducers take two inputs; use feed2()")

    def feed2(self, left: list[Message], right: list[Message]) -> list[Message]:
        """Merge the per-event output of both branches.

        Document messages must agree — both branches forward the same
        stream event exactly once per event.
        """
        self.stats.messages += len(left) + len(right)
        if left is right and self.dedup:
            # Both branches forwarded the identical batch object (the
            # steady-state case with pass-through branches): every
            # non-document message is its own duplicate, so the merged
            # output is the batch itself — docs agree trivially and the
            # doc-last invariant keeps the order exact.
            return left
        # Fast path: both branches forwarded just the document message.
        if len(left) == 1 and len(right) == 1:
            lone, rone = left[0], right[0]
            if lone.__class__ is Doc and rone.__class__ is Doc:
                if lone is not rone and lone.event != rone.event:
                    raise EngineError(
                        f"{self.name}: branches disagree on document "
                        f"messages ({lone} vs {rone})"
                    )
                return [lone]
        left_docs = [m for m in left if m.__class__ is Doc]
        right_docs = [m for m in right if m.__class__ is Doc]
        if [m.event for m in left_docs] != [m.event for m in right_docs]:
            raise EngineError(
                f"{self.name}: branches disagree on document messages "
                f"({left_docs} vs {right_docs})"
            )
        merged: list[Message] = []
        seen: set[int] = set()
        for message in left + right:
            if message.__class__ is Doc:
                continue
            if not self.dedup or id(message) not in seen:
                seen.add(id(message))
                merged.append(message)
        merged.extend(left_docs)
        return merged


class UnionTransducer(Transducer):
    """``UN`` — disjunction of the activations before one tag (Fig. 10)."""

    kind = "UN"

    def feed(self, messages: list[Message]) -> list[Message]:
        # Inlined fast path: with no buffered activation every hook
        # forwards the lone document message unchanged.
        if (
            len(messages) == 1
            and messages[0].__class__ is Doc
            and self.pending is None
        ):
            self.stats.messages += 1
            return messages
        return Transducer.feed(self, messages)

    def on_activation(self, message: Activation) -> list[Message]:
        self.absorb_activation(message.formula)  # absorb merges via disj()
        return []

    def on_start(self, message: Doc, event) -> list[Message] | None:
        pending = self.take_pending()
        if pending is not None:
            return [self._activation(pending), message]
        return None
