"""The output transducer ``OU`` (Sec. III.8) and result objects.

The network sink.  Its tasks, per the paper: identify and store result
candidates, evaluate their condition formulas, and output results *in
document order*, buffering a message only while its membership in the
result cannot yet be decided.

A **candidate** is created whenever an activation message precedes a
start tag: it spans that element (start tag to matching end tag) and
depends on the activation's condition formula.  Candidates nest (query
class 3, e.g. ``_*._``); their events are therefore kept in one shared
log referenced by global stream offsets, so total buffer memory is linear
in the buffered stream span, not multiplied by the nesting depth (a
design choice benchmarked by the E10 ablation).

Determination messages update the condition store; the store reports
which variables became determined, and only the candidates watching those
variables are re-evaluated.  The front of the candidate queue is flushed
as soon as it is decided: ``true`` and span complete -> emit a
:class:`Match`; ``false`` -> drop (anywhere in the queue, immediately).
This gives the progressive behaviour of the paper's Sec. III.10 example:
a candidate whose formula is already known ``true`` (a "past condition",
query class 4) is emitted the moment its end tag arrives, while "future
conditions" (class 2) buffer only until their variable resolves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..conditions.formula import (
    FALSE,
    TRUE,
    Formula,
    Var,
    formula_from_obj,
    formula_to_obj,
    substitute,
)
from ..conditions.store import ConditionStore
from ..errors import ResourceLimitError
from ..limits import DROP_OLDEST, ResourceLimits
from ..xmlstream.events import (
    DOCUMENT_LABEL,
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    event_from_obj,
    event_to_obj,
)
from .messages import Activation, Close, Contribute, Doc, Message
from .transducer import Transducer

#: shared empty output batch — the sink forwards nothing, and no caller
#: mutates a node's output list, so one constant serves every event
_EMPTY_BATCH: list[Message] = []


@dataclass(frozen=True, slots=True)
class Match:
    """One query result — a matched element, delivered in document order.

    Attributes:
        position: document-order ordinal of the element's start tag
            (1-based; 0 is the virtual document root ``$``, which queries
            with an epsilon component can select).
        label: the matched element's label (``$`` for the root).
        events: the matched fragment as a tuple of stream events (start
            tag through end tag, inclusive), or ``None`` when the engine
            runs in positions-only mode.
    """

    position: int
    label: str
    events: tuple[Event, ...] | None = None

    def to_xml(self) -> str:
        """Serialize the matched fragment to markup."""
        if self.events is None:
            raise ValueError("engine ran in positions-only mode; no events kept")
        from ..xmlstream.serializer import serialize

        return serialize(self.events)

    def text(self) -> str:
        """Concatenated character data of the matched fragment.

        The XPath ``string()`` value of the node, minus whitespace
        normalization.
        """
        if self.events is None:
            raise ValueError("engine ran in positions-only mode; no events kept")
        return "".join(
            event.content for event in self.events if isinstance(event, Text)
        )

    def size(self) -> int:
        """Number of element nodes in the matched fragment."""
        if self.events is None:
            raise ValueError("engine ran in positions-only mode; no events kept")
        return sum(
            1 for event in self.events if isinstance(event, StartElement)
        )


@dataclass(eq=False, slots=True)
class _Candidate:
    position: int
    label: str
    start_gidx: int
    formula: Formula
    end_gidx: int | None = None
    state: str = "pending"  # pending | ready | dropped

    @property
    def complete(self) -> bool:
        return self.end_gidx is not None


@dataclass
class OutputStats:
    """Memory/progressiveness accounting for experiments E5/E8.

    Attributes:
        candidates_created: total result candidates seen.
        candidates_dropped: candidates whose formula resolved false.
        candidates_evicted: candidates sacrificed by the
            ``drop_oldest`` overflow policy (each is a potential match
            lost to the buffer ceiling; see :class:`repro.limits.
            ResourceLimits`).
        peak_buffered_events: worst-case size of the shared event log —
            the paper's ``S_OU`` (linear in the stream only when
            undetermined candidates force buffering).
        peak_pending_candidates: worst-case queue length.
    """

    candidates_created: int = 0
    candidates_dropped: int = 0
    candidates_evicted: int = 0
    peak_buffered_events: int = 0
    peak_pending_candidates: int = 0


class OutputTransducer(Transducer):
    """``OU`` — candidate bookkeeping and ordered result emission."""

    kind = "OU"

    def __init__(
        self,
        store: ConditionStore,
        collect_events: bool = True,
        limits: ResourceLimits | None = None,
    ) -> None:
        super().__init__("OU")
        self._store = store
        self._limits = (
            limits
            if limits is not None
            and (
                limits.max_buffered_events is not None
                or limits.max_pending_candidates is not None
            )
            else None
        )
        # Determinations are broadcast by the store so every sink of a
        # multi-sink network reacts, no matter which sink's message
        # triggered the resolution; the retainer blocks variable release
        # while this sink's candidates still watch the variable.
        store.subscribe(self._handle_determined)
        store.add_retainer(self._retains)
        self._collect_events = collect_events
        #: completed matches, drained by the engine after every event
        self.results: deque[Match] = deque()
        self.output_stats = OutputStats()
        self._gidx = -1  # global index of the current document event
        # Shared event log: a list (O(1) random access, so fragment
        # extraction costs O(span), not O(offset)), trimmed in chunks so
        # the amortized GC cost stays O(1) per event.
        self._log: list[Event] = []
        self._log_start = 0  # gidx of _log[0]
        self._queue: deque[_Candidate] = deque()
        self._live = 0  # queue entries not yet dropped
        self._watchers: dict[Var, set[_Candidate]] = {}
        self._open: list[_Candidate | None] = []
        self._element_count = 0

    @property
    def buffered_events(self) -> int:
        """Current size of the shared event log (live buffer pressure).

        The serving layer's load shedder aggregates this across all
        queries of a pass to decide when the high-water mark is crossed.
        """
        return len(self._log)

    @property
    def pending_candidates(self) -> int:
        """Currently undecided result candidates."""
        return self._live

    def advance_positions(self, count: int) -> None:
        """Account for ``count`` start tags this network never saw.

        The fast-lane subtree gate (:mod:`repro.core.fastlane`) skips
        whole dead subtrees in front of the network; positions are
        stream-global, so the skipped start tags must still advance the
        element counter before the next fed event.
        """
        self._element_count += count

    # ------------------------------------------------------------------
    # message handling

    def feed(self, messages: list[Message]) -> list[Message]:
        # Inlined single-document fast path mirroring on_start/on_end/
        # on_text exactly (see path_transducers for the policy); every
        # document event is consumed, so the shared empty batch suffices.
        if len(messages) == 1 and messages[0].__class__ is Doc:
            event = messages[0].event
            ecls = event.__class__
            stats = self.stats
            if ecls is StartElement:
                stats.messages += 1
                self._gidx += 1
                self._element_count += 1
                candidate = None
                if self.pending is not None:
                    formula, self.pending = self.pending, None
                    candidate = self._create_candidate(
                        self._element_count, event.label, formula
                    )
                self._open.append(candidate)
                stack = self.stack
                stack.append(None)
                depth = len(stack)
                if depth > stats.max_stack:
                    stats.max_stack = depth
                self._log_event(event)
                return _EMPTY_BATCH
            if ecls is EndElement:
                stats.messages += 1
                self._gidx += 1
                self._log_event(event)
                self.pop_entry()
                candidate = self._open.pop()
                if candidate is not None:
                    candidate.end_gidx = self._gidx
                self._flush()
                return _EMPTY_BATCH
            if ecls is Text:
                stats.messages += 1
                self._gidx += 1
                self._log_event(event)
                return _EMPTY_BATCH
        return Transducer.feed(self, messages)

    def on_activation(self, message: Activation) -> list[Message]:
        self.absorb_activation(message.formula)
        return []

    def on_start(self, message: Doc, event: StartDocument | StartElement) -> list[Message]:
        self._gidx += 1
        if isinstance(event, StartElement):
            self._element_count += 1
            position = self._element_count
            label = event.label
        else:
            position = 0
            label = DOCUMENT_LABEL
        formula = self.take_pending()
        candidate: _Candidate | None = None
        if formula is not None:
            candidate = self._create_candidate(position, label, formula)
        self._open.append(candidate)
        self.stack.append(None)  # depth bookkeeping for instrumentation
        self._log_event(event)
        return []

    def on_end(self, message: Doc, event: EndDocument | EndElement) -> list[Message]:
        self._gidx += 1
        self._log_event(event)
        self.pop_entry()
        candidate = self._open.pop()
        if candidate is not None:
            candidate.end_gidx = self._gidx
        self._flush()
        return []

    def on_text(self, message: Doc, event: Text) -> list[Message]:
        self._gidx += 1
        self._log_event(event)
        return []

    def on_condition(self, message: Contribute | Close) -> list[Message]:
        if isinstance(message, Contribute):
            self._store.contribute(message.var, message.evidence)
        else:
            self._store.close(message.var)
        # Schedule release: once this event's batch has passed every
        # node, nothing can reference the closed variable any more.
        # Keeps the condition store bounded on unbounded streams.
        if isinstance(message, Close):
            self._store.defer_release(message.var)
        return []

    def _handle_determined(self, determined: list[Var]) -> None:
        """Store listener: react to every global determination batch."""
        self._on_determined(determined)
        self._flush()

    def _retains(self, var: Var) -> bool:
        """Store retainer: candidates here still depend on the variable."""
        return var in self._watchers

    # ------------------------------------------------------------------
    # candidate lifecycle

    def _create_candidate(self, position: int, label: str, formula: Formula) -> _Candidate:
        # Variables already determined (past conditions) simplify away
        # right now, so class-4 candidates are born decided.
        formula = substitute(formula, self._store.value)
        candidate = _Candidate(
            position=position,
            label=label,
            start_gidx=self._gidx,
            formula=formula,
        )
        self.output_stats.candidates_created += 1
        if formula is TRUE:
            candidate.state = "ready"
        elif formula is FALSE:
            candidate.state = "dropped"
            self.output_stats.candidates_dropped += 1
        else:
            for var in formula.variables():
                self._watchers.setdefault(var, set()).add(candidate)
        if candidate.state != "dropped":
            self._queue.append(candidate)
            self._live += 1
            if (
                self._limits is not None
                and self._limits.max_pending_candidates is not None
                and self._live > self._limits.max_pending_candidates
            ):
                self._enforce_buffer_limits()
            if self._live > self.output_stats.peak_pending_candidates:
                self.output_stats.peak_pending_candidates = self._live
        return candidate

    def _on_determined(self, determined: list[Var]) -> None:
        """Re-evaluate exactly the candidates watching resolved variables."""
        touched: set[int] = set()
        for var in determined:
            for candidate in self._watchers.pop(var, ()):
                if candidate.state != "pending" or id(candidate) in touched:
                    continue
                touched.add(id(candidate))
                old_vars = candidate.formula.variables()
                candidate.formula = substitute(candidate.formula, self._store.value)
                if candidate.formula is TRUE:
                    candidate.state = "ready"
                    remaining: frozenset[Var] = frozenset()
                elif candidate.formula is FALSE:
                    candidate.state = "dropped"
                    self._live -= 1
                    self.output_stats.candidates_dropped += 1
                    remaining = frozenset()
                else:
                    remaining = candidate.formula.variables()
                for stale in old_vars - remaining:
                    watchers = self._watchers.get(stale)
                    if watchers is not None:
                        watchers.discard(candidate)
                        if not watchers:
                            del self._watchers[stale]

    def _flush(self) -> None:
        """Emit/drop the decided prefix of the queue, then trim the log."""
        while self._queue:
            front = self._queue[0]
            if front.state == "dropped":
                self._queue.popleft()
                continue
            if front.state == "ready" and front.complete:
                self._queue.popleft()
                self._live -= 1
                self.results.append(self._to_match(front))
                continue
            break
        self._trim_log()

    def _to_match(self, candidate: _Candidate) -> Match:
        if not self._collect_events:
            return Match(candidate.position, candidate.label, None)
        lo = candidate.start_gidx - self._log_start
        hi = candidate.end_gidx - self._log_start + 1
        events = tuple(self._log[lo:hi])
        return Match(candidate.position, candidate.label, events)

    # ------------------------------------------------------------------
    # shared event log

    def _log_event(self, event: Event) -> None:
        if not self._collect_events:
            return
        if not self._queue:
            # No live candidate can ever need this event: skip it and
            # keep the log aligned with the next global index.
            self._log_start = self._gidx + 1
            self._log.clear()
            return
        self._log.append(event)
        if (
            self._limits is not None
            and self._limits.max_buffered_events is not None
            and len(self._log) > self._limits.max_buffered_events
        ):
            self._enforce_buffer_limits()
        if len(self._log) > self.output_stats.peak_buffered_events:
            self.output_stats.peak_buffered_events = len(self._log)

    # ------------------------------------------------------------------
    # resource guards

    def _enforce_buffer_limits(self) -> None:
        """React to a buffer ceiling: raise, or evict oldest candidates.

        Under ``drop_oldest`` the oldest undecided candidate is
        sacrificed (a potential match lost, counted in
        ``candidates_evicted``) and the log prefix only it needed is
        reclaimed, until both buffers are back under their ceilings.
        """
        limits = self._limits
        if limits.on_buffer_overflow != DROP_OLDEST:
            if (
                limits.max_buffered_events is not None
                and len(self._log) > limits.max_buffered_events
            ):
                raise ResourceLimitError(
                    f"buffered events {len(self._log)} exceed limit "
                    f"{limits.max_buffered_events}",
                    limit="max_buffered_events",
                    observed=len(self._log),
                )
            raise ResourceLimitError(
                f"pending candidates {self._live} exceed limit "
                f"{limits.max_pending_candidates}",
                limit="max_pending_candidates",
                observed=self._live,
            )
        while True:
            over_events = (
                limits.max_buffered_events is not None
                and len(self._log) > limits.max_buffered_events
            )
            over_candidates = (
                limits.max_pending_candidates is not None
                and self._live > limits.max_pending_candidates
            )
            if not (over_events or over_candidates):
                return
            if not self._evict_oldest():
                return

    def _evict_oldest(self) -> bool:
        """Drop the oldest live candidate; ``False`` when none remain."""
        evicted = False
        while self._queue:
            candidate = self._queue.popleft()
            if candidate.state == "dropped":
                continue  # regular drop, already accounted
            candidate.state = "dropped"
            self._live -= 1
            self.output_stats.candidates_evicted += 1
            for var in candidate.formula.variables():
                watchers = self._watchers.get(var)
                if watchers is not None:
                    watchers.discard(candidate)
                    if not watchers:
                        del self._watchers[var]
            evicted = True
            break
        self._resync_log()
        return evicted

    def _resync_log(self) -> None:
        """Reclaim the log prefix no surviving candidate references."""
        if not self._collect_events:
            return
        while self._queue and self._queue[0].state == "dropped":
            self._queue.popleft()
        if not self._queue:
            self._log.clear()
            self._log_start = self._gidx + 1
            return
        dead = self._queue[0].start_gidx - self._log_start
        if dead > 0:
            del self._log[:dead]
            self._log_start += dead

    # ------------------------------------------------------------------
    # checkpointing

    def _snapshot_extra(self) -> dict:
        """Capture candidate/log/result state (see base ``snapshot``).

        The watcher index is derivable from the pending candidates'
        formulas and is rebuilt on restore.  ``_open`` entries reference
        candidate *objects*; shared identity with the queue is preserved
        by encoding queue members as their index and already-dropped
        strays (popped from the queue but their end tag still pending)
        inline.
        """
        queue = list(self._queue)
        index_of = {id(candidate): i for i, candidate in enumerate(queue)}

        def encode_open(candidate: _Candidate | None) -> object:
            if candidate is None:
                return None
            index = index_of.get(id(candidate))
            if index is not None:
                return ["q", index]
            return ["c", self._encode_candidate(candidate)]

        stats = self.output_stats
        return {
            "gidx": self._gidx,
            "element_count": self._element_count,
            "log_start": self._log_start,
            "log": [event_to_obj(event) for event in self._log],
            "queue": [self._encode_candidate(c) for c in queue],
            "open": [encode_open(c) for c in self._open],
            "results": [self._encode_match(m) for m in self.results],
            "output_stats": [
                stats.candidates_created,
                stats.candidates_dropped,
                stats.candidates_evicted,
                stats.peak_buffered_events,
                stats.peak_pending_candidates,
            ],
        }

    def _restore_extra(self, extra: dict) -> None:
        self._gidx = int(extra["gidx"])
        self._element_count = int(extra["element_count"])
        self._log_start = int(extra["log_start"])
        self._log = [event_from_obj(obj) for obj in extra["log"]]
        queue = [self._decode_candidate(obj) for obj in extra["queue"]]
        self._queue = deque(queue)
        self._live = sum(1 for c in queue if c.state != "dropped")

        def decode_open(obj: object) -> _Candidate | None:
            if obj is None:
                return None
            tag, payload = obj
            if tag == "q":
                return queue[int(payload)]
            return self._decode_candidate(payload)

        self._open = [decode_open(obj) for obj in extra["open"]]
        self._watchers = {}
        for candidate in queue:
            if candidate.state != "pending":
                continue
            for var in candidate.formula.variables():
                self._watchers.setdefault(var, set()).add(candidate)
        self.results = deque(self._decode_match(obj) for obj in extra["results"])
        created, dropped, evicted, peak_events, peak_candidates = extra[
            "output_stats"
        ]
        self.output_stats = OutputStats(
            candidates_created=created,
            candidates_dropped=dropped,
            candidates_evicted=evicted,
            peak_buffered_events=peak_events,
            peak_pending_candidates=peak_candidates,
        )

    @staticmethod
    def _encode_candidate(candidate: _Candidate) -> list:
        return [
            candidate.position,
            candidate.label,
            candidate.start_gidx,
            formula_to_obj(candidate.formula),
            candidate.end_gidx,
            candidate.state,
        ]

    @staticmethod
    def _decode_candidate(obj: list) -> _Candidate:
        position, label, start_gidx, formula, end_gidx, state = obj
        return _Candidate(
            position=int(position),
            label=label,
            start_gidx=int(start_gidx),
            formula=formula_from_obj(formula),
            end_gidx=None if end_gidx is None else int(end_gidx),
            state=state,
        )

    @staticmethod
    def _encode_match(match: Match) -> list:
        events = (
            None
            if match.events is None
            else [event_to_obj(event) for event in match.events]
        )
        return [match.position, match.label, events]

    @staticmethod
    def _decode_match(obj: list) -> Match:
        position, label, events = obj
        return Match(
            int(position),
            label,
            None
            if events is None
            else tuple(event_from_obj(entry) for entry in events),
        )

    def _trim_log(self) -> None:
        if not self._collect_events or not self._log:
            return
        if not self._queue:
            self._log.clear()
            self._log_start = self._gidx + 1
            return
        # The queue is ordered by start offset (creation order == document
        # order), and _flush just removed every decided front entry, so
        # the front's start is the earliest offset anyone can still need.
        # Trim in chunks: a prefix deletion is O(len), so only trim when
        # the dead prefix is a sizeable fraction — amortized O(1)/event.
        dead = self._queue[0].start_gidx - self._log_start
        if dead > 256 and dead * 2 > len(self._log):
            del self._log[:dead]
            self._log_start += dead
