"""Crash-isolated sharded serving: per-process fault domains.

The bulkhead layer (:mod:`repro.core.serving`) isolates *query-level*
failures — a raising query is detached while its neighbours keep
streaming.  It cannot isolate *process-level* failures: a segfault-class
event (OOM kill, interpreter abort, pathological native code) takes
every subscription in the process down at once.  This module promotes
the same fault-domain discipline one level up:

* :func:`partition_queries` splits a subscription set across ``N``
  shards — by stable hash, or by trie-prefix affinity so queries that
  would share work land together;
* each shard runs a :class:`~repro.core.multiquery.MultiQueryEngine`
  in its **own worker process**, fed over a bounded IPC queue with
  backpressure, emitting matches, heartbeats and document-boundary
  checkpoints back over a per-shard result queue;
* the :class:`ShardCoordinator` detects worker death (exit) and worker
  stall (missed heartbeats, via :class:`HeartbeatMonitor` on an
  injectable :class:`~repro.core.clock.Clock`), kills and restarts the
  shard from its last committed :class:`~repro.core.checkpoint.Checkpoint`
  under the supervisor's :class:`~repro.core.supervisor.ExponentialBackoff`
  discipline — surviving shards keep streaming the whole time;
* after :attr:`ShardConfig.max_trips` crash-restarts from the same
  position, the coordinator runs solo **isolation probes** to convict
  the poison-pill queries, latches their circuit breakers *inside the
  shard's checkpoint* (:func:`quarantine_in_checkpoint`), and restarts
  the shard without them — so quarantine survives checkpoint/resume
  exactly as PR 4's in-process latch does.

Exactly-once match delivery across crashes uses a **checkpoint
barrier**: matches stream from the worker continuously but the
coordinator only *commits* them when the checkpoint covering them
arrives (document boundaries).  A crash discards the uncommitted tail;
the restart replays the events after the checkpoint and regenerates
exactly that tail — so the merged output for non-quarantined queries is
bit-identical to a single-process pass.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import zlib
from dataclasses import asdict, dataclass
from itertools import repeat
from queue import Empty, Full
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..errors import CheckpointError, EngineError
from ..limits import ResourceLimits
from ..rpeq.ast import Rpeq
from ..rpeq.parser import parse
from ..rpeq.unparse import unparse
from ..xmlstream.events import (
    EndDocument,
    Event,
    StartDocument,
    event_from_obj,
    event_to_obj,
)
from ..xmlstream.offsets import StreamCursor
from ..xmlstream.parser import ParserLimits, iter_events
from .checkpoint import Checkpoint
from .clock import SYSTEM_CLOCK, Clock, as_clock
from .engine import RobustnessCounters
from .multiquery import MultiQueryEngine, _spine
from .output_tx import Match
from .serving import AdmissionPolicy, QueryOutcome, ServingPolicy, ServingReport
from .supervisor import ExponentialBackoff

#: Per-shard outcome codes carried by the merged report's shard log.
SHARD_CRASH = "SHARD_CRASH"  #: worker process died (non-zero exit / signal)
SHARD_STALL = "SHARD_STALL"  #: worker missed heartbeats and was killed
SHARD_RESTORED = "SHARD_RESTORED"  #: worker restarted from its checkpoint
SHARD_POISON = "SHARD_POISON"  #: probes convicted queries as poison pills
SHARD_LOST = "SHARD_LOST"  #: shard quarantined whole (no culprit isolable)

#: Outcome code stamped on queries a lost shard takes down with it.
QUERY_SHARD_LOST = "SHARD_LOST"


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded serving layer.

    Attributes:
        shards: number of worker processes.
        partition: ``"hash"`` (stable crc32 of the query id),
            ``"prefix"`` (queries sharing their first path step
            co-locate, preserving shared-prefix work affinity) or
            ``"cost"`` (planner-weighted: queries are spread by their
            refined σ̂ bound so no shard concentrates the expensive
            condition-heavy networks).
        heartbeat_interval: seconds between worker heartbeats.
        heartbeat_timeout: coordinator-side silence budget before a
            worker is declared stalled and killed; ``None`` disables
            stall detection (death detection still works).
        max_trips: crash-restarts tolerated *from the same checkpoint
            position* before the coordinator stops retrying and runs
            poison-isolation probes.
        batch_events: events per IPC message (amortizes pickling).
        queue_batches: bound of the per-shard input queue, in batches —
            the backpressure window between coordinator and worker.
        backoff_initial/backoff_factor/backoff_max/jitter/seed: restart
            backoff schedule, shared with
            :class:`~repro.core.supervisor.ExponentialBackoff`.
        probe_timeout: wall-clock budget per isolation probe; a probe
            that neither exits nor finishes inside it is convicted.
        checkpoint_dir: when set, each worker persists its rolling
            checkpoint as ``shard-<index>.json`` in this directory
            (exercising the concurrent-writer-safe atomic save).
        start_method: multiprocessing start method; ``None`` picks
            ``fork`` where available (hooks need no pickling round-trip)
            and the platform default elsewhere.
    """

    shards: int = 2
    partition: str = "hash"
    heartbeat_interval: float = 0.05
    heartbeat_timeout: float | None = 5.0
    max_trips: int = 3
    batch_events: int = 256
    queue_batches: int = 8
    backoff_initial: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    probe_timeout: float = 30.0
    checkpoint_dir: str | None = None
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.partition not in ("hash", "prefix", "cost"):
            raise ValueError(
                f"partition must be 'hash', 'prefix' or 'cost', "
                f"got {self.partition!r}"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout is not None and (
            self.heartbeat_timeout <= self.heartbeat_interval
        ):
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        if self.max_trips < 1:
            raise ValueError("max_trips must be positive")
        if self.batch_events < 1:
            raise ValueError("batch_events must be positive")
        if self.queue_batches < 1:
            raise ValueError("queue_batches must be positive")


@dataclass(frozen=True)
class ShardEvent:
    """One entry of the coordinator's shard fault log."""

    shard: int
    incarnation: int
    code: str
    detail: str


# ----------------------------------------------------------------------
# partitioning

#: Nominal stream-depth bound the ``"cost"`` strategy plans under, so
#: closure-under-qualifier σ̂ bounds stay finite and comparable.
_COST_PARTITION_DEPTH = 32
#: Weight assigned to queries whose σ̂ stays uncertifiable even under
#: the nominal depth (axis steps): treated as heavier than anything
#: certifiable so they spread out first.
_COST_UNCERTIFIABLE_WEIGHT = 1 << 16


def partition_queries(
    queries: Mapping[str, str | Rpeq],
    shards: int,
    strategy: str = "hash",
) -> list[list[str]]:
    """Split a subscription set into ``shards`` disjoint id lists.

    ``"hash"`` assigns each id by ``crc32(id) % shards`` — stable across
    processes and Python invocations (unlike the interpreter's salted
    ``hash``), so a restarted coordinator rebuilds the same layout.

    ``"prefix"`` groups queries by their first path step (the root of
    the shared-prefix trie :class:`~repro.core.multiquery.SharedNetworkEngine`
    deduplicates on) and assigns whole groups to the least-loaded shard,
    largest groups first — queries that would share work land in the
    same process.

    ``"cost"`` weighs each query by the planner's refined ``σ̂`` bound
    (:func:`repro.analysis.planner.plan_query`, under a nominal depth
    bound so closure-under-qualifier queries stay finite; uncertifiable
    queries get a heavy default weight) and bin-packs heaviest-first
    onto the lightest shard — so the condition-heavy networks spread
    out instead of pig-piling one worker.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if strategy not in ("hash", "prefix", "cost"):
        raise ValueError(f"unknown partition strategy {strategy!r}")
    layout: list[list[str]] = [[] for _ in range(shards)]
    if strategy == "hash":
        for query_id in queries:
            layout[zlib.crc32(query_id.encode("utf-8")) % shards].append(query_id)
        return layout
    if strategy == "cost":
        from ..analysis.planner import plan_query
        from ..limits import ResourceLimits

        planning_limits = ResourceLimits(max_depth=_COST_PARTITION_DEPTH)
        weights: dict[str, int] = {}
        for query_id, query in queries.items():
            expr = parse(query) if isinstance(query, str) else query
            plan, _report = plan_query(expr, limits=planning_limits)
            weights[query_id] = (
                plan.sigma_refined
                if plan.sigma_refined is not None
                else _COST_UNCERTIFIABLE_WEIGHT
            )
        cost_loads = [0] * shards
        for query_id, weight in sorted(
            weights.items(), key=lambda item: (-item[1], item[0])
        ):
            target = min(range(shards), key=lambda i: (cost_loads[i], i))
            layout[target].append(query_id)
            cost_loads[target] += weight
        return layout
    groups: dict[str, list[str]] = {}
    for query_id, query in queries.items():
        expr = parse(query) if isinstance(query, str) else query
        head = unparse(_spine(expr)[0])
        groups.setdefault(head, []).append(query_id)
    loads = [0] * shards
    for head, members in sorted(
        groups.items(), key=lambda item: (-len(item[1]), item[0])
    ):
        target = min(range(shards), key=lambda i: (loads[i], i))
        layout[target].extend(members)
        loads[target] += len(members)
    return layout


# ----------------------------------------------------------------------
# heartbeats


class HeartbeatMonitor:
    """Coordinator-side stall detector over an injectable clock.

    Workers beat by sending messages; the coordinator calls
    :meth:`beat` whenever *any* message arrives from a shard (every
    message proves liveness) and :meth:`stalled` before trusting a
    silent worker.  Tests drive it with a
    :class:`~repro.core.clock.FakeClock`.
    """

    def __init__(self, timeout: float | None, clock: Clock | None = None) -> None:
        self.timeout = timeout
        self.clock = as_clock(clock)
        self._last: dict[int, float] = {}

    def beat(self, shard: int) -> None:
        self._last[shard] = self.clock.monotonic()

    def disarm(self, shard: int) -> None:
        self._last.pop(shard, None)

    def stalled(self, shard: int) -> bool:
        if self.timeout is None:
            return False
        last = self._last.get(shard)
        if last is None:
            return False
        return self.clock.monotonic() - last > self.timeout

    def silence(self, shard: int) -> float:
        """Seconds since the shard's last sign of life (0 if unknown)."""
        last = self._last.get(shard)
        if last is None:
            return 0.0
        return self.clock.monotonic() - last


# ----------------------------------------------------------------------
# checkpoint surgery (poison latch across the process boundary)


def quarantine_in_checkpoint(
    checkpoint: Checkpoint,
    query_ids: Iterable[str],
    max_trips: int,
) -> Checkpoint:
    """Return a copy of a serving checkpoint with queries latched out.

    The convicted queries' circuit breakers are rewritten to the
    exhausted state (``trips = max_trips``, open), their network
    snapshots dropped, and their outcomes stamped ``quarantined`` /
    ``POISON`` — so a worker resuming from the edited checkpoint treats
    them exactly like queries that burned through ``max_trips`` inside
    the process: never revived, never re-admitted, latch preserved by
    every further checkpoint/resume cycle.
    """
    payload = copy.deepcopy(checkpoint.require("multiquery"))
    serving = payload.get("serving")
    if serving is None:
        raise CheckpointError(
            "cannot quarantine queries in a non-serving checkpoint "
            "(no breaker state to latch)"
        )
    newly_latched = 0
    for query_id in query_ids:
        if query_id not in payload["queries"]:
            raise CheckpointError(
                f"cannot quarantine {query_id!r}: not in the checkpoint's "
                f"subscription set"
            )
        payload["networks"].pop(query_id, None)
        previous = serving["breakers"].get(query_id, {})
        trips = max(int(previous.get("trips", 0)), max_trips)
        serving["breakers"][query_id] = {
            "state": "open",
            "trips": trips,
            "cooldown": 1,
            "probe_successes": 0,
        }
        outcome = serving["outcomes"].get(query_id)
        if outcome is None:
            outcome = QueryOutcome(query_id).to_obj()
            serving["outcomes"][query_id] = outcome
        if outcome["status"] != "quarantined":
            newly_latched += 1
        outcome["status"] = "quarantined"
        outcome["code"] = "POISON"
        outcome["reason"] = (
            "convicted by shard isolation probe (crashed its worker "
            "process)"
        )
        outcome["degraded"] = True
        outcome["trips"] = trips
    serving["report"]["quarantines"] += newly_latched
    return Checkpoint(
        kind=checkpoint.kind, payload=payload, version=checkpoint.version
    )


# ----------------------------------------------------------------------
# worker side

#: Optional chaos/fault hook run in the *worker* before each event:
#: ``hook(shard, incarnation, event_index, live_query_ids)``.  It may
#: raise, sleep, or kill its own process — the coordinator's job is to
#: survive whatever it does.  Probes call it with ``incarnation = -1``.
FaultHook = Callable[[int, int, int, frozenset], None]


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker process needs, in picklable form."""

    shard: int
    incarnation: int
    queries: dict[str, str]
    collect_events: bool
    limits: ResourceLimits | None
    admission: AdmissionPolicy | None
    policy: ServingPolicy
    heartbeat_interval: float
    checkpoint_path: str | None
    checkpoint_data: dict | None
    quarantined: tuple[str, ...]
    hook: FaultHook | None


class _Heartbeats:
    """Rate-limited liveness messages on the worker's result queue."""

    def __init__(
        self,
        out_queue: "multiprocessing.queues.Queue[tuple]",
        clock: Clock,
        interval: float,
    ) -> None:
        self._out = out_queue
        self._clock = clock
        self._interval = interval
        self._last = clock.monotonic()

    def force(self) -> None:
        self._out.put(("hb",))
        self._last = self._clock.monotonic()

    def maybe(self) -> None:
        if self._clock.monotonic() - self._last >= self._interval:
            self.force()


def _queue_events(
    in_queue: "multiprocessing.queues.Queue[tuple]",
    heartbeats: _Heartbeats,
    interval: float,
) -> Iterator[Event]:
    """Decode the coordinator's event batches; beat while idle."""
    while True:
        try:
            message = in_queue.get(timeout=interval)
        except Empty:
            heartbeats.force()
            continue
        if message[0] == "end":
            return
        for obj in message[1]:
            yield event_from_obj(obj)


def _instrumented(
    events: Iterable[Event],
    spec: _WorkerSpec,
    engine: MultiQueryEngine,
    heartbeats: _Heartbeats,
    out_queue: "multiprocessing.queues.Queue[tuple]",
    base: int,
) -> Iterator[Event]:
    """Worker-side event wrapper: hooks, heartbeats, doc checkpoints.

    The post-``yield`` code runs when the engine pulls the *next* event
    — by then the previous event is fully processed and its matches
    drained to the result queue (the pipeline is pull-driven), which is
    the exact boundary where a checkpoint is exact and a heartbeat
    proves real progress.  Document-boundary checkpoints are what the
    coordinator's commit barrier keys on.
    """
    index = base
    for event in events:
        if spec.hook is not None:
            live = (
                frozenset(engine._last_networks)
                if engine._last_networks is not None
                else frozenset(spec.queries)
            )
            spec.hook(spec.shard, spec.incarnation, index, live)
        boundary = event.__class__ is EndDocument
        index += 1
        yield event
        heartbeats.maybe()
        if boundary:
            checkpoint = engine.checkpoint()
            if spec.checkpoint_path is not None:
                checkpoint.save(spec.checkpoint_path)
            out_queue.put(("checkpoint", checkpoint.to_dict()))


def _worker_main(
    spec: _WorkerSpec,
    in_queue: "multiprocessing.queues.Queue[tuple]",
    out_queue: "multiprocessing.queues.Queue[tuple]",
) -> None:
    """Entry point of one shard worker process."""
    try:
        clock = SYSTEM_CLOCK
        heartbeats = _Heartbeats(out_queue, clock, spec.heartbeat_interval)
        engine = MultiQueryEngine(
            spec.queries,
            collect_events=spec.collect_events,
            limits=spec.limits,
            preflight=False,
            admission=spec.admission,
        )
        raw = _queue_events(in_queue, heartbeats, spec.heartbeat_interval)
        if spec.checkpoint_data is not None:
            checkpoint = Checkpoint.from_dict(spec.checkpoint_data)
            base = checkpoint.position
            live = _instrumented(
                raw, spec, engine, heartbeats, out_queue, base
            )
            # resume() seeks by skipping ``base`` events; feed it cheap
            # padding instead of re-shipping the prefix over IPC (the
            # skipped prefix is never validated or processed).
            source: Iterable[Event] = _padded(base, live)
            run = engine.resume(checkpoint, source, policy=spec.policy)
        else:
            cursor = StreamCursor()
            source = _instrumented(raw, spec, engine, heartbeats, out_queue, 0)
            run = engine.serve(
                source,
                policy=spec.policy,
                cursor=cursor,
                quarantined=spec.quarantined,
            )
        for query_id, match in run:
            out_queue.put(("match", query_id, match))
            heartbeats.maybe()
        serving = engine.serving
        out_queue.put(
            (
                "done",
                serving.to_obj() if serving is not None else None,
                asdict(engine.robustness),
                engine._last_cursor.events_read
                if engine._last_cursor is not None
                else 0,
            )
        )
    except BaseException as exc:
        try:
            out_queue.put(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise


def _padded(count: int, events: Iterable[Event]) -> Iterator[Event]:
    """``count`` placeholder events (consumed by the resume skip), then
    the live stream."""
    yield from repeat(StartDocument(), count)
    yield from events


def _probe_main(spec: _WorkerSpec, encoded: list) -> None:
    """Solo isolation probe: one query, the whole stream, no IPC."""
    engine = MultiQueryEngine(
        spec.queries,
        collect_events=spec.collect_events,
        limits=spec.limits,
        preflight=False,
        admission=spec.admission,
    )
    events: Iterator[Event] = (event_from_obj(obj) for obj in encoded)
    if spec.hook is not None:
        events = _hooked_probe(events, spec)
    for _ in engine.serve(events, policy=spec.policy):
        pass


def _hooked_probe(events: Iterable[Event], spec: _WorkerSpec) -> Iterator[Event]:
    live = frozenset(spec.queries)
    for index, event in enumerate(events):
        spec.hook(spec.shard, spec.incarnation, index, live)
        yield event


# ----------------------------------------------------------------------
# coordinator side


@dataclass
class ShardedResult:
    """Merged outcome of one sharded serving pass.

    Attributes:
        matches: committed matches per query, in document order — for
            non-quarantined queries, bit-identical to a single-process
            :meth:`~repro.core.multiquery.MultiQueryEngine.serve` pass.
        report: the merged :class:`~repro.core.serving.ServingReport`
            (per-query outcomes union; counters summed across shards).
        robustness: summed per-worker + coordinator recovery counters.
        shard_queries: the partition layout that ran.
        shard_status: per-shard terminal status (``"ok"`` or
            ``"quarantined"``).
        shard_log: every crash / stall / restore / poison event, in
            order of detection.
        checkpoints: last committed checkpoint per shard (if any).
        quarantined: query ids convicted as poison pills or lost with
            their shard.
        events_total: events in the materialized stream.
    """

    matches: dict[str, list[Match]]
    report: ServingReport
    robustness: RobustnessCounters
    shard_queries: list[list[str]]
    shard_status: list[str]
    shard_log: list[ShardEvent]
    checkpoints: dict[int, Checkpoint]
    quarantined: set[str]
    events_total: int

    @property
    def restarts(self) -> int:
        return sum(1 for entry in self.shard_log if entry.code == SHARD_RESTORED)

    @property
    def healthy(self) -> bool:
        return not self.quarantined and all(
            status == "ok" for status in self.shard_status
        )

    def summary(self) -> str:
        """One log-friendly line, mirroring ``ServingReport.summary``."""
        crashes = sum(
            1 for e in self.shard_log if e.code in (SHARD_CRASH, SHARD_STALL)
        )
        return (
            f"{len(self.shard_queries)} shard(s), "
            f"{sum(len(ids) for ids in self.shard_queries)} quer(y/ies): "
            f"{crashes} worker failure(s), {self.restarts} restart(s), "
            f"{len(self.quarantined)} poison quarantine(s); "
            + self.report.summary()
        )


class _ShardState:
    """Coordinator-side bookkeeping for one shard."""

    def __init__(self, index: int, query_ids: list[str]) -> None:
        self.index = index
        self.query_ids = query_ids
        self.incarnation = -1
        self.process = None
        self.in_queue = None
        self.out_queue = None
        self.feed_pos = 0
        self.end_sent = False
        #: matches streamed but not yet covered by a checkpoint
        self.pending: list[tuple[str, Match]] = []
        self.committed: Checkpoint | None = None
        self.finished = False
        self.status = "ok"
        self.serving_obj: dict | None = None
        self.robustness_obj: dict | None = None
        self.quarantined: set[str] = set()
        #: consecutive crash count per restart position
        self.crashes: dict[int, int] = {}
        self.last_error: str | None = None

    @property
    def committed_pos(self) -> int:
        return self.committed.position if self.committed is not None else 0

    def live_queries(self) -> list[str]:
        return [qid for qid in self.query_ids if qid not in self.quarantined]


class ShardCoordinator:
    """Partition, fan out, supervise, merge.

    Args:
        queries: the full subscription set (mapping or iterable, same
            forms as :class:`~repro.core.multiquery.MultiQueryEngine`).
        config: shard topology and restart policy.
        policy: per-worker :class:`~repro.core.serving.ServingPolicy`;
            must have a finite ``breaker.max_trips`` (the poison latch
            is expressed as an exhausted breaker).
        collect_events / limits / admission / parser_limits: forwarded
            to the worker engines (admission is classified per worker;
            pre-flight runs once, here).
        clock: coordinator-side time source (heartbeat monitor, restart
            backoff).  Defaults to the system clock; unit tests drive
            :class:`HeartbeatMonitor` directly with a fake.
        fault_hook: optional chaos hook run in every worker before each
            event (see :data:`FaultHook`) — the lever the chaos soaks
            use to kill, stall, or crash workers deterministically.
    """

    def __init__(
        self,
        queries: Mapping[str, str | Rpeq] | Iterable[str],
        config: ShardConfig | None = None,
        policy: ServingPolicy | None = None,
        collect_events: bool = False,
        limits: ResourceLimits | None = None,
        admission: AdmissionPolicy | None = None,
        parser_limits: ParserLimits | None = None,
        preflight: bool = True,
        clock: Clock | None = None,
        fault_hook: FaultHook | None = None,
    ) -> None:
        self.config = config if config is not None else ShardConfig()
        self.policy = policy if policy is not None else ServingPolicy()
        if self.policy.breaker.max_trips is None:
            raise EngineError(
                "sharded serving requires a finite breaker max_trips: the "
                "poison-pill latch is expressed as an exhausted breaker"
            )
        # Pre-flight once in the coordinator (workers skip it); also
        # normalizes the query forms and surfaces admission rejections
        # early without burning a process.
        self._engine = MultiQueryEngine(
            queries,
            collect_events=collect_events,
            limits=limits,
            preflight=preflight,
            admission=admission,
        )
        self.queries: dict[str, Rpeq] = self._engine.queries
        self.collect_events = collect_events
        self.limits = limits
        self.admission = admission
        self.parser_limits = parser_limits
        self.clock = as_clock(clock)
        self.fault_hook = fault_hook
        self.monitor = HeartbeatMonitor(self.config.heartbeat_timeout, self.clock)
        self.robustness = RobustnessCounters()
        self._backoffs = [
            ExponentialBackoff(
                initial=self.config.backoff_initial,
                factor=self.config.backoff_factor,
                maximum=self.config.backoff_max,
                jitter=self.config.jitter,
                seed=self.config.seed + shard,
            )
            for shard in range(self.config.shards)
        ]
        method = self.config.start_method
        if method is None and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        self._mp = multiprocessing.get_context(method)
        self._log: list[ShardEvent] = []

    # ------------------------------------------------------------------
    # main loop

    def run(self, source: str | Iterable[Event]) -> ShardedResult:
        """Serve the stream across all shards; block until merged.

        The stream is materialized once (restarts replay suffixes of
        it), partitioned serving runs to completion with crash/stall
        supervision, and the per-shard outcomes merge into one
        :class:`ShardedResult`.
        """
        events = list(iter_events(source, limits=self.parser_limits))
        encoded = [event_to_obj(event) for event in events]
        layout = partition_queries(
            self.queries, self.config.shards, self.config.partition
        )
        states = [
            _ShardState(index, query_ids)
            for index, query_ids in enumerate(layout)
        ]
        matches: dict[str, list[Match]] = {qid: [] for qid in self.queries}
        active = [state for state in states if state.query_ids]
        for state in states:
            if not state.query_ids:
                state.finished = True
        for state in active:
            self._start_worker(state)
        try:
            while any(not state.finished for state in states):
                progress = False
                for state in states:
                    if not state.finished:
                        progress |= self._pump(state, encoded, matches)
                if not progress:
                    self.clock.sleep(0.002)
        finally:
            for state in states:
                self._abandon_worker(state)
        return self._merge(states, matches, len(events))

    # ------------------------------------------------------------------
    # per-shard pump

    def _pump(self, state: _ShardState, encoded: list, matches: dict) -> bool:
        progress = self._drain(state, matches, blocking=False)
        if state.finished:
            return progress
        progress |= self._feed(state, encoded)
        process = state.process
        if process is not None and not process.is_alive():
            self._handle_failure(state, encoded, matches, stalled=False)
            return True
        if self.monitor.stalled(state.index):
            silence = self.monitor.silence(state.index)
            if process is not None:
                process.kill()
            self._handle_failure(
                state, encoded, matches, stalled=True, silence=silence
            )
            return True
        return progress

    def _feed(self, state: _ShardState, encoded: list) -> bool:
        progress = False
        batch_size = self.config.batch_events
        while state.feed_pos < len(encoded):
            batch = encoded[state.feed_pos : state.feed_pos + batch_size]
            try:
                state.in_queue.put_nowait(("events", batch))
            except Full:
                return progress
            state.feed_pos += len(batch)
            progress = True
        if not state.end_sent:
            try:
                state.in_queue.put_nowait(("end",))
            except Full:
                return progress
            state.end_sent = True
            progress = True
        return progress

    def _drain(
        self, state: _ShardState, matches: dict, blocking: bool
    ) -> bool:
        """Process queued worker messages; commit on checkpoint barriers.

        ``blocking=True`` is the post-mortem drain: the worker is dead
        and joined, so its queue feeder has flushed — keep reading with
        a short timeout until silence.  A SIGKILL mid-``put`` can leave
        the queue unreadable; any exception ends the drain (the
        uncommitted tail is replayed from the checkpoint anyway).
        """
        progress = False
        while True:
            try:
                if blocking:
                    message = state.out_queue.get(timeout=0.1)
                else:
                    message = state.out_queue.get_nowait()
            except Empty:
                break
            except Exception:
                break
            progress = True
            self.monitor.beat(state.index)
            kind = message[0]
            if kind == "match":
                state.pending.append((message[1], message[2]))
            elif kind == "checkpoint":
                state.committed = Checkpoint.from_dict(message[1])
                self._commit(state, matches)
            elif kind == "done":
                self._commit(state, matches)
                state.serving_obj = message[1]
                state.robustness_obj = message[2]
                state.finished = True
                self._retire_worker(state)
            elif kind == "error":
                state.last_error = message[1]
        return progress

    def _commit(self, state: _ShardState, matches: dict) -> None:
        for query_id, match in state.pending:
            matches[query_id].append(match)
        state.pending.clear()

    # ------------------------------------------------------------------
    # failure handling

    def _handle_failure(
        self,
        state: _ShardState,
        encoded: list,
        matches: dict,
        stalled: bool,
        silence: float = 0.0,
    ) -> None:
        process = state.process
        if process is not None:
            process.join()
        # The worker may have finished cleanly and exited before this
        # liveness poll: the post-mortem drain finds its "done".
        self._drain(state, matches, blocking=True)
        self._release_queues(state)
        if state.finished:
            return
        state.pending.clear()
        exitcode = process.exitcode if process is not None else None
        if stalled:
            detail = (
                f"no heartbeat for {silence:.2f}s "
                f"(timeout {self.config.heartbeat_timeout}s); killed"
            )
            code = SHARD_STALL
        else:
            detail = f"worker exited with code {exitcode}"
            if state.last_error:
                detail += f" after: {state.last_error}"
            code = SHARD_CRASH
        state.last_error = None
        self._log.append(ShardEvent(state.index, state.incarnation, code, detail))
        self.robustness.stalls_detected += 1 if stalled else 0
        key = state.committed_pos
        state.crashes[key] = state.crashes.get(key, 0) + 1
        failures = state.crashes[key]
        if failures >= self.config.max_trips:
            convicted = self._isolate_poison(state, encoded)
            if not convicted:
                self._lose_shard(state, matches)
                return
            state.quarantined |= convicted
            self._log.append(
                ShardEvent(
                    state.index,
                    state.incarnation,
                    SHARD_POISON,
                    f"quarantined {sorted(convicted)} after {failures} "
                    f"crash(es) at position {key}",
                )
            )
            self.robustness.quarantines += len(convicted)
            state.crashes[key] = 0
            failures = 1
        self.clock.sleep(self._backoffs[state.index].delay(failures))
        self.robustness.retries += 1
        self._start_worker(state)
        self._log.append(
            ShardEvent(
                state.index,
                state.incarnation,
                SHARD_RESTORED,
                f"restarted from position {state.committed_pos}"
                + (
                    f" (checkpoint, {len(state.quarantined)} latched)"
                    if state.committed is not None
                    else " (stream head)"
                ),
            )
        )

    def _isolate_poison(self, state: _ShardState, encoded: list) -> set[str]:
        """Convict the queries that kill a solo probe process."""
        convicted: set[str] = set()
        for query_id in sorted(state.live_queries()):
            spec = self._spec(
                state,
                incarnation=-1,
                queries={query_id: unparse(self.queries[query_id])},
                checkpoint=None,
                quarantined=(),
            )
            probe = self._mp.Process(
                target=_probe_main, args=(spec, encoded), daemon=True
            )
            probe.start()
            probe.join(self.config.probe_timeout)
            if probe.is_alive():
                probe.kill()
                probe.join()
                convicted.add(query_id)
            elif probe.exitcode != 0:
                convicted.add(query_id)
        return convicted

    def _lose_shard(self, state: _ShardState, matches: dict) -> None:
        """Terminal: no culprit isolable — quarantine the whole shard."""
        lost = set(state.live_queries())
        state.quarantined |= lost
        state.status = "quarantined"
        state.finished = True
        self._log.append(
            ShardEvent(
                state.index,
                state.incarnation,
                SHARD_LOST,
                f"no poison culprit isolable; shard quarantined with "
                f"{sorted(lost)}",
            )
        )
        self.robustness.quarantines += len(lost)

    # ------------------------------------------------------------------
    # worker lifecycle

    def _spec(
        self,
        state: _ShardState,
        incarnation: int,
        queries: dict[str, str],
        checkpoint: Checkpoint | None,
        quarantined: tuple[str, ...],
    ) -> _WorkerSpec:
        path = None
        if self.config.checkpoint_dir is not None:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            path = os.path.join(
                self.config.checkpoint_dir, f"shard-{state.index}.json"
            )
        return _WorkerSpec(
            shard=state.index,
            incarnation=incarnation,
            queries=queries,
            collect_events=self.collect_events,
            limits=self.limits,
            admission=self.admission,
            policy=self.policy,
            heartbeat_interval=self.config.heartbeat_interval,
            checkpoint_path=path,
            checkpoint_data=checkpoint.to_dict() if checkpoint is not None else None,
            quarantined=quarantined,
            hook=self.fault_hook,
        )

    def _start_worker(self, state: _ShardState) -> None:
        state.incarnation += 1
        state.in_queue = self._mp.Queue(maxsize=self.config.queue_batches)
        state.out_queue = self._mp.Queue()
        checkpoint = state.committed
        if checkpoint is not None and state.quarantined:
            checkpoint = quarantine_in_checkpoint(
                checkpoint,
                sorted(state.quarantined),
                self.policy.breaker.max_trips,
            )
        state.feed_pos = checkpoint.position if checkpoint is not None else 0
        state.end_sent = False
        spec = self._spec(
            state,
            incarnation=state.incarnation,
            queries={
                qid: unparse(self.queries[qid]) for qid in state.query_ids
            },
            checkpoint=checkpoint,
            quarantined=(
                tuple(sorted(state.quarantined)) if checkpoint is None else ()
            ),
        )
        state.process = self._mp.Process(
            target=_worker_main,
            args=(spec, state.in_queue, state.out_queue),
            daemon=True,
        )
        state.process.start()
        self.monitor.beat(state.index)
        if state.incarnation > 0 and state.committed is not None:
            self.robustness.restores += 1

    def _retire_worker(self, state: _ShardState) -> None:
        if state.process is not None:
            state.process.join()
        self._release_queues(state)
        self.monitor.disarm(state.index)
        state.process = None

    def _abandon_worker(self, state: _ShardState) -> None:
        process = state.process
        if process is not None and process.is_alive():
            process.kill()
            process.join()
        self._release_queues(state)
        state.process = None

    def _release_queues(self, state: _ShardState) -> None:
        for queue in (state.in_queue, state.out_queue):
            if queue is None:
                continue
            try:
                queue.cancel_join_thread()
                queue.close()
            except Exception:
                pass
        state.in_queue = None
        state.out_queue = None

    # ------------------------------------------------------------------
    # merging

    def _merge(
        self,
        states: list[_ShardState],
        matches: dict[str, list[Match]],
        events_total: int,
    ) -> ShardedResult:
        reports = []
        counters = asdict(self.robustness)
        for state in states:
            if state.serving_obj is not None:
                reports.append(ServingReport.from_obj(state.serving_obj))
            if state.robustness_obj is not None:
                for name, value in state.robustness_obj.items():
                    if name == "restores":
                        # the coordinator already counted every restore
                        # attempt, including ones that crashed again
                        continue
                    counters[name] = counters.get(name, 0) + value
        report = ServingReport.merged(reports)
        quarantined: set[str] = set()
        for state in states:
            quarantined |= state.quarantined
            if state.status != "quarantined":
                continue
            # The shard died without a final report: synthesize terminal
            # outcomes for the queries it took down.
            for query_id in state.query_ids:
                if query_id in report.outcomes:
                    continue
                outcome = report.outcome(query_id)
                outcome.status = "quarantined"
                outcome.code = QUERY_SHARD_LOST
                outcome.reason = (
                    f"shard {state.index} lost (crash loop, no culprit "
                    f"isolable); delivered matches are a committed prefix"
                )
                outcome.degraded = True
                outcome.matches = len(matches[query_id])
                report.quarantines += 1
        return ShardedResult(
            matches=matches,
            report=report,
            robustness=RobustnessCounters(**counters),
            shard_queries=[state.query_ids for state in states],
            shard_status=[state.status for state in states],
            shard_log=list(self._log),
            checkpoints={
                state.index: state.committed
                for state in states
                if state.committed is not None
            },
            quarantined=quarantined,
            events_total=events_total,
        )


def serve_sharded(
    queries: Mapping[str, str | Rpeq] | Iterable[str],
    source: str | Iterable[Event],
    config: ShardConfig | None = None,
    **kwargs: Any,
) -> ShardedResult:
    """One-shot convenience: build a :class:`ShardCoordinator`, run it."""
    return ShardCoordinator(queries, config=config, **kwargs).run(source)
