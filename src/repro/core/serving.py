"""Bulkheads, circuit breakers, deadlines, and admission control.

The multi-query engine's shared stream pass is a shared-fate hot path:
one pathological query or adversarial document degrades every query
riding the pass.  This module provides the serving-robustness policy
objects and state machines that :meth:`MultiQueryEngine.serve
<repro.core.multiquery.MultiQueryEngine.serve>` enforces:

* **Bulkheads** — each query is its own fault domain.  A query that
  raises, trips its :class:`~repro.limits.ResourceLimits`, or blows a
  deadline is *quarantined*: its sub-network is detached mid-stream,
  its buffers released, and its already-decided results flushed with the
  outcome marked ``degraded`` — while every healthy query keeps
  streaming.
* **Circuit breakers** — quarantine is not forever.  A per-query
  breaker (closed → open → half-open) sits out
  :attr:`BreakerPolicy.cooldown_documents` documents, then re-admits the
  query as a *probe* at the next document boundary; surviving
  :attr:`BreakerPolicy.probe_documents` documents closes the breaker,
  failing the probe re-opens it.  :attr:`BreakerPolicy.max_trips` caps
  how often a query may burn the service before it is out for good.
* **Admission control** — at registration time the PR 3 cost certifier's
  ``d·σ`` bound classifies each query *admit* / *admit-degraded*
  (tighter buffer ceilings) / *reject* under an
  :class:`AdmissionPolicy` budget, so a certifiably-over-budget query
  never touches the stream at all.
* **Load shedding** — when the aggregate buffered events across all live
  queries cross a high-water mark, the lowest-priority queries are shed
  (dropped from the pass, buffers released) until the pass fits — the
  stream itself is never dropped.

Every quarantine, trip, shed, re-admission and deadline expiry is
counted in a :class:`ServingReport` and mirrored into the engine's
robustness counters / CLI recovery summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Mapping

from ..errors import AdmissionError
from ..limits import ResourceLimits
from ..rpeq.ast import Rpeq
from .clock import Clock  # noqa: F401  (re-exported for serve() signatures)

if TYPE_CHECKING:
    from ..analysis.planner import QueryPlan


class BreakerState(str, Enum):
    """Circuit-breaker states (the classic three-state machine)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Re-admission policy for quarantined queries.

    Attributes:
        cooldown_documents: document boundaries a tripped query sits out
            before a probe is attempted (1 = probe at the very next
            document).
        probe_documents: consecutive clean documents a half-open probe
            must survive before the breaker closes again.
        max_trips: total failures after which the breaker latches open
            permanently for this pass (``None`` = keep probing forever).
    """

    cooldown_documents: int = 1
    probe_documents: int = 1
    max_trips: int | None = 3

    def __post_init__(self) -> None:
        if self.cooldown_documents < 1:
            raise ValueError("cooldown_documents must be positive")
        if self.probe_documents < 1:
            raise ValueError("probe_documents must be positive")
        if self.max_trips is not None and self.max_trips < 1:
            raise ValueError("max_trips must be positive")


class CircuitBreaker:
    """Per-query breaker governing quarantine re-admission.

    The driver calls :meth:`record_failure` when the query's bulkhead
    trips, :meth:`admits` at every document boundary to learn whether
    the query may run the next document, and
    :meth:`record_document_success` when a document completes cleanly.
    """

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self.state = BreakerState.CLOSED
        self.trips = 0
        self._cooldown = 0
        self._probe_successes = 0

    @property
    def latched(self) -> bool:
        """Permanently open: the query exhausted ``max_trips``."""
        return (
            self.policy.max_trips is not None and self.trips >= self.policy.max_trips
        )

    def record_failure(self) -> None:
        """The query failed (error, limit, deadline): open the breaker."""
        self.trips += 1
        self.state = BreakerState.OPEN
        self._cooldown = self.policy.cooldown_documents
        self._probe_successes = 0

    def latch(self) -> None:
        """Force the breaker permanently open (poison-pill quarantine).

        Used by the shard layer (:mod:`repro.core.shards`) when a query
        is convicted of crashing its worker process: the breaker jumps
        straight to ``max_trips`` so :attr:`latched` holds — and keeps
        holding across checkpoint/resume, exactly like an organically
        exhausted breaker.  Requires a finite ``max_trips``.
        """
        if self.policy.max_trips is None:
            raise ValueError(
                "cannot latch a breaker whose policy has max_trips=None"
            )
        self.trips = max(self.trips, self.policy.max_trips)
        self.state = BreakerState.OPEN
        self._cooldown = self.policy.cooldown_documents
        self._probe_successes = 0

    def admits(self) -> bool:
        """Document boundary: may the query run the next document?

        An open breaker counts down its cooldown; reaching zero moves it
        to half-open, which admits the query as a probe.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.latched:
            return False
        if self.state is BreakerState.OPEN:
            self._cooldown -= 1
            if self._cooldown > 0:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probe_successes = 0
        return True  # HALF_OPEN: probing

    def record_document_success(self) -> bool:
        """A document completed cleanly; returns ``True`` on re-closure."""
        if self.state is not BreakerState.HALF_OPEN:
            return False
        self._probe_successes += 1
        if self._probe_successes >= self.policy.probe_documents:
            self.state = BreakerState.CLOSED
            self._probe_successes = 0
            return True
        return False

    # ------------------------------------------------------------------
    # checkpointing (PR 2 protocol: plain JSON-able state)

    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "trips": self.trips,
            "cooldown": self._cooldown,
            "probe_successes": self._probe_successes,
        }

    def restore(self, state: dict) -> None:
        self.state = BreakerState(state["state"])
        self.trips = int(state["trips"])
        self._cooldown = int(state["cooldown"])
        self._probe_successes = int(state["probe_successes"])


@dataclass(frozen=True)
class AdmissionPolicy:
    """Budget policy classifying queries before they touch the stream.

    Classification uses the planner's *refined* ``σ̂`` bound
    (:func:`repro.analysis.planner.plan_query`, which is ≤ the raw
    cost-certifier bound by construction — a qualifier-free query never
    builds condition formulas, so its bound collapses to 1), computed
    against ``depth_bound`` (or the engine's ``ResourceLimits.max_depth``):

    * ``σ̂ ≤ degrade_sigma`` (or no soft ceiling) → **admit**;
    * ``degrade_sigma < σ̂ ≤ reject_sigma`` → **admit degraded**: the
      query runs under tightened buffer ceilings
      (``degraded_max_buffered_events`` / ``degraded_max_pending``);
    * ``σ̂ > reject_sigma`` → **reject** (coded ``ADMIT003``);
    * uncertifiable queries (axis steps, unbounded closure-qualifier
      growth with unknown depth) follow ``on_uncertifiable``.

    Attributes:
        reject_sigma: hard ceiling on the certified ``σ̂`` bound.
        degrade_sigma: soft ceiling; between soft and hard the query is
            admitted with degraded buffers.
        on_uncertifiable: ``"admit"``, ``"degrade"`` (default) or
            ``"reject"`` for queries whose bound cannot be certified.
        depth_bound: stream depth ``d`` used for certification when the
            engine's limits set none.
        degraded_max_buffered_events / degraded_max_pending: the buffer
            ceilings imposed on degraded admissions (combined with any
            engine-level limits by taking the minimum).
    """

    reject_sigma: int | None = None
    degrade_sigma: int | None = None
    on_uncertifiable: str = "degrade"
    depth_bound: int | None = None
    degraded_max_buffered_events: int = 4096
    degraded_max_pending: int = 1024

    def __post_init__(self) -> None:
        if self.on_uncertifiable not in ("admit", "degrade", "reject"):
            raise ValueError(
                f"on_uncertifiable must be 'admit', 'degrade' or 'reject', "
                f"got {self.on_uncertifiable!r}"
            )
        for name in ("reject_sigma", "degrade_sigma", "depth_bound"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if (
            self.reject_sigma is not None
            and self.degrade_sigma is not None
            and self.degrade_sigma > self.reject_sigma
        ):
            raise ValueError("degrade_sigma must not exceed reject_sigma")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of classifying one query.

    ``status`` is ``"admit"``, ``"degraded"`` or ``"rejected"``; ``code``
    identifies the rule that fired (``ADMIT000`` clean admit,
    ``ADMIT001`` σ̂ over the soft ceiling, ``ADMIT002`` uncertifiable
    degraded, ``ADMIT003`` σ̂ over the hard ceiling, ``ADMIT004``
    uncertifiable rejected).  ``limits`` is the effective
    :class:`~repro.limits.ResourceLimits` the query's network runs
    under (``None`` = the engine's own limits, unchanged).  ``lane``
    is the planner's execution-lane classification the σ̂ bound came
    from (``"dfa"`` / ``"hybrid"`` / ``"network"``).
    """

    status: str
    code: str
    reason: str
    sigma_bound: int | None = None
    limits: ResourceLimits | None = None
    lane: str | None = None

    @property
    def admitted(self) -> bool:
        return self.status != "rejected"

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"


def _degraded_limits(
    base: ResourceLimits | None, policy: AdmissionPolicy
) -> ResourceLimits:
    """Tighten ``base`` to the policy's degraded buffer ceilings."""

    def tighter(current: int | None, ceiling: int) -> int:
        return ceiling if current is None else min(current, ceiling)

    base = base if base is not None else ResourceLimits()
    return replace(
        base,
        max_buffered_events=tighter(
            base.max_buffered_events, policy.degraded_max_buffered_events
        ),
        max_pending_candidates=tighter(
            base.max_pending_candidates, policy.degraded_max_pending
        ),
    )


def classify_admission(
    query: Rpeq,
    policy: AdmissionPolicy,
    limits: ResourceLimits | None = None,
    plan: "QueryPlan | None" = None,
) -> AdmissionDecision:
    """Classify one query against the budget policy (pure function).

    ``plan`` is an optional pre-computed
    :class:`~repro.analysis.planner.QueryPlan` (the engines pass the one
    they already built); without it the planner runs here.  Either way
    the budget is checked against the *refined* σ̂ bound — never looser
    than the raw worst-case COST bound.
    """
    from ..analysis.planner import plan_query

    depth = policy.depth_bound
    effective = limits
    if depth is not None and (limits is None or limits.max_depth is None):
        effective = replace(
            limits if limits is not None else ResourceLimits(), max_depth=depth
        )
    if plan is None:
        plan, _report = plan_query(query, limits=effective)
    sigma = plan.sigma_refined
    lane = plan.lane

    if sigma is None:
        if policy.on_uncertifiable == "reject":
            return AdmissionDecision(
                status="rejected",
                code="ADMIT004",
                reason="memory bound not certifiable (policy rejects "
                "uncertifiable queries)",
                lane=lane,
            )
        if policy.on_uncertifiable == "degrade":
            return AdmissionDecision(
                status="degraded",
                code="ADMIT002",
                reason="memory bound not certifiable; admitted with "
                "degraded buffer ceilings",
                limits=_degraded_limits(limits, policy),
                lane=lane,
            )
        return AdmissionDecision(
            status="admit",
            code="ADMIT000",
            reason="uncertifiable but policy admits",
            lane=lane,
        )

    if policy.reject_sigma is not None and sigma > policy.reject_sigma:
        return AdmissionDecision(
            status="rejected",
            code="ADMIT003",
            reason=f"certified σ̂={sigma} exceeds budget "
            f"{policy.reject_sigma}",
            sigma_bound=sigma,
            lane=lane,
        )
    if policy.degrade_sigma is not None and sigma > policy.degrade_sigma:
        return AdmissionDecision(
            status="degraded",
            code="ADMIT001",
            reason=f"certified σ̂={sigma} exceeds soft budget "
            f"{policy.degrade_sigma}; admitted with degraded buffer "
            f"ceilings",
            sigma_bound=sigma,
            limits=_degraded_limits(limits, policy),
            lane=lane,
        )
    return AdmissionDecision(
        status="admit",
        code="ADMIT000",
        reason=f"certified σ̂={sigma} within budget",
        sigma_bound=sigma,
        lane=lane,
    )


def ensure_admitted(query_id: str, decision: AdmissionDecision) -> None:
    """Raise :class:`~repro.errors.AdmissionError` on a rejection."""
    if not decision.admitted:
        raise AdmissionError(
            f"query {query_id!r} refused admission "
            f"[{decision.code}]: {decision.reason}",
            decision=decision,
        )


@dataclass(frozen=True)
class ServingPolicy:
    """Everything :meth:`MultiQueryEngine.serve` enforces per pass.

    Attributes:
        quarantine: bulkhead isolation on/off.  Off, a query failure
            propagates and kills the pass (the pre-serving behaviour);
            deadlines and shedding still apply.
        breaker: re-admission policy for quarantined queries.
        stream_deadline: wall-clock budget (seconds) for the whole pass;
            expiry detaches every live query with a per-query
            ``DEADLINE_STREAM`` outcome and ends the pass cleanly — no
            global abort, no exception.
        doc_deadline: wall-clock budget (seconds) per document; expiry
            detaches the live queries for the *rest of that document*
            (outcome ``DEADLINE_DOC``) and they rejoin at the next
            document boundary.
        shed_buffered_events: high-water mark on the *aggregate* buffered
            events across all live queries; crossing it sheds the
            lowest-priority queries (never the stream) until the pass
            fits again.  Shed queries rejoin at the next document
            boundary without a breaker penalty.
        priorities: per-query priority for shedding order — *lower*
            values are shed first; missing queries default to 0.
    """

    quarantine: bool = True
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    stream_deadline: float | None = None
    doc_deadline: float | None = None
    shed_buffered_events: int | None = None
    priorities: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.stream_deadline is not None and self.stream_deadline <= 0:
            raise ValueError("stream_deadline must be positive")
        if self.doc_deadline is not None and self.doc_deadline <= 0:
            raise ValueError("doc_deadline must be positive")
        if self.shed_buffered_events is not None and self.shed_buffered_events < 1:
            raise ValueError("shed_buffered_events must be positive")


@dataclass
class QueryOutcome:
    """The serving fate of one query over one pass.

    ``status``: ``"ok"``, ``"quarantined"``, ``"deadline"``, ``"shed"``
    or ``"rejected"``.  ``degraded`` marks partial delivery — the query
    was detached at some point, so its match stream is a prefix of what
    an unperturbed run would have produced (or it ran under degraded
    admission buffers).
    """

    query_id: str
    status: str = "ok"
    code: str | None = None
    reason: str | None = None
    document: int | None = None
    degraded: bool = False
    matches: int = 0
    trips: int = 0
    readmissions: int = 0

    @property
    def healthy(self) -> bool:
        return self.status == "ok"

    def to_obj(self) -> dict:
        """JSON-serializable form (checkpoint / IPC codec)."""
        return {
            "status": self.status,
            "code": self.code,
            "reason": self.reason,
            "document": self.document,
            "degraded": self.degraded,
            "matches": self.matches,
            "trips": self.trips,
            "readmissions": self.readmissions,
        }

    @classmethod
    def from_obj(cls, query_id: str, obj: Mapping) -> "QueryOutcome":
        """Inverse of :meth:`to_obj`."""
        return cls(
            query_id=query_id,
            status=str(obj["status"]),
            code=obj["code"],
            reason=obj["reason"],
            document=obj["document"],
            degraded=bool(obj["degraded"]),
            matches=int(obj["matches"]),
            trips=int(obj["trips"]),
            readmissions=int(obj["readmissions"]),
        )


@dataclass
class ServingReport:
    """Counters and per-query outcomes for one serving pass.

    ``plans`` carries the planner metadata per query (the
    :meth:`~repro.analysis.planner.QueryPlan.to_obj` form: execution
    lane, qualifier-free prefix, refined σ̂) so operators see *why* each
    query was admitted the way it was — it rides the same codec as the
    counters through checkpoints, shard IPC and merges.
    """

    outcomes: dict[str, QueryOutcome] = field(default_factory=dict)
    plans: dict[str, dict] = field(default_factory=dict)
    documents_seen: int = 0
    quarantines: int = 0
    breaker_trips: int = 0
    probes: int = 0
    readmissions: int = 0
    load_sheds: int = 0
    deadline_hits: int = 0
    admitted: int = 0
    admitted_degraded: int = 0
    rejected: int = 0

    #: the integer counters serialized by :meth:`to_obj` (order matters
    #: only for readability; the codec is keyed, not positional).
    COUNTER_FIELDS = (
        "documents_seen",
        "quarantines",
        "breaker_trips",
        "probes",
        "readmissions",
        "load_sheds",
        "deadline_hits",
        "admitted",
        "admitted_degraded",
        "rejected",
    )

    def outcome(self, query_id: str) -> QueryOutcome:
        if query_id not in self.outcomes:
            self.outcomes[query_id] = QueryOutcome(query_id)
        return self.outcomes[query_id]

    def to_obj(self) -> dict:
        """JSON-serializable form: ``{"outcomes": ..., "report": ...}``.

        The shape matches the serving section of the multiquery
        checkpoint payload, so checkpoints, shard IPC messages and
        merged reports all speak one codec.
        """
        return {
            "outcomes": {
                query_id: outcome.to_obj()
                for query_id, outcome in self.outcomes.items()
            },
            "plans": {
                query_id: dict(plan) for query_id, plan in self.plans.items()
            },
            "report": {name: getattr(self, name) for name in self.COUNTER_FIELDS},
        }

    @classmethod
    def from_obj(cls, obj: Mapping) -> "ServingReport":
        """Inverse of :meth:`to_obj` (``plans`` is optional: checkpoints
        written before the planner existed restore without it)."""
        report = cls()
        counters = obj["report"]
        for name in cls.COUNTER_FIELDS:
            setattr(report, name, int(counters[name]))
        for query_id, state in obj["outcomes"].items():
            report.outcomes[query_id] = QueryOutcome.from_obj(query_id, state)
        for query_id, plan in obj.get("plans", {}).items():
            report.plans[query_id] = dict(plan)
        return report

    #: Outcome-status severity for :meth:`merged` conflicts.  Higher
    #: wins: a quarantine latch reported by one shard must never be
    #: papered over by a healthy outcome for the same query from
    #: another report (e.g. a restarted worker that no longer ran the
    #: query), and a rejection outranks transient detachments.
    _MERGE_SEVERITY = {
        "ok": 0,
        "closed": 1,
        "shed": 2,
        "deadline": 3,
        "rejected": 4,
        "quarantined": 5,
    }

    @classmethod
    def merged(cls, reports: "Iterable[ServingReport]") -> "ServingReport":
        """Merge per-shard reports into one service-wide report.

        Counters sum — except ``documents_seen``, which is the max
        (every shard watches the same stream, so summing would count
        each document once per shard).  Queries are normally disjoint
        across shards so outcomes union; when two reports *do* carry
        the same query id (a worker restarted mid-pass, or overlapping
        partial reports), the outcomes are combined instead of
        last-writer-wins: matches/readmissions sum, trips take the max,
        ``degraded`` latches (once degraded, always degraded), and the
        status/code/reason come from the more severe outcome per
        :data:`_MERGE_SEVERITY` — so a quarantine latch survives the
        merge no matter which report order the coordinator saw.

        An empty iterable merges to an empty (all-zero) report.
        """
        merged = cls()
        for report in reports:
            for name in cls.COUNTER_FIELDS:
                if name == "documents_seen":
                    merged.documents_seen = max(
                        merged.documents_seen, report.documents_seen
                    )
                else:
                    setattr(
                        merged, name, getattr(merged, name) + getattr(report, name)
                    )
            for query_id, outcome in report.outcomes.items():
                existing = merged.outcomes.get(query_id)
                if existing is None:
                    merged.outcomes[query_id] = outcome
                else:
                    merged.outcomes[query_id] = cls._combine(existing, outcome)
            # Plans are registration-time constants: every shard that
            # carries a query carries the same plan, so union suffices.
            merged.plans.update(report.plans)
        return merged

    @classmethod
    def _combine(cls, first: QueryOutcome, second: QueryOutcome) -> QueryOutcome:
        """Fold two outcomes for the same query into one (see merged)."""
        severity = cls._MERGE_SEVERITY
        worse, other = first, second
        if severity.get(second.status, 0) > severity.get(first.status, 0):
            worse, other = second, first
        return QueryOutcome(
            query_id=first.query_id,
            status=worse.status,
            code=worse.code,
            reason=worse.reason,
            document=worse.document if worse.document is not None else other.document,
            degraded=first.degraded or second.degraded,
            matches=first.matches + second.matches,
            trips=max(first.trips, second.trips),
            readmissions=first.readmissions + second.readmissions,
        )

    @property
    def healthy(self) -> list[str]:
        """Queries that finished the pass undisturbed."""
        return sorted(
            query_id
            for query_id, outcome in self.outcomes.items()
            if outcome.healthy and not outcome.degraded
        )

    def summary(self) -> str:
        """One log-friendly line, mirroring ``ErrorReport.summary``."""
        return (
            f"{len(self.outcomes)} quer(y/ies) over "
            f"{self.documents_seen} document(s): "
            f"{self.quarantines} quarantine(s), "
            f"{self.breaker_trips} breaker trip(s), "
            f"{self.readmissions} readmission(s), "
            f"{self.load_sheds} shed(s), "
            f"{self.deadline_hits} deadline hit(s), "
            f"{self.rejected} rejected at admission"
        )
